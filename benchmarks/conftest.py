"""Benchmark-harness helpers.

Every experiment file regenerates one row-set of EXPERIMENTS.md: it runs
the measurement inside `benchmark.pedantic` (one round — the simulator is
deterministic, repetition adds nothing), prints the result table, and
asserts the qualitative *shape* the paper claims.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import itertools
import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import pytest

from repro.chord import IdentifierSpace
from repro.overlay import HybridSystem


def build_system(
    num_index: int = 8,
    parts=None,
    replication_factor: int = 1,
    space_bits: int = 32,
) -> HybridSystem:
    system = HybridSystem(
        space=IdentifierSpace(space_bits), replication_factor=replication_factor
    )
    for i in range(num_index):
        system.add_index_node(f"N{i}")
    system.build_ring()
    if parts:
        if isinstance(parts, dict):
            for storage_id, triples in parts.items():
                system.add_storage_node(storage_id, triples)
        else:
            for i, triples in enumerate(parts):
                system.add_storage_node(f"D{i}", triples)
    return system


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


#: All experiment tables from the current run are also appended here, so
#: a plain ``pytest benchmarks/ --benchmark-only`` (stdout captured)
#: still leaves the measurements on disk.
RESULTS_PATH = pathlib.Path(__file__).parent / "latest_results.txt"


@pytest.fixture(scope="session", autouse=True)
def _truncate_results():
    RESULTS_PATH.write_text("", encoding="utf-8")
    yield


def emit(table_text: str) -> None:
    """Print an experiment table (shown with -s) and persist it."""
    print("\n" + table_text + "\n")
    with RESULTS_PATH.open("a", encoding="utf-8") as fh:
        fh.write(table_text + "\n\n")


# --------------------------------------------------------------- tracing

#: Set REPRO_TRACE_DIR=<dir> to dump a sequence diagram + JSONL trace for
#: every query run through :func:`execute_traced` — handy when an
#: experiment's comparison fails and you need to see *where* the bytes
#: went. Unset (the default), queries run with the no-op tracer and the
#: measured totals are bit-identical to the untraced run.
TRACE_DIR = os.environ.get("REPRO_TRACE_DIR")

_trace_counter = itertools.count()


def execute_traced(system, query_text: str, label: str = "query", **options):
    """Execute a query, dumping its trace if REPRO_TRACE_DIR is set.

    Returns ``(result, report)`` exactly like ``HybridSystem.execute``.
    """
    if not TRACE_DIR:
        return system.execute(query_text, **options)
    from repro.trace import Tracer, render_phases, render_sequence, write_jsonl

    tracer = Tracer()
    result, report = system.execute(query_text, tracer=tracer, **options)
    stem = f"{next(_trace_counter):03d}-{label}"
    out_dir = pathlib.Path(TRACE_DIR)
    out_dir.mkdir(parents=True, exist_ok=True)
    write_jsonl(tracer, out_dir / f"{stem}.jsonl")
    (out_dir / f"{stem}.txt").write_text(
        render_sequence(tracer) + "\n" + render_phases(report.phases) + "\n",
        encoding="utf-8",
    )
    return result, report
