"""Benchmark-harness helpers.

Every experiment file regenerates one row-set of EXPERIMENTS.md: it runs
the measurement inside `benchmark.pedantic` (one round — the simulator is
deterministic, repetition adds nothing), prints the result table, and
asserts the qualitative *shape* the paper claims.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import pytest

from repro.chord import IdentifierSpace
from repro.overlay import HybridSystem


def build_system(
    num_index: int = 8,
    parts=None,
    replication_factor: int = 1,
    space_bits: int = 32,
) -> HybridSystem:
    system = HybridSystem(
        space=IdentifierSpace(space_bits), replication_factor=replication_factor
    )
    for i in range(num_index):
        system.add_index_node(f"N{i}")
    system.build_ring()
    if parts:
        if isinstance(parts, dict):
            for storage_id, triples in parts.items():
                system.add_storage_node(storage_id, triples)
        else:
            for i, triples in enumerate(parts):
                system.add_storage_node(f"D{i}", triples)
    return system


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


#: All experiment tables from the current run are also appended here, so
#: a plain ``pytest benchmarks/ --benchmark-only`` (stdout captured)
#: still leaves the measurements on disk.
RESULTS_PATH = pathlib.Path(__file__).parent / "latest_results.txt"


@pytest.fixture(scope="session", autouse=True)
def _truncate_results():
    RESULTS_PATH.write_text("", encoding="utf-8")
    yield


def emit(table_text: str) -> None:
    """Print an experiment table (shown with -s) and persist it."""
    print("\n" + table_text + "\n")
    with RESULTS_PATH.open("a", encoding="utf-8") as fh:
        fh.write(table_text + "\n\n")
