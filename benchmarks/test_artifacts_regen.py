"""A1-A4 — Regenerate the paper's illustrative figures and table.

The paper has no measurement figures (its evaluation was deferred to
future work); Figs. 1-9 and Table I are illustrative. This bench prints
each regenerated artifact from the live implementation so EXPERIMENTS.md
can quote them:

* A1 — Fig. 1 network (topology listing),
* A2 — Table I (location-table rendering) + the Fig. 2 lookup flow,
* A3 — Fig. 3 workflow stage timings for a real query,
* A4 — Figs. 4-9 queries: algebra expression + distributed answer.
"""

from __future__ import annotations


from repro.metrics import render_table
from repro.overlay import LocationTable, fig1_network
from repro.query import DistributedExecutor
from repro.rdf import COMMON_PREFIXES
from repro.sparql import format_algebra, parse_query, translate_pattern
from repro.workloads import paper_example_partition

from conftest import emit, run_once

FIGURE_QUERIES = {
    "Fig. 4": """SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name . ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y . ?y foaf:knows ?z .
        FILTER regex(?name, "Smith") } ORDER BY DESC(?x)""",
    "Fig. 5": "SELECT ?x WHERE { ?x foaf:knows ns:me . }",
    "Fig. 6": """SELECT ?x ?y ?z WHERE {
        ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y . }""",
    "Fig. 7": """SELECT ?x ?y WHERE {
        { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
        OPTIONAL { ?y foaf:nick "Shrek" . } }""",
    "Fig. 8": """SELECT ?x ?y ?z WHERE {
        { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
        UNION
        { ?x foaf:mbox <mailto:abc@example.org> . ?x foaf:knows ?z . } }""",
    "Fig. 9": """SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name ; ns:knowsNothingAbout ?y .
        FILTER regex(?name, "Smith")
        OPTIONAL { ?y foaf:knows ?z . } }""",
}


def test_a1_fig1_topology(benchmark):
    system = run_once(benchmark, lambda: fig1_network(paper_example_partition()))
    rows = []
    for ref in system.ring.sorted_refs():
        node = system.index_nodes[ref.node_id]
        rows.append([ref.node_id, ref.ident,
                     node.successor.node_id, node.predecessor.node_id,
                     ",".join(node.attached_storage) or "-"])
    emit(render_table(
        ["index node", "id", "successor", "predecessor", "attached storage"],
        rows,
        title="A1 (Fig. 1): 9-node network in a 4-bit identifier space",
    ))
    assert system.ring.is_consistent()


def test_a2_table1(benchmark):
    def build():
        table = LocationTable()
        table.add(5, "D1", 15)
        table.add(5, "D3", 10)
        table.add(6, "D1", 10)
        table.add(6, "D3", 20)
        table.add(6, "D4", 15)
        table.add(7, "D1", 30)
        return table

    table = run_once(benchmark, build)
    text = table.format_table({5: "K1", 6: "K2", 7: "K3"})
    emit("A2 (Table I): location table for index node N7\n" + text)
    assert "K2 | D1 (10), D3 (20), D4 (15)" in text


def test_a3_fig3_workflow(benchmark):
    def run():
        system = fig1_network(paper_example_partition())
        executor = DistributedExecutor(system)
        result, report = executor.execute(
            FIGURE_QUERIES["Fig. 9"], initiator="D1"
        )
        return result, report

    result, report = run_once(benchmark, run)
    emit(render_table(
        ["stage", "evidence"],
        [
            ["query parsing", "AST built (see test_artifacts.py)"],
            ["query transformation", "algebra expressions below (A4)"],
            ["global optimization", ", ".join(report.notes) or "-"],
            ["local execution + shipping", f"{report.messages} messages, "
                                           f"{report.bytes_total} bytes"],
            ["post-processing", f"{len(result.rows)} ordered rows at initiator"],
        ],
        title="A3 (Fig. 3): distributed query processing workflow",
    ))
    assert len(result.rows) > 0


def test_a4_figure_queries(benchmark):
    def run():
        from conftest import build_system

        system = build_system(parts=paper_example_partition())
        executor = DistributedExecutor(system)
        out = []
        for name, text in FIGURE_QUERIES.items():
            algebra = translate_pattern(parse_query(text, COMMON_PREFIXES).where)
            result, report = executor.execute(text, initiator="D1")
            out.append([name, format_algebra(algebra)[:60] + "...",
                        len(result.rows), report.bytes_total])
        return out

    rows = run_once(benchmark, run)
    emit(render_table(
        ["figure", "algebra (truncated)", "rows", "bytes"],
        rows,
        title="A4 (Figs. 4-9): the paper's example queries, executed distributedly",
    ))
    assert all(row[2] > 0 for row in rows)
