"""E10 — Join-order optimization via frequency statistics (Sect. IV-D).

AND is associative and commutative, so a multi-pattern BGP may be
evaluated in any order; "the smaller the intermediate results the more
efficient the query processing". The planner orders patterns by the
location tables' frequency totals (smallest first).

Measured: a 3-pattern star query whose patterns differ in cardinality by
an order of magnitude, with reordering on vs off (off = source order,
which deliberately starts with the biggest pattern).
"""

from __future__ import annotations

import random


from repro.metrics import render_table
from repro.query import ConjunctionMode, DistributedExecutor, ExecutionOptions
from repro.rdf import COMMON_PREFIXES, FOAF, NS
from repro.sparql import evaluate_query, parse_query
from repro.workloads import FoafConfig, generate_foaf_triples

from conftest import build_system, emit, run_once

#: Source order is worst-first: knows (big), knowsNothingAbout (medium),
#: nick (small). Reordering should flip it.
QUERY = """SELECT ?x ?z ?y ?k WHERE {
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
  ?x foaf:nick ?k .
}"""


def make_parts(seed: int = 61):
    triples = generate_foaf_triples(FoafConfig(
        num_people=150, knows_per_person=5, knows_nothing_per_person=2,
        nick_fraction=0.1, seed=seed,
    ))
    rng = random.Random(seed)
    parts = {f"D{i}": [] for i in range(4)}
    for t in triples:
        if t.p == FOAF.knows:
            parts[f"D{rng.randrange(2)}"].append(t)
        elif t.p == NS.knowsNothingAbout:
            parts["D2"].append(t)
        elif t.p == FOAF.nick:
            parts["D2"].append(t)
        else:
            parts["D3"].append(t)
    return parts


def measure(parts, reorder, mode):
    system = build_system(num_index=12, parts=parts)
    executor = DistributedExecutor(system, ExecutionOptions(
        reorder_joins=reorder, conjunction_mode=mode,
    ))
    system.stats.reset()
    result, report = executor.execute(QUERY, initiator="D3")
    oracle = evaluate_query(parse_query(QUERY, COMMON_PREFIXES), system.union_graph())
    assert result.rows == oracle.rows
    return {"rows": len(result.rows), "bytes": report.bytes_total,
            "time_ms": report.response_time * 1000}


def run_sweep():
    parts = make_parts()
    results = {}
    rows = []
    for mode in ConjunctionMode:
        for reorder in (False, True):
            m = measure(parts, reorder, mode)
            results[(mode, reorder)] = m
            rows.append([mode.name, "freq-ordered" if reorder else "source-order",
                         m["rows"], round(m["time_ms"], 1), m["bytes"]])
    return results, rows


def test_e10_frequency_join_ordering(benchmark):
    results, rows = run_once(benchmark, run_sweep)
    emit(render_table(
        ["mode", "order", "rows", "time_ms", "bytes"],
        rows,
        title="E10: join ordering by location-table frequencies (Sect. IV-D)",
    ))
    # In BASIC mode the order determines what ships between index nodes:
    # starting with the small pattern must reduce transmission.
    basic_src = results[(ConjunctionMode.BASIC, False)]
    basic_ord = results[(ConjunctionMode.BASIC, True)]
    assert basic_ord["rows"] == basic_src["rows"]
    assert basic_ord["bytes"] < basic_src["bytes"]

    # In OPTIMIZED mode chains run in parallel; ordering governs only the
    # pairwise combine sequence at the shared site — never worse.
    opt_src = results[(ConjunctionMode.OPTIMIZED, False)]
    opt_ord = results[(ConjunctionMode.OPTIMIZED, True)]
    assert opt_ord["bytes"] <= opt_src["bytes"] * 1.05
