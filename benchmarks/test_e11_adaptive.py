"""E11 — The Sect. V planner: cost-based strategy selection.

The paper's conclusions pose the open problem of planning "in the face of
a mixture of such objectives" (transmission vs response time). E11
evaluates our implementation of that planner (``repro.query.adaptive``):
for each provider-count regime, the adaptive executor should track the
better of BASIC / FREQ under its configured objective — turning E1's
crossover from a trap into a planning input.
"""

from __future__ import annotations


from repro.metrics import render_table
from repro.query import DistributedExecutor, ExecutionOptions, PrimitiveStrategy

from conftest import build_system, emit, run_once
from test_e1_primitive_strategies import QUERY, skewed_parts


def measure(parts, strategy, time_weight):
    system = build_system(num_index=10, parts=parts)
    executor = DistributedExecutor(system, ExecutionOptions(
        primitive_strategy=strategy, time_weight=time_weight, dedup_prior=0.85,
    ))
    result, report = executor.execute(QUERY, initiator="D0")
    return {"rows": len(result.rows), "bytes": report.bytes_total,
            "time_ms": report.response_time * 1000,
            "choice": next((n.split()[2] for n in report.notes
                            if "adaptive" in n), strategy.value)}


def run_sweep():
    results = {}
    rows = []
    for providers in (2, 3, 8, 16):
        parts = skewed_parts(providers, duplication=0.3)
        for strategy, tw, label in (
            (PrimitiveStrategy.BASIC, 0.5, "basic"),
            (PrimitiveStrategy.FREQ, 0.5, "freq"),
            (PrimitiveStrategy.ADAPTIVE, 0.0, "adaptive(bytes)"),
            (PrimitiveStrategy.ADAPTIVE, 1.0, "adaptive(time)"),
        ):
            m = measure(parts, strategy, tw)
            results[(providers, label)] = m
            rows.append([providers, label, m["choice"], m["rows"],
                         round(m["time_ms"], 1), m["bytes"]])
    return results, rows


def test_e11_adaptive_tracks_the_frontier(benchmark):
    results, rows = run_once(benchmark, run_sweep)
    emit(render_table(
        ["providers", "executor", "chose", "rows", "time_ms", "bytes"],
        rows,
        title="E11: cost-based strategy selection (the Sect. V planner)",
    ))

    for providers in (2, 3, 8, 16):
        basic = results[(providers, "basic")]
        freq = results[(providers, "freq")]
        ad_bytes = results[(providers, "adaptive(bytes)")]
        ad_time = results[(providers, "adaptive(time)")]
        assert basic["rows"] == freq["rows"] == ad_bytes["rows"] == ad_time["rows"]

        # Under the bytes objective, adaptive is within 5% of the better
        # fixed strategy (the analytic model uses a dedup prior, not the
        # true duplication, so exact optimality is not guaranteed).
        best_bytes = min(basic["bytes"], freq["bytes"])
        worst_bytes = max(basic["bytes"], freq["bytes"])
        assert ad_bytes["bytes"] <= best_bytes * 1.05 or \
            ad_bytes["bytes"] < worst_bytes
        # Under the time objective, same for response time.
        best_time = min(basic["time_ms"], freq["time_ms"])
        worst_time = max(basic["time_ms"], freq["time_ms"])
        assert ad_time["time_ms"] <= best_time * 1.10 or \
            ad_time["time_ms"] < worst_time

    # The planner actually changes its mind across regimes: chains for the
    # small skewed networks under the bytes objective, fan-out at 16.
    assert results[(2, "adaptive(bytes)")]["choice"] == "freq"
    assert results[(16, "adaptive(bytes)")]["choice"] == "basic"
