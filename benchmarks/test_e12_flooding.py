"""E12 — Two-level index vs unstructured flooding (paper Sect. I).

The paper motivates the hybrid design by the "unsatisfactory scalability
in unstructured P2P systems". E12 quantifies that motivation: the same
primitive query on the same data, resolved (a) through the two-level
distributed index and (b) by Gnutella-style flooding at several TTLs.

Expected shape: the indexed system touches O(log N) index nodes plus the
actual providers and achieves full recall; flooding's cost grows with the
edge count of the whole overlay, and capping TTL to control that cost
sacrifices recall.
"""

from __future__ import annotations


from repro.baselines import FloodingSystem
from repro.metrics import render_table
from repro.query import DistributedExecutor
from repro.rdf import FOAF, Graph, TriplePattern, Variable
from repro.sparql.algebra import BGP
from repro.sparql.solutions import match_pattern
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

from conftest import build_system, emit, run_once

X, Y = Variable("x"), Variable("y")
PATTERN = TriplePattern(X, FOAF.knows, Y)
ALG = BGP((PATTERN,))
QUERY = "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"
NUM_NODES = 24


def make_data(seed=91):
    triples = generate_foaf_triples(FoafConfig(num_people=80, seed=seed))
    parts = partition_triples(triples, NUM_NODES, seed=seed + 1)
    return triples, parts


def run_comparison():
    from repro.query import ExecutionOptions, PrimitiveStrategy

    triples, parts = make_data()
    rows = []
    results = {}

    # Two query profiles: a broad scan every provider can answer, and a
    # selective lookup (one subject) that only one or two providers hold.
    anchor = next(t for t in triples if t.p == FOAF.knows)
    selective_pattern = TriplePattern(anchor.s, FOAF.knows, Y)
    profiles = {
        "broad": (PATTERN, ALG, f"SELECT ?x ?y WHERE {{ ?x {FOAF.knows.n3()} ?y . }}"),
        "selective": (
            selective_pattern,
            BGP((selective_pattern,)),
            f"SELECT ?y WHERE {{ {anchor.s.n3()} {FOAF.knows.n3()} ?y . }}",
        ),
    }

    for profile, (pattern, algebra, query_text) in profiles.items():
        full = {match_pattern(pattern, t) for t in Graph(triples).triples(pattern)}

        # (a) the paper's system, with the Sect. V adaptive planner.
        hybrid = build_system(num_index=12, parts=parts)
        executor = DistributedExecutor(hybrid, ExecutionOptions(
            primitive_strategy=PrimitiveStrategy.ADAPTIVE, time_weight=0.0,
        ))
        hybrid.stats.reset()
        result, report = executor.execute(query_text, initiator="D0")
        results[(profile, "hybrid")] = {
            "msgs": report.messages, "bytes": report.bytes_total,
            "recall": len(result.rows) / len(full),
        }
        rows.append([profile, "two-level index", "-", report.messages,
                     report.bytes_total, round(len(result.rows) / len(full), 2)])

        # (b) flooding at several TTLs.
        for ttl in (2, 12):
            flooding = FloodingSystem()
            for i, part in enumerate(parts):
                flooding.add_node(f"F{i}", part)
            flooding.wire_random(4, seed=95)
            flooding.stats.reset()
            answers = flooding.query("F0", algebra, ttl=ttl)
            recall = len(set(answers)) / len(full)
            results[(profile, f"flood-ttl{ttl}")] = {
                "msgs": flooding.stats.messages,
                "bytes": flooding.stats.bytes_total,
                "recall": recall,
            }
            rows.append([profile, "flooding (deg 4)", ttl,
                         flooding.stats.messages, flooding.stats.bytes_total,
                         round(recall, 2)])
    return results, rows


def test_e12_index_vs_flooding(benchmark):
    results, rows = run_once(benchmark, run_comparison)
    emit(render_table(
        ["query", "system", "ttl", "messages", "bytes", "recall"],
        rows,
        title="E12: two-level index vs unstructured flooding (Sect. I)",
    ))

    # The architectural argument: for a *selective* query the index routes
    # straight to the providers, while flooding must still traverse the
    # whole overlay (or give up recall).
    sel_hybrid = results[("selective", "hybrid")]
    sel_flood = results[("selective", "flood-ttl12")]
    assert sel_hybrid["recall"] == 1.0 and sel_flood["recall"] == 1.0
    assert sel_hybrid["msgs"] < sel_flood["msgs"] / 2
    assert sel_hybrid["bytes"] < sel_flood["bytes"]

    # Capped-TTL flooding is cheap but lossy on broad queries.
    cheap = results[("broad", "flood-ttl2")]
    full_flood = results[("broad", "flood-ttl12")]
    assert cheap["msgs"] < full_flood["msgs"]
    assert cheap["recall"] < 1.0
    assert full_flood["recall"] == 1.0

    # Honest caveat, recorded in EXPERIMENTS.md: on a broad query over
    # uniformly spread data, full flooding ships every match exactly once
    # (provider -> initiator) and can undercut the indexed system's bytes;
    # the index still achieves full recall with fewer messages.
    broad_hybrid = results[("broad", "hybrid")]
    assert broad_hybrid["recall"] == 1.0
    assert broad_hybrid["msgs"] < full_flood["msgs"]
