"""E13 — Range queries: locality-preserving hashing vs filter pushing
(paper Sect. II).

The paper notes that RDFPeers resolves numeric range queries with a
locality-preserving hash and a range-ordering algorithm; the hybrid
system instead answers them as a FILTER over the ⟨p⟩-indexed pattern,
pushed to the providers.

Expected shape: RDFPeers' walk visits only the ring arc covering the
range, so its cost *scales with the range width*; the hybrid system's
cost is flat in the width (the providers scan locally and ship only the
hits, so its bytes track the *result size* instead). Narrow ranges favor
the arc walk; the filter design needs no numeric domain configuration and
keeps the data at its providers.
"""

from __future__ import annotations

import random


from repro.baselines import NumericRange, RDFPeersSystem
from repro.chord import IdentifierSpace
from repro.metrics import render_table
from repro.rdf import IRI, Literal, Triple, XSD_INTEGER

from conftest import build_system, emit, run_once

AGE = IRI("http://example.org/ns#age")
NUM_PEOPLE = 200


def age_triples(seed=71):
    rng = random.Random(seed)
    return [
        Triple(
            IRI(f"http://example.org/people/p{i}"),
            AGE,
            Literal(str(rng.randrange(0, 100)), datatype=IRI(XSD_INTEGER)),
        )
        for i in range(NUM_PEOPLE)
    ]


def run_sweep():
    triples = age_triples()

    rdfpeers = RDFPeersSystem(space=IdentifierSpace(24))
    for i in range(16):
        rdfpeers.add_node(f"P{i}")
    rdfpeers.build_ring()
    rdfpeers.enable_numeric_index(0, 100)
    rdfpeers.publish_numeric("P0", triples)

    hybrid = build_system(num_index=16, parts=[triples[:100], triples[100:]])

    rows = []
    results = {}
    for lo, hi in ((40, 45), (30, 60), (0, 99)):
        expected = sum(1 for t in triples if lo <= int(t.o.lexical) <= hi)

        cp = rdfpeers.stats.checkpoint()
        found = rdfpeers.range_query("P1", AGE, [NumericRange(lo, hi)])
        delta = rdfpeers.stats.delta(cp)
        assert len(found) == expected
        results[("rdfpeers", (lo, hi))] = {"msgs": delta.messages, "bytes": delta.bytes}
        rows.append([f"[{lo},{hi}]", "rdfpeers arc walk", expected,
                     delta.messages, delta.bytes])

        query = (
            f"SELECT ?x ?age WHERE {{ ?x {AGE.n3()} ?age . "
            f"FILTER (?age >= {lo} && ?age <= {hi}) }}"
        )
        hybrid.stats.reset()
        result, report = hybrid.execute(query, initiator="D0")
        assert len(result.rows) == expected
        results[("hybrid", (lo, hi))] = {"msgs": report.messages,
                                         "bytes": report.bytes_total}
        rows.append([f"[{lo},{hi}]", "hybrid filter push", expected,
                     report.messages, report.bytes_total])
    return results, rows


def test_e13_range_queries(benchmark):
    results, rows = run_once(benchmark, run_sweep)
    emit(render_table(
        ["range", "system", "hits", "messages", "bytes"],
        rows,
        title="E13: numeric range queries — arc walk vs pushed filter (Sect. II)",
    ))

    # RDFPeers' message count grows with the range width (more arc nodes).
    assert results[("rdfpeers", (0, 99))]["msgs"] > \
        results[("rdfpeers", (40, 45))]["msgs"]
    # The hybrid's message count is flat in the width (same providers).
    assert results[("hybrid", (0, 99))]["msgs"] == \
        results[("hybrid", (40, 45))]["msgs"]
    # Narrow range: the arc walk touches few nodes and undercuts the
    # hybrid's fixed two-level consultation on messages.
    assert results[("rdfpeers", (40, 45))]["msgs"] <= \
        results[("hybrid", (40, 45))]["msgs"] + 4
    # Both systems' bytes track the result size.
    assert results[("hybrid", (0, 99))]["bytes"] > \
        results[("hybrid", (40, 45))]["bytes"]
