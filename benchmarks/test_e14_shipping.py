"""E14 — Transmission-minimizing data shipping (PR 2).

Sweeps the three shipping optimizations (semijoin/Bloom pre-filtering,
projection pushdown, dictionary-delta wire encoding) individually and
combined, over three workloads, always under the BASIC primitive strategy
and the BASIC conjunction walk — the paper's baseline pipeline, so every
byte saved is attributable to this layer.

Claims under test:

* each technique returns bit-identical results to the unoptimized run;
* on the E2 conjunction workload the three techniques together cut total
  inter-site bytes by at least ``REDUCTION_FLOOR`` (the CI-pinned floor);
* no technique ever increases a workload's bytes beyond its documented
  overhead bound: the digests it shipped (``report.digest_bytes``) plus
  one ``BATCH_HEADER_BYTES`` envelope per message.

Writes ``BENCH_PR2_shipping.json`` next to this file for the CI artifact.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter

from repro.metrics import render_table
from repro.net.wire import BATCH_HEADER_BYTES
from repro.query import ConjunctionMode, DistributedExecutor, ExecutionOptions, PrimitiveStrategy
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

from conftest import build_system, emit, run_once
from test_e2_conjunction import QUERY as E2_QUERY, parts_with_overlap

#: The pinned regression floor for the all-techniques run on the E2
#: workload (measured ~0.55 at PR time; CI fails below this).
REDUCTION_FLOOR = 0.30

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_PR2_shipping.json"

#: DISTINCT projection of the E2 conjunction: ?z is dead (bound by one
#: pattern, projected away), so projection pushdown engages; the nick
#: side is selective, so the semijoin digest prunes the knows side.
E2_DISTINCT_QUERY = """SELECT DISTINCT ?x ?k WHERE {
  ?x foaf:knows ?z .
  ?x foaf:nick ?k .
}"""

PATH_QUERY = """SELECT DISTINCT ?k WHERE {
  ?x foaf:knows ?y .
  ?y foaf:nick ?k .
}"""


def _foaf_parts():
    triples = generate_foaf_triples(
        FoafConfig(num_people=100, knows_per_person=3, nick_fraction=0.3,
                   seed=11)
    )
    return partition_triples(triples, 6, overlap=0.2, seed=12)


WORKLOADS = {
    "e2-distinct": (lambda: parts_with_overlap(1), E2_DISTINCT_QUERY),
    "e2-plain": (lambda: parts_with_overlap(1), E2_QUERY),
    "foaf-path": (_foaf_parts, PATH_QUERY),
}

CONFIGS = {
    "baseline": {},
    "semijoin": {"semijoin": True},
    "project": {"projection_pushdown": True},
    "dict": {"dictionary_encoding": True},
    "all": {"semijoin": True, "projection_pushdown": True,
            "dictionary_encoding": True},
}


def canon(result):
    return Counter(
        tuple(sorted((v.name, t.n3()) for v, t in mu.items()))
        for mu in result.rows
    )


def measure(parts, query, **techniques):
    system = build_system(num_index=16, parts=parts)
    options = ExecutionOptions(
        primitive_strategy=PrimitiveStrategy.BASIC,
        conjunction_mode=ConjunctionMode.BASIC,
        **techniques,
    )
    executor = DistributedExecutor(system, options)
    system.stats.reset()
    result, report = executor.execute(query, initiator="D5")
    result_bytes = system.stats.bytes_for("fetch", "fetch.reply")
    return {
        "rows": canon(result),
        "bytes_total": report.bytes_total,
        "inter_bytes": report.bytes_total - result_bytes,
        "result_bytes": result_bytes,
        "messages": report.messages,
        "time_ms": round(report.response_time * 1000, 2),
        "rows_pruned": report.rows_pruned,
        "digest_bytes": report.digest_bytes,
    }


def run_sweep():
    out = {}
    for wname, (mkparts, query) in WORKLOADS.items():
        parts = mkparts()
        for cname, techniques in CONFIGS.items():
            out[(wname, cname)] = measure(parts, query, **techniques)
    return out


def test_e14_shipping_optimizations(benchmark):
    results = run_once(benchmark, run_sweep)

    rows = []
    payload = {"reduction_floor": REDUCTION_FLOOR, "runs": []}
    for (wname, cname), m in results.items():
        base = results[(wname, "baseline")]
        reduction = 1 - m["bytes_total"] / base["bytes_total"]
        rows.append([wname, cname, len(m["rows"]), m["bytes_total"],
                     m["inter_bytes"], f"{100 * reduction:.1f}%",
                     m["rows_pruned"], m["digest_bytes"], m["time_ms"]])
        payload["runs"].append({
            "workload": wname, "config": cname,
            "rows": sum(m["rows"].values()),
            "bytes_total": m["bytes_total"],
            "inter_bytes": m["inter_bytes"],
            "result_bytes": m["result_bytes"],
            "messages": m["messages"],
            "time_ms": m["time_ms"],
            "rows_pruned": m["rows_pruned"],
            "digest_bytes": m["digest_bytes"],
            "reduction_vs_baseline": round(reduction, 4),
        })
    emit(render_table(
        ["workload", "config", "rows", "bytes", "inter_bytes", "saved",
         "pruned", "digest_bytes", "time_ms"],
        rows,
        title="E14: shipping optimizations, techniques x workloads "
              "(BASIC strategy + BASIC conjunction)",
    ))

    # 1. Pure transport change: identical results everywhere.
    for (wname, cname), m in results.items():
        assert m["rows"] == results[(wname, "baseline")]["rows"], \
            (wname, cname)

    # 2. Headline: all three techniques beat the pinned floor on E2.
    base = results[("e2-distinct", "baseline")]
    best = results[("e2-distinct", "all")]
    e2_reduction = 1 - best["inter_bytes"] / base["inter_bytes"]
    payload["e2_inter_byte_reduction"] = round(e2_reduction, 4)
    assert e2_reduction >= REDUCTION_FLOOR
    assert 1 - best["bytes_total"] / base["bytes_total"] >= REDUCTION_FLOOR

    # 3. Bounded overhead: a technique never costs more than the digests
    # it shipped plus one batch envelope per message.
    for (wname, cname), m in results.items():
        bound = (results[(wname, "baseline")]["bytes_total"]
                 + m["digest_bytes"] + m["messages"] * BATCH_HEADER_BYTES)
        assert m["bytes_total"] <= bound, (wname, cname)

    # 4. The semijoin actually prunes on the selective workloads.
    assert results[("e2-distinct", "semijoin")]["rows_pruned"] > 0
    assert results[("e2-distinct", "all")]["digest_bytes"] > 0

    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
