"""E15 — Concurrent query processing under contention (PR 3).

Closed-loop multiprogramming sweep (1/4/16/64 concurrent clients) over
two workloads — the E2 controlled-overlap conjunction mix and an
E7-style synthetic FOAF mix — with the network contention model
attached, with and without the PR 2 shipping optimizations.

Claims under test:

* **Correctness is concurrency-invariant**: every job at every
  multiprogramming level returns solutions bit-identical to a serial
  execution of the same query.
* **Concurrency = 1 is the serial engine**: the first job of the
  single-client workload reports the exact response time and message
  count of a direct ``execute`` on a fresh system, contention attached.
* **Contention is real**: on the E2 mix, p95 latency at 64 clients
  strictly exceeds the single-client p95 — concurrent queries queue for
  node bandwidth and compute instead of enjoying infinite parallelism.
* **Shipping helps under load**: the PR 2 optimizations still reduce
  total bytes at every multiprogramming level.

Writes ``BENCH_PR3_concurrency.json`` next to this file for CI.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter

from repro.metrics import render_table
from repro.net import ContentionModel
from repro.query import DistributedExecutor, ExecutionOptions
from repro.workloads import (
    FoafConfig,
    LoadConfig,
    generate_foaf_triples,
    partition_triples,
    run_workload,
)

from conftest import build_system, emit, run_once
from test_e2_conjunction import QUERY as E2_QUERY, parts_with_overlap
from test_e14_shipping import E2_DISTINCT_QUERY

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_PR3_concurrency.json"

LEVELS = (1, 4, 16, 64)
NUM_QUERIES = 64

CONFIGS = {
    "plain": {},
    "shipping": {"semijoin": True, "projection_pushdown": True,
                 "dictionary_encoding": True},
}

FOAF_PATH_QUERY = """SELECT DISTINCT ?k WHERE {
  ?x foaf:knows ?y .
  ?y foaf:nick ?k .
}"""
FOAF_KNOWS_QUERY = "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"


def _foaf_parts():
    triples = generate_foaf_triples(
        FoafConfig(num_people=100, knows_per_person=3, nick_fraction=0.3,
                   seed=11))
    return partition_triples(triples, 6, overlap=0.2, seed=12)


WORKLOADS = {
    "e2": (lambda: parts_with_overlap(1),
           [("e2", E2_QUERY), ("e2-distinct", E2_DISTINCT_QUERY)]),
    "foaf": (_foaf_parts,
             [("path", FOAF_PATH_QUERY), ("knows", FOAF_KNOWS_QUERY)]),
}


def canon(result):
    return Counter(
        tuple(sorted((v.name, t.n3()) for v, t in mu.items()))
        for mu in result.rows
    )


def fresh_system(parts):
    system = build_system(num_index=16, parts=parts)
    system.network.contention = ContentionModel()
    return system


def measure_cell(parts, mix, level, options):
    system = fresh_system(parts)
    config = LoadConfig(
        queries=mix,
        initiators=tuple(sorted(system.storage_nodes)),
        mode="closed",
        concurrency=level,
        num_queries=NUM_QUERIES,
        seed=15,
    )
    report = run_workload(system, config, options)
    lat = report.latency
    return {
        "report": report,
        "throughput": report.throughput,
        "mean_ms": lat.mean * 1000,
        "p50_ms": lat.p50 * 1000,
        "p95_ms": lat.p95 * 1000,
        "p99_ms": lat.p99 * 1000,
        "duration_ms": report.duration * 1000,
        "messages": report.messages,
        "bytes_total": report.bytes_total,
        "contention_wait_ms": report.contention["total_wait"] * 1000,
        "max_queue_depth": report.contention["max_queue_depth"],
    }


def run_sweep():
    results = {}
    serial = {}
    for wname, (mkparts, mix) in WORKLOADS.items():
        parts = mkparts()
        for cname, techniques in CONFIGS.items():
            options = ExecutionOptions(**techniques)
            # The serial oracle: each mix entry executed alone on a fresh
            # contended system (single flow => zero queueing).
            baselines = {}
            for label, query in mix:
                system = fresh_system(parts)
                result, rep = DistributedExecutor(system, options).execute(
                    query, initiator=sorted(system.storage_nodes)[0])
                baselines[label] = {"canon": canon(result), "report": rep}
            serial[(wname, cname)] = baselines
            for level in LEVELS:
                results[(wname, cname, level)] = measure_cell(
                    parts, mix, level, options)
    return results, serial


def test_e15_concurrency(benchmark):
    results, serial = run_once(benchmark, run_sweep)

    rows = []
    payload = {"levels": list(LEVELS), "num_queries": NUM_QUERIES,
               "cells": []}
    for (wname, cname, level), m in sorted(results.items()):
        rows.append([
            wname, cname, level, f"{m['throughput']:.1f}",
            f"{m['p50_ms']:.1f}", f"{m['p95_ms']:.1f}",
            f"{m['p99_ms']:.1f}", m["messages"], m["bytes_total"],
            f"{m['contention_wait_ms']:.1f}", m["max_queue_depth"],
        ])
        payload["cells"].append({
            "workload": wname, "config": cname, "concurrency": level,
            "throughput_qps": round(m["throughput"], 2),
            "latency_ms": {
                "mean": round(m["mean_ms"], 3),
                "p50": round(m["p50_ms"], 3),
                "p95": round(m["p95_ms"], 3),
                "p99": round(m["p99_ms"], 3),
            },
            "duration_ms": round(m["duration_ms"], 3),
            "messages": m["messages"],
            "bytes_total": m["bytes_total"],
            "contention_wait_ms": round(m["contention_wait_ms"], 3),
            "max_queue_depth": m["max_queue_depth"],
        })
    emit(render_table(
        ["workload", "config", "clients", "q/s", "p50_ms", "p95_ms",
         "p99_ms", "messages", "bytes", "wait_ms", "depth"],
        rows,
        title=f"E15: closed-loop concurrency sweep, {NUM_QUERIES} queries "
              "per cell, contention enabled",
    ))

    # 1. Solutions are concurrency-invariant: every completed job matches
    # the serial oracle for its query, at every level and config.
    for (wname, cname, level), m in results.items():
        baselines = serial[(wname, cname)]
        report = m["report"]
        assert report.completed == NUM_QUERIES, (wname, cname, level)
        assert report.failed == 0 and report.shed == 0
        for job in report.jobs:
            assert canon(job.result) == baselines[job.label]["canon"], \
                (wname, cname, level, job.job_id)

    # 2. A single-client workload IS the serial engine: its first job
    # reports the exact serial response time and message count.
    for wname in WORKLOADS:
        for cname in CONFIGS:
            first = results[(wname, cname, 1)]["report"].jobs[0]
            oracle = serial[(wname, cname)][first.label]["report"]
            assert first.report.response_time == oracle.response_time, \
                (wname, cname)
            assert first.report.messages == oracle.messages
            assert first.report.bytes_total == oracle.bytes_total

    # 3. The headline acceptance claim: 64-way concurrency has strictly
    # worse tail latency than serial on the E2 mix — contention bites.
    for cname in CONFIGS:
        p95_serial = results[("e2", cname, 1)]["p95_ms"]
        p95_loaded = results[("e2", cname, 64)]["p95_ms"]
        assert p95_loaded > p95_serial, (cname, p95_serial, p95_loaded)
        payload.setdefault("e2_p95_ratio", {})[cname] = round(
            p95_loaded / p95_serial, 3)

    # 4. Queueing actually happened at 64 clients.
    for wname in WORKLOADS:
        m = results[(wname, "plain", 64)]
        assert m["max_queue_depth"] > 1
        assert m["contention_wait_ms"] > 0

    # 5. The shipping optimizations keep paying off under load.
    for wname in WORKLOADS:
        for level in LEVELS:
            plain = results[(wname, "plain", level)]
            shipped = results[(wname, "shipping", level)]
            assert shipped["bytes_total"] < plain["bytes_total"], \
                (wname, level)

    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
