"""E16 — Durable state & recovery: restart cost vs snapshot interval (PR 4).

A durable system (every node write-ahead logging under a state
directory) runs the E15 closed-loop load harness with contention
attached. Mid-workload, the index node owning the hot ``foaf:knows``
key crashes; the workload drains (the jobs that needed the dead node
fail — that is the churn window), then the node restarts from its
snapshot + WAL and rejoins the ring.

Swept over snapshot intervals (no snapshots / every 256 records /
every 64 records), the experiment measures:

* **recovery cost**: WAL records replayed and wall-clock restart time —
  both must shrink as snapshots get more frequent;
* **queries affected**: jobs failed because they ran while the owner of
  their key was down;
* **correctness**: post-recovery Fig. 4-9-style answers are
  bit-identical to a system that never crashed, at every interval;
* **cold restart**: a whole-site ``recover_system`` power cycle from
  the same state directory also round-trips the answers.

Writes ``BENCH_PR4_durability.json`` next to this file for CI.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.chord import IdentifierSpace
from repro.metrics import render_table
from repro.net import ContentionModel
from repro.overlay import HybridSystem, key_for_pattern, restart_index_node
from repro.rdf import FOAF, TriplePattern, Variable
from repro.storage import recover_system
from repro.workloads import (
    FoafConfig,
    LoadConfig,
    generate_foaf_triples,
    partition_triples,
    run_workload,
)

from conftest import emit, run_once

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_PR4_durability.json"

#: ``snapshot_every`` sweep: WAL-only recovery, coarse, fine.
INTERVALS = (None, 256, 64)

NUM_QUERIES = 48
CONCURRENCY = 8

QUERY_MIX = [
    ("knows", "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"),
    ("path", "SELECT DISTINCT ?k WHERE { ?x foaf:knows ?y . "
             "?y foaf:nick ?k . }"),
]

X, Y = Variable("x"), Variable("y")


def foaf_parts():
    triples = generate_foaf_triples(
        FoafConfig(num_people=200, knows_per_person=4, nick_fraction=0.4,
                   seed=21))
    return partition_triples(triples, 6, overlap=0.1, seed=22)


def build_system(parts, state_dir=None, snapshot_every=None):
    system = HybridSystem(
        space=IdentifierSpace(32),
        state_dir=state_dir,
        snapshot_every=snapshot_every,
    )
    for i in range(8):
        system.add_index_node(f"N{i}")
    system.build_ring()
    for i, triples in enumerate(parts):
        system.add_storage_node(f"D{i}", triples)
    system.network.contention = ContentionModel()
    return system


def knows_owner(system) -> str:
    _, key = key_for_pattern(TriplePattern(X, FOAF.knows, Y), system.space)
    return system.ring.owner_of(key).node_id


def answers(system):
    return {label: system.execute(text)[0].rows for label, text in QUERY_MIX}


def load_config():
    return LoadConfig(
        queries=QUERY_MIX,
        mode="closed",
        concurrency=CONCURRENCY,
        num_queries=NUM_QUERIES,
        seed=16,
    )


def measure_interval(parts, state_dir, snapshot_every, crash_at, baseline):
    system = build_system(parts, state_dir=state_dir,
                          snapshot_every=snapshot_every)
    loaded = system.durability.checkpoint()
    victim = knows_owner(system)
    system.sim.timeout(crash_at).callbacks.append(
        lambda _e: system.network.fail_node(victim))
    report = run_workload(system, load_config())
    system.ring.stabilize(3)
    system.journal_event("index-fail", victim)

    before = system.durability.checkpoint()
    t0 = time.perf_counter()
    restart_index_node(system, victim)
    restart_wall = time.perf_counter() - t0
    delta = system.durability.delta(before)

    post = answers(system)
    assert post == baseline, f"answers diverged (snapshot_every={snapshot_every})"

    # Whole-site power cycle from the same state directory.
    t0 = time.perf_counter()
    recovered, recovery_report = recover_system(state_dir)
    cold_wall = time.perf_counter() - t0
    assert answers(recovered) == baseline, \
        f"cold restart diverged (snapshot_every={snapshot_every})"
    cold_replayed = sum(
        info["records_replayed"]
        for section in recovery_report.values()
        for info in section.values()
    )

    return {
        "victim": victim,
        "completed": report.completed,
        "queries_affected": report.failed,
        "shed": report.shed,
        "wal_appended_during_load": loaded.wal_records_appended,
        "snapshots_during_load": loaded.snapshots_written,
        "restart_records_replayed": delta["wal_records_replayed"],
        "restart_snapshots_loaded": delta["snapshots_loaded"],
        "restart_wall_ms": restart_wall * 1000,
        "cold_records_replayed": cold_replayed,
        "cold_wall_ms": cold_wall * 1000,
    }


def run_sweep(tmp_dir):
    parts = foaf_parts()

    # The never-crashed oracle, and the crash schedule: the node dies
    # ~40% into the healthy run's drain time.
    control = build_system(parts)
    control_report = run_workload(control, load_config())
    assert control_report.failed == 0 and control_report.shed == 0
    baseline = answers(control)
    crash_at = control_report.duration * 0.4

    results = {}
    for snapshot_every in INTERVALS:
        tag = snapshot_every if snapshot_every is not None else "none"
        state_dir = pathlib.Path(tmp_dir) / f"state-{tag}"
        results[snapshot_every] = measure_interval(
            parts, state_dir, snapshot_every, crash_at, baseline)
    return results, control_report


def test_e16_durability(benchmark, tmp_path):
    results, control_report = run_once(
        benchmark, lambda: run_sweep(tmp_path))

    rows = []
    payload = {
        "num_queries": NUM_QUERIES,
        "concurrency": CONCURRENCY,
        "control_completed": control_report.completed,
        "intervals": [],
    }
    for snapshot_every in INTERVALS:
        m = results[snapshot_every]
        tag = "none" if snapshot_every is None else str(snapshot_every)
        rows.append([
            tag, m["victim"], m["queries_affected"], m["completed"],
            m["snapshots_during_load"], m["restart_records_replayed"],
            f"{m['restart_wall_ms']:.1f}", m["cold_records_replayed"],
            f"{m['cold_wall_ms']:.1f}",
        ])
        payload["intervals"].append({
            "snapshot_every": snapshot_every,
            "victim": m["victim"],
            "queries_affected": m["queries_affected"],
            "completed": m["completed"],
            "wal_appended_during_load": m["wal_appended_during_load"],
            "snapshots_during_load": m["snapshots_during_load"],
            "restart_records_replayed": m["restart_records_replayed"],
            "restart_snapshots_loaded": m["restart_snapshots_loaded"],
            "restart_wall_ms": round(m["restart_wall_ms"], 3),
            "cold_records_replayed": m["cold_records_replayed"],
            "cold_wall_ms": round(m["cold_wall_ms"], 3),
        })
    emit(render_table(
        ["snap_every", "victim", "affected", "completed", "snaps",
         "replayed", "restart_ms", "cold_replayed", "cold_ms"],
        rows,
        title=f"E16: crash+restart under load ({NUM_QUERIES} queries, "
              f"{CONCURRENCY} clients), snapshot-interval sweep",
    ))

    # 1. The crash actually hit the workload: some queries ran against
    # the dead owner and failed, at every interval (same crash schedule).
    for snapshot_every, m in results.items():
        assert m["queries_affected"] > 0, snapshot_every
        assert m["completed"] + m["queries_affected"] == NUM_QUERIES

    # 2. Snapshots bound replay: more frequent snapshots mean strictly
    # fewer WAL records replayed at restart, for the victim and for the
    # whole-site cold start.
    replayed = [results[i]["restart_records_replayed"] for i in INTERVALS]
    assert replayed[0] > replayed[1] > replayed[2]
    cold = [results[i]["cold_records_replayed"] for i in INTERVALS]
    assert cold[0] > cold[1] > cold[2]

    # 3. Snapshotting actually happened for the finite intervals, and
    # the finer interval wrote at least as many snapshots.
    assert results[None]["snapshots_during_load"] == 0
    assert results[64]["snapshots_during_load"] >= \
        results[256]["snapshots_during_load"] > 0

    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
