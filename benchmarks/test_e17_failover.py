"""E17 — Query success under index-node churn, failover off vs. on (PR 6).

A closed-loop workload (48 queries, 8 clients) over the paper-example
dataset with rf=2 location-table replication, while a seeded churn
schedule crashes the two index nodes that own the workload's predicate
keys mid-run.  Three cells:

* **baseline** — churn-free, classic options: the reference answers and
  tail latency;
* **churn / failover off** — the same crashes with the classic fail-fast
  engine: affected queries fail (cleanly, but they fail);
* **churn / failover on** — retry budgets + replica failover: ≥99 % of
  queries complete, every completed answer bit-identical to baseline.

Claims under test:

* **Failover recovers what fail-fast loses**: the off-cell fails at
  least one query; the on-cell completes ≥99 % (in this deterministic
  schedule: all) of them.
* **Recovery is exact**: every completed on-cell answer equals the
  churn-free answer for its query, row for row.
* **Recovery is not free**: the on-cell's p99 exceeds the churn-free
  p99 — timeouts, backoff, and re-dispatch cost latency, which is the
  honest price of the ≥99 % success rate.

Writes ``BENCH_PR6_failover.json`` next to this file for CI.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter

from repro.metrics import render_table
from repro.overlay import key_for_pattern
from repro.query import DistributedExecutor, ExecutionOptions
from repro.rdf import FOAF, TriplePattern, Variable
from repro.workloads import LoadConfig, churn_schedule, run_workload

from conftest import build_system, emit, run_once

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_PR6_failover.json"

NUM_QUERIES = 48
CONCURRENCY = 8
CHURN_WINDOW = (0.05, 0.45)
SEED = 17

MIX = [
    ("knows", "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"),
    ("name", 'SELECT ?x WHERE { ?x foaf:name "Smith" . }'),
    ("conj", "SELECT ?x ?n WHERE { ?x foaf:knows ?y . ?y foaf:name ?n . }"),
]

FAILOVER_OPTIONS = ExecutionOptions(
    failover=True, retries=2, backoff=0.05, per_attempt_timeout=0.4)


def canon(result):
    return Counter(
        tuple(sorted((v.name, t.n3()) for v, t in mu.items()))
        for mu in result.rows
    )


def fresh_system():
    from repro.workloads import paper_example_partition

    return build_system(parts=paper_example_partition(),
                        replication_factor=2)


def predicate_owners(system):
    """The index nodes owning the workload's two predicate keys — the
    churn victims, so every crash actually matters to the mix."""
    x, y = Variable("x"), Variable("y")
    owners = []
    for pattern in (TriplePattern(x, FOAF.knows, y),
                    TriplePattern(x, FOAF.name, y)):
        _kind, key = key_for_pattern(pattern, system.space)
        owner = system.ring.owner_of(key).node_id
        if owner not in owners:
            owners.append(owner)
    return owners


def measure_cell(options, with_churn):
    system = fresh_system()
    churn = ()
    if with_churn:
        churn = churn_schedule(predicate_owners(system), num_crashes=2,
                               window=CHURN_WINDOW, seed=SEED)
    config = LoadConfig(
        queries=MIX,
        initiators=tuple(sorted(system.storage_nodes)),
        mode="closed",
        concurrency=CONCURRENCY,
        num_queries=NUM_QUERIES,
        seed=SEED,
        churn=churn,
    )
    report = run_workload(system, config, options)
    lat = report.latency
    return {
        "report": report,
        "churn": churn,
        "completed": report.completed,
        "failed": report.failed,
        "success_rate": report.completed / len(report.jobs),
        "p50_ms": lat.p50 * 1000 if lat else None,
        "p99_ms": lat.p99 * 1000 if lat else None,
        "failover": dict(report.failover),
    }


def run_cells():
    # The churn-free oracle answers, one serial run per mix entry.
    oracle_system = fresh_system()
    oracle = {}
    for label, query in MIX:
        result, _ = DistributedExecutor(oracle_system).execute(
            query, initiator=sorted(oracle_system.storage_nodes)[0])
        oracle[label] = canon(result)
    cells = {
        "baseline": measure_cell(ExecutionOptions(), with_churn=False),
        "churn_failover_off": measure_cell(ExecutionOptions(),
                                           with_churn=True),
        "churn_failover_on": measure_cell(FAILOVER_OPTIONS, with_churn=True),
    }
    return oracle, cells


def test_e17_failover(benchmark):
    oracle, cells = run_once(benchmark, run_cells)

    rows = []
    payload = {"num_queries": NUM_QUERIES, "concurrency": CONCURRENCY,
               "replication_factor": 2, "seed": SEED, "cells": {}}
    for name, m in cells.items():
        fo = m["failover"]
        rows.append([
            name, m["completed"], m["failed"],
            f"{m['success_rate'] * 100:.1f}%",
            f"{m['p50_ms']:.1f}" if m["p50_ms"] is not None else "-",
            f"{m['p99_ms']:.1f}" if m["p99_ms"] is not None else "-",
            fo.get("retries", 0),
            fo.get("lookup_failovers", 0) + fo.get("dispatch_failovers", 0)
            + fo.get("entry_failovers", 0),
        ])
        payload["cells"][name] = {
            "completed": m["completed"],
            "failed": m["failed"],
            "success_rate": round(m["success_rate"], 4),
            "p50_ms": round(m["p50_ms"], 3) if m["p50_ms"] is not None else None,
            "p99_ms": round(m["p99_ms"], 3) if m["p99_ms"] is not None else None,
            "churn": [
                {"at": round(ev.at, 4), "action": ev.action,
                 "node": ev.node_id}
                for ev in m["churn"]
            ],
            "failover": fo,
        }
    emit(render_table(
        ["cell", "done", "failed", "success", "p50_ms", "p99_ms",
         "retries", "failovers"],
        rows,
        title=f"E17: {NUM_QUERIES} queries, {CONCURRENCY} clients, rf=2, "
              "two predicate-owner crashes mid-run",
    ))

    baseline = cells["baseline"]
    off = cells["churn_failover_off"]
    on = cells["churn_failover_on"]

    # 0. The churn-free baseline is healthy and exact.
    assert baseline["failed"] == 0
    for job in baseline["report"].jobs:
        assert canon(job.result) == oracle[job.label]

    # 1. Fail-fast loses queries to the crashes (cleanly, but loses them).
    assert off["failed"] > 0
    for job in off["report"].jobs:
        if job.error is not None:
            assert "distributed execution failed" in job.error

    # 2. The acceptance bar: failover on completes >= 99 % of the same
    # workload under the same crash schedule …
    assert on["success_rate"] >= 0.99, on["success_rate"]
    # … and every completed answer is bit-identical to the churn-free run.
    for job in on["report"].jobs:
        if job.result is not None:
            assert canon(job.result) == oracle[job.label], job.job_id
    # The machinery actually ran (the cell didn't pass by luck).
    fo = on["failover"]
    assert (fo.get("retries", 0) + fo.get("lookup_failovers", 0)
            + fo.get("dispatch_failovers", 0)
            + fo.get("entry_failovers", 0)) >= 1

    # 3. Recovery costs tail latency — the honest trade.
    assert on["p99_ms"] > baseline["p99_ms"]

    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
