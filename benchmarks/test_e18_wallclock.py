"""E18 — Wall-clock throughput of the engine itself (PR 7).

Every other experiment measures the *simulated* system; this one measures
the *simulator*: how many queries per real second the engine sustains on
the E15 closed-loop contention workload. PR 7's performance layer —
interned RDF terms, schema-based tuple-row join kernels, the simulator's
zero-delay deque fast path, memoized ring keys, and cached wire sizing —
targets exactly this number, under the hard constraint that no simulated
result changes (see ``tests/test_golden_metrics.py`` for the bit-identity
guard).

Pinned baseline, recorded before any PR 7 change (commit 42c5621, this
container, best of 3): the workload below took **1.321 s of wall clock —
72.7 queries per real second**. The acceptance target was >= 2.5x.

Claims under test:

* **Determinism survives the fast paths**: back-to-back runs report
  identical simulated duration, message count, and byte totals, and every
  job completes.
* **The wall-clock plumbing works**: ``WorkloadReport.wall_clock_s`` and
  ``queries_per_wall_second`` are populated and consistent.

The measured speedup is *recorded* in ``BENCH_PR7_wallclock.json`` (for
CI to archive as an artifact) but deliberately **not asserted**: wall
clock on shared CI runners is noisy, and a threshold here would flake.
Compare the JSON against the pinned baseline when reviewing.
"""

from __future__ import annotations

import json
import pathlib
import platform

from repro.metrics import render_table
from repro.net import ContentionModel
from repro.query import ExecutionOptions
from repro.workloads import LoadConfig, run_workload

from conftest import build_system, emit, run_once
from test_e2_conjunction import QUERY as E2_QUERY, parts_with_overlap
from test_e14_shipping import E2_DISTINCT_QUERY

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_PR7_wallclock.json"

NUM_QUERIES = 96
CONCURRENCY = 16
ROUNDS = 3

#: Best-of-3 wall clock of this exact workload at commit 42c5621 (the
#: last commit before the PR 7 performance layer), measured in the same
#: container this benchmark first ran in. Informational: real time is
#: machine-dependent, so the JSON records it for comparison instead of a
#: test asserting against it.
BASELINE = {
    "commit": "42c5621",
    "wall_clock_s": 1.321,
    "queries_per_wall_second": 72.7,
    "method": f"best of {ROUNDS}, identical workload, same machine",
}


def run_cell():
    parts = parts_with_overlap(1)
    system = build_system(num_index=16, parts=parts)
    system.network.contention = ContentionModel()
    config = LoadConfig(
        queries=[("e2", E2_QUERY), ("e2-distinct", E2_DISTINCT_QUERY)],
        initiators=tuple(sorted(system.storage_nodes)),
        mode="closed",
        concurrency=CONCURRENCY,
        num_queries=NUM_QUERIES,
        seed=15,
    )
    options = ExecutionOptions(
        semijoin=True, projection_pushdown=True, dictionary_encoding=True
    )
    return run_workload(system, config, options)


def run_rounds():
    return [run_cell() for _ in range(ROUNDS)]


def test_e18_wallclock(benchmark):
    reports = run_once(benchmark, run_rounds)

    # Determinism: the fast paths must not leak into simulated results.
    first = reports[0]
    assert first.completed == NUM_QUERIES
    assert first.failed == 0 and first.shed == 0
    for rep in reports[1:]:
        assert rep.completed == first.completed
        assert rep.duration == first.duration
        assert rep.messages == first.messages
        assert rep.bytes_total == first.bytes_total

    # Wall-clock plumbing: real time was measured and is self-consistent.
    for rep in reports:
        assert rep.wall_clock_s > 0.0
        assert rep.queries_per_wall_second > 0.0
        assert rep.queries_per_wall_second == (
            rep.completed / rep.wall_clock_s
        )

    best = min(reports, key=lambda r: r.wall_clock_s)
    speedup = (
        best.queries_per_wall_second / BASELINE["queries_per_wall_second"]
    )

    rows = [
        [i, f"{rep.wall_clock_s * 1000:.1f}",
         f"{rep.queries_per_wall_second:.1f}",
         f"{rep.duration * 1000:.1f}", rep.messages, rep.bytes_total]
        for i, rep in enumerate(reports)
    ]
    rows.append([
        "baseline", f"{BASELINE['wall_clock_s'] * 1000:.1f}",
        f"{BASELINE['queries_per_wall_second']:.1f}", "-", "-", "-",
    ])
    emit(render_table(
        ["round", "wall_ms", "q/s real", "sim_ms", "messages", "bytes"],
        rows,
        title=f"E18: engine wall-clock throughput, {NUM_QUERIES} queries, "
              f"{CONCURRENCY} clients, contention + shipping on "
              f"(speedup vs pinned baseline: {speedup:.2f}x)",
    ))

    payload = {
        "workload": {
            "queries": ["e2", "e2-distinct"],
            "num_queries": NUM_QUERIES,
            "concurrency": CONCURRENCY,
            "mode": "closed",
            "seed": 15,
            "num_index": 16,
            "contention": True,
            "techniques": ["semijoin", "projection_pushdown",
                           "dictionary_encoding"],
        },
        "baseline": BASELINE,
        "runs": [
            {
                "wall_clock_s": round(rep.wall_clock_s, 4),
                "queries_per_wall_second": round(
                    rep.queries_per_wall_second, 1),
            }
            for rep in reports
        ],
        "best": {
            "wall_clock_s": round(best.wall_clock_s, 4),
            "queries_per_wall_second": round(
                best.queries_per_wall_second, 1),
            "speedup_vs_baseline": round(speedup, 2),
        },
        "simulated": {
            "completed": first.completed,
            "duration_ms": round(first.duration * 1000, 3),
            "throughput_qps": round(first.throughput, 2),
            "messages": first.messages,
            "bytes_total": first.bytes_total,
        },
        "python": platform.python_version(),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
