"""E19 — The cost-based physical planner (PR 8).

Sect. V poses the open problem of producing "good query plans" under a
mixture of transmission and response-time objectives. PR 8 answers it
with an explicit physical-operator plan (``repro.query.physical``) and a
frequency-driven planner (``repro.query.cost``, ``--plan cost``): one
parallel round of location-table statistics lookups seeds leaf
cardinalities, and a pure bottom-up estimation pass pins join order, the
conjunction walk mode, per-leaf chain strategies, and byte-weighted
combine sites before the first data byte moves.

Claims under test, on the paper's own Fig. 4-9 query mix:

* **Answers are invariant**: the cost planner returns exactly the rows
  the BASIC bundle returns, query for query.
* **Bytes go down**: with the pure-transmission objective
  (``time_weight=0``), the planner ships fewer total inter-site bytes
  than the BASIC bundle on at least half of the Fig. 4-9 queries, and
  in aggregate over the whole mix.
* **The estimates are live**: every cost-mode plan carries non-None
  ``est_rows`` on its execution root — the numbers ``repro explain``
  prints are the numbers the decisions were made from.

The full per-query grid (BASIC bundle / default optimized bundle / cost
planner) is recorded in ``BENCH_PR8_planner.json`` for CI to archive.
"""

from __future__ import annotations

import json
import pathlib

from repro.metrics import render_table
from repro.query import DistributedExecutor, ExecutionOptions
from repro.query.physical import execution_root
from repro.query.strategies import (
    ConjunctionMode,
    JoinSitePolicy,
    PrimitiveStrategy,
)
from repro.workloads import PAPER_FIG_QUERIES, paper_example_partition

from conftest import build_system, emit, run_once

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_PR8_planner.json"

#: The paper's unoptimized configuration: plain fan-out primitives, the
#: index-node-to-index-node conjunction walk, all combines at the
#: initiator.
BASIC_BUNDLE = dict(
    primitive_strategy=PrimitiveStrategy.BASIC,
    conjunction_mode=ConjunctionMode.BASIC,
    join_site_policy=JoinSitePolicy.QUERY_SITE,
)


def _measure(query_text, **options):
    system = build_system(num_index=8, parts=paper_example_partition())
    executor = DistributedExecutor(system, ExecutionOptions(**options))
    result, report = executor.execute(query_text, initiator="D1")
    return result, report


def run_grid():
    cells = {}
    rows = []
    for name, query_text in PAPER_FIG_QUERIES.items():
        basic_result, basic_report = _measure(query_text, **BASIC_BUNDLE)
        default_result, default_report = _measure(query_text)
        cost_result, cost_report = _measure(
            query_text, **BASIC_BUNDLE, plan_mode="cost", time_weight=0.0)
        cells[name] = {
            "rows": basic_report.result_count,
            "basic_bytes": basic_report.bytes_total,
            "default_bytes": default_report.bytes_total,
            "cost_bytes": cost_report.bytes_total,
            "basic_messages": basic_report.messages,
            "cost_messages": cost_report.messages,
            "answers_equal": (
                sorted(map(str, basic_result.rows))
                == sorted(map(str, cost_result.rows))
                == sorted(map(str, default_result.rows))
            ),
            "root_estimated": execution_root(
                cost_report.plan).est_rows is not None,
        }
        rows.append([
            name, basic_report.result_count,
            basic_report.bytes_total, default_report.bytes_total,
            cost_report.bytes_total,
            "yes" if cells[name]["cost_bytes"] < cells[name]["basic_bytes"]
            else "no",
        ])
    return cells, rows


def test_e19_cost_planner_beats_basic(benchmark):
    cells, rows = run_once(benchmark, run_grid)
    emit(render_table(
        ["query", "rows", "basic_bytes", "default_bytes", "cost_bytes",
         "cost<basic"],
        rows,
        title="E19: frequency-driven cost planner vs fixed bundles "
              "(Fig. 4-9 mix, time_weight=0)",
    ))

    for name, cell in cells.items():
        # Plan choices must never change the answer.
        assert cell["answers_equal"], name
        # The decisions were made from real estimates.
        assert cell["root_estimated"], name

    wins = sum(cell["cost_bytes"] < cell["basic_bytes"]
               for cell in cells.values())
    assert wins * 2 >= len(cells), (
        f"cost planner reduced bytes on only {wins}/{len(cells)} queries")
    assert (sum(c["cost_bytes"] for c in cells.values())
            < sum(c["basic_bytes"] for c in cells.values()))

    payload = {
        "workload": "PAPER_FIG_QUERIES over paper_example_partition",
        "objective": "time_weight=0.0 (pure transmission)",
        "wins_vs_basic": wins,
        "queries": len(cells),
        "cells": cells,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
