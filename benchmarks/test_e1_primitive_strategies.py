"""E1 — Primitive query strategies (paper Sect. IV-C).

Claims under test:

* BASIC exploits parallelism: lowest response time, but "high
  transmission overhead may be incurred" relative to the optimized
  chains *in the regime the paper describes* — few providers with
  overlapping (duplicated) data and skewed contribution sizes.
* The frequency-ordered chain achieves the minimum transmission: the
  largest contributor is last on the sequence and returns directly to
  the initiator, so its data crosses the network exactly once.
* The crossover: with many uniform providers, chains ship accumulated
  results over many hops and BASIC wins on bytes too — the conflict of
  optimization goals the paper concedes in Sect. V.
"""

from __future__ import annotations

import random


from repro.metrics import render_table
from repro.query import DistributedExecutor, ExecutionOptions, PrimitiveStrategy
from repro.rdf import FOAF
from repro.workloads import FoafConfig, generate_foaf_triples

from conftest import build_system, emit, run_once

QUERY = "SELECT ?s ?o WHERE { ?s foaf:knows ?o . }"


def skewed_parts(num_providers: int, duplication: float, seed: int = 1):
    """Provider datasets with skewed sizes and controlled duplication.

    Provider i receives a slice ∝ (i+1); with probability *duplication*
    a triple is also copied to one other provider.
    """
    triples = [t for t in generate_foaf_triples(
        FoafConfig(num_people=150, knows_per_person=4, seed=seed))
        if t.p == FOAF.knows]
    rng = random.Random(seed + 1)
    weights = [(i + 1) for i in range(num_providers)]
    total = sum(weights)
    parts = [[] for _ in range(num_providers)]
    for t in triples:
        r = rng.random() * total
        acc = 0
        home = 0
        for i, w in enumerate(weights):
            acc += w
            if r <= acc:
                home = i
                break
        parts[home].append(t)
        if num_providers > 1 and rng.random() < duplication:
            other = rng.randrange(num_providers - 1)
            if other >= home:
                other += 1
            parts[other].append(t)
    return parts


def measure(system, strategy):
    executor = DistributedExecutor(
        system, ExecutionOptions(primitive_strategy=strategy)
    )
    result, report = executor.execute(QUERY, initiator="D0")
    return {
        "rows": len(result.rows),
        "time_ms": report.response_time * 1000,
        "bytes": report.bytes_total,
        "msgs": report.messages,
    }


def run_sweep():
    rows = []
    results = {}
    for providers, duplication in [(3, 0.5), (3, 0.0), (8, 0.5), (8, 0.0), (16, 0.0)]:
        parts = skewed_parts(providers, duplication)
        for strategy in PrimitiveStrategy:
            system = build_system(num_index=10, parts=parts)
            m = measure(system, strategy)
            results[(providers, duplication, strategy)] = m
            rows.append([providers, duplication, strategy.name,
                         m["rows"], round(m["time_ms"], 1), m["bytes"], m["msgs"]])
    return results, rows


def test_e1_strategy_tradeoff(benchmark):
    results, rows = run_once(benchmark, run_sweep)
    emit(render_table(
        ["providers", "duplication", "strategy", "rows", "time_ms", "bytes", "msgs"],
        rows,
        title="E1: primitive-query strategies (Sect. IV-C)",
    ))

    for providers, duplication in [(3, 0.5), (8, 0.5), (8, 0.0), (16, 0.0)]:
        basic = results[(providers, duplication, PrimitiveStrategy.BASIC)]
        chained = results[(providers, duplication, PrimitiveStrategy.CHAINED)]
        freq = results[(providers, duplication, PrimitiveStrategy.FREQ)]
        # All strategies return identical answers.
        assert basic["rows"] == chained["rows"] == freq["rows"]
        # The frequency ordering never ships more than an arbitrary chain.
        assert freq["bytes"] <= chained["bytes"]
        # Chains use fewer messages (no per-provider round trips).
        assert freq["msgs"] <= basic["msgs"]

    # BASIC's parallel fan-out wins response time once providers are many
    # enough for parallelism to matter (>= 8 here). At 3 providers the
    # chain's direct-to-initiator final hop edges out BASIC's serial
    # storage->assembly->initiator path — a measured refinement of the
    # paper's qualitative claim, recorded in EXPERIMENTS.md.
    for providers, duplication in [(8, 0.5), (8, 0.0), (16, 0.0)]:
        basic = results[(providers, duplication, PrimitiveStrategy.BASIC)]
        chained = results[(providers, duplication, PrimitiveStrategy.CHAINED)]
        freq = results[(providers, duplication, PrimitiveStrategy.FREQ)]
        assert basic["time_ms"] < chained["time_ms"]
        assert basic["time_ms"] < freq["time_ms"]

    # The paper's regime — few providers, duplicated, skewed: the
    # frequency-ordered chain minimizes transmission; BASIC is costliest.
    basic3 = results[(3, 0.5, PrimitiveStrategy.BASIC)]
    chained3 = results[(3, 0.5, PrimitiveStrategy.CHAINED)]
    freq3 = results[(3, 0.5, PrimitiveStrategy.FREQ)]
    assert freq3["bytes"] < chained3["bytes"] < basic3["bytes"]

    # The crossover the paper leaves to future work: at 16 uniform-ish
    # providers the chain's multi-hop shipping exceeds BASIC's 2x cost.
    assert results[(16, 0.0, PrimitiveStrategy.CHAINED)]["bytes"] > \
        results[(16, 0.0, PrimitiveStrategy.BASIC)]["bytes"]


def test_e1_freq_orders_route_by_frequency(benchmark):
    """The freq chain visits providers smallest-first (paper's D3-last
    example), observable through the message log."""
    parts = skewed_parts(3, 0.3)
    system = build_system(num_index=8, parts=parts)

    def run():
        executor = DistributedExecutor(
            system, ExecutionOptions(primitive_strategy=PrimitiveStrategy.FREQ)
        )
        system.stats.records.clear()
        executor.execute(QUERY, initiator="D0")
        return [
            (r.src, r.dst, r.bytes) for r in system.stats.records
            if r.kind == "chain_step"
        ]

    chain_messages = run_once(benchmark, run)
    assert len(chain_messages) >= 2
    # Accumulated payloads grow along the chain: each hop ships at least
    # as many bytes as the previous one (monotone union).
    sizes = [b for _, _, b in chain_messages]
    assert sizes == sorted(sizes)
