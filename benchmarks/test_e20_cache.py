"""E20 — The workload-adaptive distributed result cache (PR 9).

Sect. V's open problems include avoiding repeated work when "the same or
similar queries" recur. PR 9 answers it with a cross-query, per-site
semantic result cache (``repro.cache``): index nodes memoize primitive
pattern results, combine sites memoize whole-BGP sub-results, admission
is gated on observed access frequency, and correctness is delegated to
the key-scoped data-epoch ledger — a delta makes a stamped entry a miss,
never a wrong answer.

Claims under test, on a Zipf-skewed closed-loop of the Fig. 4-9 mix:

* **Bytes go down on a read-only skewed workload**: with the cache on
  and ``mutation_rate=0``, total inter-site traffic drops by at least
  25% versus the identical cache-off run.
* **Answers are invariant under mutation**: with ``mutation_rate=0.1``
  (live publish/unpublish deltas interleaved with the queries, at
  concurrency 1 so both runs see the same schedule), every query job
  returns bit-identical rows with the cache on and off.
* **Off means absent**: the cache-off runs report all-zero cache
  counters — the subsystem costs nothing when disabled.

The 2×2 grid (cache off/on × mutation_rate 0/0.1) is recorded in
``BENCH_PR9_cache.json`` for CI to archive.
"""

from __future__ import annotations

import json
import pathlib

from repro.metrics import render_table
from repro.query import ExecutionOptions
from repro.workloads import LoadConfig, paper_example_partition, run_workload

from conftest import build_system, emit, run_once

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_PR9_cache.json"

#: The skew regime a result cache is built for: a hot head of repeated
#: queries (zipf 1.2 over the Fig. 4-9 mix), one client, a long enough
#: run for the admission gate to stop mattering.
WORKLOAD = dict(
    num_queries=120,
    mode="closed",
    concurrency=1,
    zipf_s=1.2,
    seed=7,
    initiators=["D1"],
)

CACHE_ON = dict(result_cache=True, cache_admit_threshold=1)


def _run(mutation_rate, cached):
    system = build_system(num_index=8, parts=paper_example_partition())
    config = LoadConfig(mutation_rate=mutation_rate, **WORKLOAD)
    options = ExecutionOptions(**CACHE_ON) if cached else ExecutionOptions()
    report = run_workload(system, config, options)
    answers = [
        sorted(map(repr, job.result.rows))
        for job in report.jobs
        if job.kind == "query" and job.result is not None
    ]
    return report, answers


def run_grid():
    cells = {}
    answers = {}
    for mutation_rate in (0.0, 0.1):
        for cached in (False, True):
            report, rows = _run(mutation_rate, cached)
            key = f"mut{mutation_rate}_{'on' if cached else 'off'}"
            hits, probes = report.cache["hits"], report.cache["probes"]
            cells[key] = {
                "completed": report.completed,
                "failed": report.failed,
                "mutations": report.mutations,
                "bytes_total": report.bytes_total,
                "throughput": round(report.throughput, 2),
                "cache_hits": hits,
                "cache_probes": probes,
                "hit_ratio": round(hits / probes, 3) if probes else 0.0,
                "stale_drops": report.cache["stale_drops"],
                "cache_counters": report.cache,
            }
            answers[key] = rows
    return cells, answers


def test_e20_result_cache(benchmark):
    cells, answers = run_once(benchmark, run_grid)
    emit(render_table(
        ["cell", "bytes", "q/s", "hits/probes", "hit_ratio", "stale",
         "mutations"],
        [
            [key, cell["bytes_total"], cell["throughput"],
             f"{cell['cache_hits']}/{cell['cache_probes']}",
             cell["hit_ratio"], cell["stale_drops"], cell["mutations"]]
            for key, cell in cells.items()
        ],
        title="E20: workload-adaptive result cache "
              "(Fig. 4-9 mix, zipf 1.2, closed loop)",
    ))

    # Off means absent: the disabled runs did zero cache work.
    for key in ("mut0.0_off", "mut0.1_off"):
        assert all(v == 0 for v in cells[key]["cache_counters"].values()), key

    # Read-only skewed workload: >= 25% inter-site byte reduction.
    off, on = cells["mut0.0_off"]["bytes_total"], cells["mut0.0_on"]["bytes_total"]
    reduction = 1.0 - on / off
    assert reduction >= 0.25, (
        f"cache cut bytes by only {reduction:.1%} (off={off}, on={on})")

    # Mutating workload: deltas invalidate (stale entries were dropped,
    # not served) and every answer is bit-identical to the uncached run.
    assert cells["mut0.1_on"]["stale_drops"] > 0
    assert cells["mut0.1_on"]["mutations"] > 0
    assert answers["mut0.1_on"] == answers["mut0.1_off"]
    assert answers["mut0.0_on"] == answers["mut0.0_off"]

    payload = {
        "workload": "Fig. 4-9 mix, zipf_s=1.2, closed loop c=1, "
                    "120 jobs, seed 7",
        "byte_reduction_readonly": round(reduction, 4),
        "cells": cells,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
