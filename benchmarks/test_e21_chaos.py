"""E21 — Query completion and tail latency under chaos, breakers off vs on (PR 10).

A closed-loop workload (48 queries, 8 clients) over the paper-example
dataset with rf=2, run against seeded message-level fault plans at two
severities (loss + delay spikes + a directional partition + a node
brownout). Cells:

* **baseline** — fault-free, classic options: reference answers and
  latency;
* **{mild,harsh} / breakers off** — retries + replica failover +
  partial results, but every timeout is paid in full;
* **{mild,harsh} / breakers on** — the same defenses plus the health
  ledger: consecutive-timeout peers trip a circuit and are
  short-circuited / routed around instead of re-dialled.

Claims under test:

* **Degradation is always visible**: every completed chaos-cell answer
  is either bit-identical to the fault-free answer or a *flagged*
  (``report.incomplete``) sub-multiset of it — never wrong or extra
  rows, at any severity, with breakers on or off.
* **The chaos layer actually fired**: each chaos cell injected faults;
  the harsh cells injected more than the mild ones.
* **Breakers do their job**: under harsh chaos the breaker cell trips
  at least one circuit and short-circuits at least one call, and its
  completion rate is no worse than with breakers off.

Writes ``BENCH_PR10_chaos.json`` next to this file for CI.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter

from repro.metrics import render_table
from repro.net.faults import chaos_plan
from repro.query import DistributedExecutor, ExecutionOptions
from repro.workloads import LoadConfig, run_workload

from conftest import build_system, emit, run_once

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_PR10_chaos.json"

NUM_QUERIES = 48
CONCURRENCY = 8
SEED = 21

MIX = [
    ("knows", "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"),
    ("name", 'SELECT ?x WHERE { ?x foaf:name "Smith" . }'),
    ("conj", "SELECT ?x ?n WHERE { ?x foaf:knows ?y . ?y foaf:name ?n . }"),
]

#: (label, chaos_plan kwargs) — the loss/brownout severity sweep.
SEVERITIES = [
    ("mild", dict(loss=0.02, delay=0.05, partitions=0, brownouts=1)),
    ("harsh", dict(loss=0.10, delay=0.15, partitions=1, brownouts=2)),
]

DEFENSE = dict(retries=2, backoff=0.05, failover=True, partial_results=True,
               query_deadline=30.0)


def canon(result):
    return Counter(
        tuple(sorted((v.name, t.n3()) for v, t in mu.items()))
        for mu in result.rows
    )


def is_sub_multiset(small: Counter, big: Counter) -> bool:
    return all(big[row] >= n for row, n in small.items())


def fresh_system():
    from repro.workloads import paper_example_partition

    return build_system(parts=paper_example_partition(),
                        replication_factor=2)


def measure_cell(options, severity=None):
    system = fresh_system()
    faults = None
    if severity is not None:
        faults = chaos_plan(sorted(system.network.nodes), seed=SEED,
                            window=600.0, **severity)
    config = LoadConfig(
        queries=MIX,
        initiators=tuple(sorted(system.storage_nodes)),
        mode="closed",
        concurrency=CONCURRENCY,
        num_queries=NUM_QUERIES,
        seed=SEED,
        faults=faults,
    )
    report = run_workload(system, config, options)
    lat = report.latency
    return {
        "report": report,
        "completed": report.completed,
        "failed": report.failed,
        "incomplete": report.incomplete,
        "success_rate": report.completed / len(report.jobs),
        "p50_ms": lat.p50 * 1000 if lat else None,
        "p99_ms": lat.p99 * 1000 if lat else None,
        "failover": dict(report.failover),
        "faults_injected": dict(report.faults_injected),
    }


def run_cells():
    oracle_system = fresh_system()
    oracle = {}
    for label, query in MIX:
        result, _ = DistributedExecutor(oracle_system).execute(
            query, initiator=sorted(oracle_system.storage_nodes)[0])
        oracle[label] = canon(result)
    cells = {"baseline": measure_cell(ExecutionOptions())}
    for name, severity in SEVERITIES:
        cells[f"{name}_breakers_off"] = measure_cell(
            ExecutionOptions(**DEFENSE), severity)
        cells[f"{name}_breakers_on"] = measure_cell(
            ExecutionOptions(breaker=True, breaker_latency=1.0, **DEFENSE),
            severity)
    return oracle, cells


def test_e21_chaos(benchmark):
    oracle, cells = run_once(benchmark, run_cells)

    rows = []
    payload = {"num_queries": NUM_QUERIES, "concurrency": CONCURRENCY,
               "replication_factor": 2, "seed": SEED,
               "severities": {name: kw for name, kw in SEVERITIES},
               "cells": {}}
    for name, m in cells.items():
        fo = m["failover"]
        rows.append([
            name, m["completed"], m["failed"], m["incomplete"],
            f"{m['success_rate'] * 100:.1f}%",
            f"{m['p50_ms']:.1f}" if m["p50_ms"] is not None else "-",
            f"{m['p99_ms']:.1f}" if m["p99_ms"] is not None else "-",
            sum(m["faults_injected"].values()),
            fo.get("breaker_trips", 0),
            fo.get("breaker_short_circuits", 0),
        ])
        payload["cells"][name] = {
            "completed": m["completed"],
            "failed": m["failed"],
            "incomplete": m["incomplete"],
            "success_rate": round(m["success_rate"], 4),
            "p50_ms": round(m["p50_ms"], 3) if m["p50_ms"] is not None else None,
            "p99_ms": round(m["p99_ms"], 3) if m["p99_ms"] is not None else None,
            "faults_injected": m["faults_injected"],
            "failover": fo,
        }
    emit(render_table(
        ["cell", "done", "failed", "partial", "success", "p50_ms", "p99_ms",
         "faults", "trips", "shortckt"],
        rows,
        title=f"E21: {NUM_QUERIES} queries, {CONCURRENCY} clients, rf=2, "
              "seeded loss/delay/partition/brownout chaos",
    ))

    baseline = cells["baseline"]
    assert baseline["failed"] == 0
    for job in baseline["report"].jobs:
        assert canon(job.result) == oracle[job.label]

    for name, m in cells.items():
        if name == "baseline":
            continue
        # The chaos layer actually injected faults into every chaos cell.
        assert sum(m["faults_injected"].values()) > 0, name
        # Degradation is always visible: completed answers are exact or
        # flagged subsets — never silently short, never wrong rows.
        for job in m["report"].jobs:
            if job.result is None:
                continue
            got = canon(job.result)
            if got == oracle[job.label]:
                continue
            assert job.report is not None and job.report.incomplete, (
                f"{name} job {job.job_id}: silent divergence")
            assert is_sub_multiset(got, oracle[job.label]), (
                f"{name} job {job.job_id}: not a subset")

    # Harsh chaos injects strictly more faults than mild.
    assert (sum(cells["harsh_breakers_on"]["faults_injected"].values())
            > sum(cells["mild_breakers_on"]["faults_injected"].values()))

    # Under harsh chaos the breakers actually engage, and engaging them
    # does not cost completions.
    harsh_on = cells["harsh_breakers_on"]
    harsh_off = cells["harsh_breakers_off"]
    fo = harsh_on["failover"]
    assert fo.get("breaker_trips", 0) >= 1
    assert fo.get("breaker_short_circuits", 0) >= 1
    assert harsh_on["completed"] >= harsh_off["completed"]

    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
