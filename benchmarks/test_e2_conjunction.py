"""E2 — Conjunction graph patterns (paper Sect. IV-D).

Claims under test:

* When the patterns' storage-node sets overlap, the OPTIMIZED mode
  (parallel chains ending at a shared node, join there, direct return)
  moves fewer *intermediate-result* bytes than the BASIC index-node walk
  (the final answer costs the same in both modes, so it is reported
  separately).
* The shared join site chosen is one of the overlap nodes (the paper's
  D1 in the S1={D1,D3,D4}, S2={D1,D2} example).
* Both modes return the oracle answer.
"""

from __future__ import annotations

import random


from repro.metrics import render_table
from repro.query import ConjunctionMode, DistributedExecutor, ExecutionOptions
from repro.rdf import COMMON_PREFIXES, FOAF
from repro.sparql import evaluate_query, parse_query
from repro.workloads import FoafConfig, generate_foaf_triples

from conftest import build_system, emit, run_once

#: A selective join: only ~30% of people have a nick, so the join result
#: is smaller than the knows-side input — the regime where intermediate
#: placement matters.
QUERY = """SELECT ?x ?z ?k WHERE {
  ?x foaf:knows ?z .
  ?x foaf:nick ?k .
}"""


def parts_with_overlap(shared_nodes: int, seed: int = 3):
    """S1 (knows) = {D0, D1, D2}; S2 (nick) is always *two* providers, of
    which *shared_nodes* ∈ {0, 1, 2} also belong to S1 — the paper's
    controlled-overlap scenario with the provider count held constant."""
    triples = generate_foaf_triples(
        FoafConfig(num_people=120, knows_per_person=3, nick_fraction=0.3, seed=seed)
    )
    knows = [t for t in triples if t.p == FOAF.knows]
    nicks = [t for t in triples if t.p == FOAF.nick]
    rest = [t for t in triples if t.p not in (FOAF.knows, FOAF.nick)]
    rng = random.Random(seed)
    parts = {f"D{i}": [] for i in range(6)}
    for t in knows:
        parts[f"D{rng.randrange(3)}"].append(t)
    nick_homes = {0: ["D3", "D4"], 1: ["D0", "D3"], 2: ["D0", "D1"]}[shared_nodes]
    for t in nicks:
        parts[nick_homes[rng.randrange(2)]].append(t)
    for t in rest:
        parts["D5"].append(t)
    return parts


def measure(parts, mode):
    system = build_system(num_index=16, parts=parts)
    executor = DistributedExecutor(system, ExecutionOptions(conjunction_mode=mode))
    system.stats.reset()
    result, report = executor.execute(QUERY, initiator="D5")
    oracle = evaluate_query(
        parse_query(QUERY, COMMON_PREFIXES), system.union_graph()
    )
    assert result.rows == oracle.rows
    result_bytes = system.stats.bytes_for("fetch", "fetch.reply")
    return {
        "rows": len(result.rows),
        "time_ms": report.response_time * 1000,
        "inter_bytes": report.bytes_total - result_bytes,
        "result_bytes": result_bytes,
        "msgs": report.messages,
        "notes": report.notes,
    }


def run_sweep():
    results = {}
    rows = []
    for shared in (0, 1, 2):
        parts = parts_with_overlap(shared)
        for mode in ConjunctionMode:
            m = measure(parts, mode)
            results[(shared, mode)] = m
            rows.append([shared, mode.name, m["rows"], round(m["time_ms"], 1),
                         m["inter_bytes"], m["result_bytes"], m["msgs"]])
    return results, rows


def test_e2_overlap_aware_conjunction(benchmark):
    results, rows = run_once(benchmark, run_sweep)
    emit(render_table(
        ["shared_nodes", "mode", "rows", "time_ms", "inter_bytes",
         "result_bytes", "msgs"],
        rows,
        title="E2: conjunction processing vs provider-set overlap (Sect. IV-D)",
    ))

    for shared in (0, 1, 2):
        optimized = results[(shared, ConjunctionMode.OPTIMIZED)]
        basic = results[(shared, ConjunctionMode.BASIC)]
        assert optimized["rows"] == basic["rows"]
        # The final answer costs the same either way.
        assert optimized["result_bytes"] == basic["result_bytes"]

    for shared in (1, 2):
        optimized = results[(shared, ConjunctionMode.OPTIMIZED)]
        basic = results[(shared, ConjunctionMode.BASIC)]
        # With overlap, the shared-site plan moves fewer intermediate bytes.
        assert optimized["inter_bytes"] < basic["inter_bytes"]

    # Overlap helps the optimized plan monotonically in this workload.
    assert results[(2, ConjunctionMode.OPTIMIZED)]["inter_bytes"] <= \
        results[(0, ConjunctionMode.OPTIMIZED)]["inter_bytes"]

    # The chosen site is an overlap node when overlap exists.
    with_overlap = results[(2, ConjunctionMode.OPTIMIZED)]
    site_note = next(n for n in with_overlap["notes"] if "conjunction site" in n)
    assert site_note.split()[-1] in {"D0", "D1", "D2"}


def test_e2_join_order_uses_frequency_statistics(benchmark):
    """Reordering by frequency statistics must never hurt two-pattern
    conjunctions (it matters most for 3+ patterns — see E10)."""
    parts = parts_with_overlap(1)

    def run():
        out = {}
        for reorder in (False, True):
            system = build_system(num_index=16, parts=parts)
            executor = DistributedExecutor(
                system, ExecutionOptions(reorder_joins=reorder)
            )
            _, report = executor.execute(QUERY, initiator="D5")
            out[reorder] = report.bytes_total
        return out

    bytes_by_mode = run_once(benchmark, run)
    assert bytes_by_mode[True] <= bytes_by_mode[False] * 1.05
