"""E3 — Join site selection (paper Sect. II; Move-Small / Query-Site /
Third-Site).

Claims under test:

* Move-Small ships fewer intermediate bytes than Query-Site whenever the
  join inputs are larger than the join output (the initiator otherwise
  receives both full inputs).
* The advantage grows with the size asymmetry |Ω1| / |Ω2|.
* Third-Site spreads combine work across nodes (load balancing), at a
  transmission cost between the other two.
"""

from __future__ import annotations

import random


from repro.metrics import render_table
from repro.query import DistributedExecutor, ExecutionOptions, JoinSitePolicy
from repro.rdf import FOAF
from repro.workloads import FoafConfig, generate_foaf_triples

from conftest import build_system, emit, run_once

#: Join of a large side (knows) against a small side (nick), disjoint
#: provider sets so a real cross-site join is forced.
QUERY = """SELECT ?x ?z ?k WHERE {
  ?x foaf:knows ?z .
  ?x foaf:nick ?k .
}"""


def make_parts(knows_per_person: int, seed: int = 11):
    triples = generate_foaf_triples(FoafConfig(
        num_people=100, knows_per_person=knows_per_person,
        nick_fraction=0.15, seed=seed,
    ))
    rng = random.Random(seed)
    parts = {"D0": [], "D1": [], "D2": [], "D3": []}
    for t in triples:
        if t.p == FOAF.knows:
            parts[f"D{rng.randrange(2)}"].append(t)   # large side: D0, D1
        elif t.p == FOAF.nick:
            parts["D2"].append(t)                      # small side: D2
        else:
            parts["D3"].append(t)
    return parts


def measure(parts, policy):
    system = build_system(num_index=12, parts=parts)
    executor = DistributedExecutor(system, ExecutionOptions(join_site_policy=policy))
    system.stats.reset()
    result, report = executor.execute(QUERY, initiator="D3")
    return {
        "rows": len(result.rows),
        "bytes": report.bytes_total,
        "time_ms": report.response_time * 1000,
        "load": dict(executor.load),
    }


def run_sweep():
    results = {}
    rows = []
    for knows in (2, 5, 8):  # asymmetry lever
        parts = make_parts(knows)
        for policy in JoinSitePolicy:
            m = measure(parts, policy)
            results[(knows, policy)] = m
            rows.append([knows, policy.value, m["rows"],
                         round(m["time_ms"], 1), m["bytes"]])
    return results, rows


def test_e3_join_site_policies(benchmark):
    results, rows = run_once(benchmark, run_sweep)
    emit(render_table(
        ["knows/person", "policy", "rows", "time_ms", "bytes"],
        rows,
        title="E3: join-site selection vs input asymmetry (Sect. II)",
    ))

    for knows in (2, 5, 8):
        ms = results[(knows, JoinSitePolicy.MOVE_SMALL)]
        qs = results[(knows, JoinSitePolicy.QUERY_SITE)]
        ts = results[(knows, JoinSitePolicy.THIRD_SITE)]
        assert ms["rows"] == qs["rows"] == ts["rows"]
        # Move-Small never ships more than Query-Site in this workload.
        assert ms["bytes"] <= qs["bytes"]

    # The Move-Small advantage grows with asymmetry.
    gain = {
        knows: results[(knows, JoinSitePolicy.QUERY_SITE)]["bytes"]
        - results[(knows, JoinSitePolicy.MOVE_SMALL)]["bytes"]
        for knows in (2, 5, 8)
    }
    assert gain[8] > gain[2]


def test_e3_third_site_balances_load(benchmark):
    """Repeated joins under Third-Site spread across storage nodes; under
    Move-Small they pile onto the data-heavy site."""
    parts = make_parts(5)

    def run():
        out = {}
        for policy in (JoinSitePolicy.MOVE_SMALL, JoinSitePolicy.THIRD_SITE):
            system = build_system(num_index=12, parts=parts)
            executor = DistributedExecutor(
                system, ExecutionOptions(join_site_policy=policy)
            )
            for _ in range(6):
                executor.execute(QUERY, initiator="D3")
            load = executor.load
            out[policy] = (max(load.values()), len(load))
        return out

    loads = run_once(benchmark, run)
    ms_max, ms_sites = loads[JoinSitePolicy.MOVE_SMALL]
    ts_max, ts_sites = loads[JoinSitePolicy.THIRD_SITE]
    emit(render_table(
        ["policy", "max_load", "distinct_sites"],
        [["move-small", ms_max, ms_sites], ["third-site", ts_max, ts_sites]],
        title="E3b: combine-operation load distribution over 6 queries",
    ))
    assert ts_sites > ms_sites      # work spread over more nodes
    assert ts_max <= ms_max          # hottest node is cooler
