"""E4 — Optional graph patterns via move-small (paper Sect. IV-E).

The paper prescribes: ship the smaller of Ω1, Ω2 to the node holding the
other, compute (Ω1 ⋈ Ω2) ∪ (Ω1 − Ω2) there, return the union directly to
the initiator.

Measured findings (recorded in EXPERIMENTS.md):

* For a *bare* top-level OPTIONAL the left outer join's output contains
  every Ω1 solution, so Move-Small's "result to initiator" transfer is as
  large as Query-Site's "Ω1 to initiator" transfer — the policies tie
  (Move-Small pays a small orchestration overhead). The paper's claim is
  not wrong, just vacuous in this corner: nothing can beat shipping the
  inputs once when output ≥ input.
* As soon as a non-pushable FILTER sits above the OPTIONAL (selecting,
  say, only the Shrek-nicked solutions — the paper's own Fig. 7 theme),
  the output shrinks below Ω1 and Move-Small wins decisively, the more
  selective the filter the more.
"""

from __future__ import annotations


from repro.metrics import render_table
from repro.query import DistributedExecutor, ExecutionOptions, JoinSitePolicy
from repro.rdf import COMMON_PREFIXES, FOAF
from repro.sparql import evaluate_query, parse_query
from repro.workloads import FoafConfig, generate_foaf_triples

from conftest import build_system, emit, run_once

BARE = """SELECT ?x ?n ?k WHERE {
  ?x foaf:name ?n .
  OPTIONAL { ?x foaf:nick ?k . }
}"""

#: BOUND(?k) cannot push below the LeftJoin (?k is optional-only), so the
#: filter runs at the join site — shrinking what ships to the initiator.
FILTERED = """SELECT ?x ?n ?k WHERE {
  ?x foaf:name ?n .
  OPTIONAL { ?x foaf:nick ?k . }
  FILTER (BOUND(?k) && regex(?k, "Shrek"))
}"""


def make_parts(seed: int = 17):
    triples = generate_foaf_triples(FoafConfig(
        num_people=120, nick_fraction=0.3, seed=seed,
    ))
    parts = {"D0": [], "D1": [], "D2": []}
    for t in triples:
        if t.p == FOAF.name:
            parts["D0"].append(t)          # required side at D0
        elif t.p == FOAF.nick:
            parts["D1"].append(t)          # optional side at D1
        else:
            parts["D2"].append(t)
    return parts


def measure(parts, query, policy):
    system = build_system(num_index=12, parts=parts)
    executor = DistributedExecutor(system, ExecutionOptions(join_site_policy=policy))
    system.stats.reset()
    result, report = executor.execute(query, initiator="D2")
    oracle = evaluate_query(parse_query(query, COMMON_PREFIXES), system.union_graph())
    assert result.rows == oracle.rows
    return {"rows": len(result.rows), "bytes": report.bytes_total,
            "time_ms": report.response_time * 1000}


def run_sweep():
    parts = make_parts()
    results = {}
    rows = []
    for label, query in (("bare", BARE), ("filtered", FILTERED)):
        for policy in (JoinSitePolicy.MOVE_SMALL, JoinSitePolicy.QUERY_SITE):
            m = measure(parts, query, policy)
            results[(label, policy)] = m
            rows.append([label, policy.value, m["rows"],
                         round(m["time_ms"], 1), m["bytes"]])
    return results, rows


def test_e4_optional_move_small(benchmark):
    results, rows = run_once(benchmark, run_sweep)
    emit(render_table(
        ["query", "policy", "rows", "time_ms", "bytes"],
        rows,
        title="E4: OPTIONAL via move-small left outer join (Sect. IV-E)",
    ))

    bare_ms = results[("bare", JoinSitePolicy.MOVE_SMALL)]
    bare_qs = results[("bare", JoinSitePolicy.QUERY_SITE)]
    # Bare OPTIONAL: output ⊇ Ω1, so the policies are within a small
    # orchestration overhead of each other.
    assert bare_ms["rows"] == bare_qs["rows"]
    assert bare_ms["bytes"] <= bare_qs["bytes"] * 1.15

    filt_ms = results[("filtered", JoinSitePolicy.MOVE_SMALL)]
    filt_qs = results[("filtered", JoinSitePolicy.QUERY_SITE)]
    assert filt_ms["rows"] == filt_qs["rows"]
    # Selective output: computing the left outer join at the data side and
    # shipping only the filtered result clearly beats dragging both inputs
    # to the query site.
    assert filt_ms["bytes"] < filt_qs["bytes"] * 0.8


def test_e4_unmatched_left_rows_survive(benchmark):
    """Semantics spot-check at the distributed level: most name-rows have
    no optional extension yet all appear (left outer join)."""
    parts = make_parts()

    def run():
        system = build_system(num_index=12, parts=parts)
        executor = DistributedExecutor(system)
        result, _ = executor.execute(BARE, initiator="D2")
        return result

    result = run_once(benchmark, run)
    k_bound = sum(1 for b in result.bindings() if "k" in b)
    assert len(result.rows) == 120          # every named person
    assert 0 < k_bound < 60                  # only the nicked ones extended
