"""E5 — Union graph patterns (paper Sect. IV-F).

Claims under test:

* The two branches evaluate in parallel: the union's response time is
  close to the slower branch, not the sum of both.
* When both branches' chains end at a shared storage node (the paper's
  S1={D1,D3}, S2={D2,D3} example, both ending at D3) the union costs no
  extra result shipping compared to branches ending apart.
"""

from __future__ import annotations

import random


from repro.metrics import render_table
from repro.query import DistributedExecutor
from repro.rdf import COMMON_PREFIXES, FOAF
from repro.sparql import evaluate_query, parse_query
from repro.workloads import FoafConfig, generate_foaf_triples

from conftest import build_system, emit, run_once

UNION_QUERY = """SELECT ?x ?v WHERE {
  { ?x foaf:name ?v . }
  UNION
  { ?x foaf:nick ?v . }
}"""

BRANCH_1 = "SELECT ?x ?v WHERE { ?x foaf:name ?v . }"
BRANCH_2 = "SELECT ?x ?v WHERE { ?x foaf:nick ?v . }"


def make_parts(shared: bool, seed: int = 23):
    """shared=True: names on {D0,D2}, nicks on {D1,D2} — D2 in both, so
    both chains can end there. shared=False: fully disjoint providers."""
    triples = generate_foaf_triples(FoafConfig(
        num_people=100, nick_fraction=0.6, seed=seed,
    ))
    rng = random.Random(seed)
    parts = {"D0": [], "D1": [], "D2": [], "D3": [], "D4": []}
    for t in triples:
        if t.p == FOAF.name:
            parts[["D0", "D2"][rng.randrange(2)]].append(t)
        elif t.p == FOAF.nick:
            homes = ["D1", "D2"] if shared else ["D1", "D3"]
            parts[homes[rng.randrange(2)]].append(t)
        else:
            parts["D4"].append(t)
    return parts


def measure(parts, query):
    system = build_system(num_index=12, parts=parts)
    executor = DistributedExecutor(system)
    system.stats.reset()
    result, report = executor.execute(query, initiator="D4")
    oracle = evaluate_query(parse_query(query, COMMON_PREFIXES), system.union_graph())
    assert result.rows == oracle.rows
    return {"rows": len(result.rows), "bytes": report.bytes_total,
            "time_ms": report.response_time * 1000}


def run_experiment():
    results = {}
    rows = []
    for shared in (True, False):
        parts = make_parts(shared)
        union = measure(parts, UNION_QUERY)
        b1 = measure(parts, BRANCH_1)
        b2 = measure(parts, BRANCH_2)
        results[shared] = {"union": union, "b1": b1, "b2": b2}
        rows.append(["shared" if shared else "disjoint", union["rows"],
                     round(union["time_ms"], 1), union["bytes"],
                     round(b1["time_ms"], 1), round(b2["time_ms"], 1)])
    return results, rows


def test_e5_union_parallelism_and_shared_site(benchmark):
    results, rows = run_once(benchmark, run_experiment)
    emit(render_table(
        ["providers", "rows", "union_time_ms", "union_bytes",
         "branch1_time_ms", "branch2_time_ms"],
        rows,
        title="E5: UNION branch parallelism and shared collection site (Sect. IV-F)",
    ))
    for shared in (True, False):
        union = results[shared]["union"]
        b1, b2 = results[shared]["b1"], results[shared]["b2"]
        # Every branch solution survives the union (same ?v variable).
        assert union["rows"] == b1["rows"] + b2["rows"]

    # With a shared collection site the branches run fully in parallel and
    # the union is free: cheaper in time than running the branches back to
    # back, and cheaper in bytes than the disjoint layout, which must ship
    # one branch's result across sites before uniting.
    shared_u = results[True]["union"]
    b1, b2 = results[True]["b1"], results[True]["b2"]
    assert shared_u["time_ms"] < b1["time_ms"] + b2["time_ms"]
    assert shared_u["bytes"] < results[False]["union"]["bytes"]
    assert shared_u["time_ms"] < results[False]["union"]["time_ms"]
