"""E6 — Filter pushing (paper Sect. IV-G, Schmidt et al. rules).

The Fig. 9 rewrite moves ``FILTER regex(?name, "Smith")`` inside the BGP
so it runs *at the storage nodes*, before any solution crosses the
network.

Claims under test:

* With pushing enabled, intermediate transmission drops, and the saving
  grows as the filter gets more selective (fewer Smiths).
* Both plans return identical answers at every selectivity.
"""

from __future__ import annotations

import random


from repro.metrics import render_table
from repro.query import DistributedExecutor, ExecutionOptions
from repro.rdf import COMMON_PREFIXES, FOAF, NS
from repro.sparql import evaluate_query, parse_query
from repro.workloads import FoafConfig, generate_foaf_triples

from conftest import build_system, emit, run_once

#: The Fig. 9 query family.
QUERY = """SELECT ?x ?y ?z WHERE {
  ?x foaf:name ?name ;
     ns:knowsNothingAbout ?y .
  FILTER regex(?name, "Smith")
  OPTIONAL { ?y foaf:knows ?z . }
}"""


def make_parts(smith_fraction: float, seed: int = 31):
    triples = generate_foaf_triples(FoafConfig(
        num_people=150, smith_fraction=smith_fraction,
        knows_nothing_per_person=1, seed=seed,
    ))
    rng = random.Random(seed)
    parts = {"D0": [], "D1": [], "D2": [], "D3": []}
    for t in triples:
        if t.p == FOAF.name:
            parts[["D0", "D1"][rng.randrange(2)]].append(t)
        elif t.p == NS.knowsNothingAbout:
            parts["D2"].append(t)
        else:
            parts["D3"].append(t)
    return parts


def measure(parts, optimize):
    system = build_system(num_index=12, parts=parts)
    executor = DistributedExecutor(system, ExecutionOptions(optimize=optimize))
    system.stats.reset()
    result, report = executor.execute(QUERY, initiator="D3")
    oracle = evaluate_query(parse_query(QUERY, COMMON_PREFIXES), system.union_graph())
    assert result.rows == oracle.rows
    return {"rows": len(result.rows), "bytes": report.bytes_total,
            "time_ms": report.response_time * 1000}


def run_sweep():
    results = {}
    rows = []
    for smith_fraction in (0.05, 0.25, 0.75):
        parts = make_parts(smith_fraction)
        for optimize in (False, True):
            m = measure(parts, optimize)
            results[(smith_fraction, optimize)] = m
            rows.append([smith_fraction, "pushed" if optimize else "unpushed",
                         m["rows"], round(m["time_ms"], 1), m["bytes"]])
    return results, rows


def test_e6_filter_pushing(benchmark):
    results, rows = run_once(benchmark, run_sweep)
    emit(render_table(
        ["smith_fraction", "plan", "rows", "time_ms", "bytes"],
        rows,
        title="E6: filter pushing vs filter selectivity (Sect. IV-G / Fig. 9)",
    ))

    savings = {}
    for smith_fraction in (0.05, 0.25, 0.75):
        pushed = results[(smith_fraction, True)]
        unpushed = results[(smith_fraction, False)]
        assert pushed["rows"] == unpushed["rows"]
        # Pushing never ships more.
        assert pushed["bytes"] <= unpushed["bytes"]
        savings[smith_fraction] = unpushed["bytes"] - pushed["bytes"]

    # The more selective the filter (fewer Smiths), the bigger the saving.
    assert savings[0.05] > savings[0.75]
