"""E7 — Two-level index scalability (paper Sect. III-B) and the
architectural contrast with RDFPeers.

Claims under test:

* Locating the index node for a key costs O(log N) ring hops: doubling
  the ring size adds ~1 hop, it does not double the cost.
* Publication in the hybrid design ships only (key, provider, frequency)
  entries; the data itself never leaves its provider. RDFPeers ships
  every triple to three ring nodes.
"""

from __future__ import annotations

import random


from repro.baselines import RDFPeersSystem
from repro.chord import ChordNode, ChordRing, IdentifierSpace, measure_lookups
from repro.metrics import render_table
from repro.net import Network
from repro.overlay import HybridSystem
from repro.workloads import FoafConfig, generate_foaf_triples

from conftest import emit, run_once


def ring_of(n, bits=20, seed=7):
    rng = random.Random(seed)
    space = IdentifierSpace(bits)
    ring = ChordRing(Network(), space)
    for i, ident in enumerate(rng.sample(range(space.size), n)):
        ring.add_node(ChordNode(f"N{i}", ident, space))
    ring.build_static()
    return ring


def run_hop_sweep():
    rows = []
    means = {}
    for n in (8, 16, 32, 64, 128, 256):
        ring = ring_of(n)
        sample = measure_lookups(ring, 200, random.Random(11))
        means[n] = sample.mean_hops
        rows.append([n, round(sample.mean_hops, 2), sample.max_hops,
                     round(sample.mean_latency * 1000, 1)])
    return means, rows


def test_e7_lookup_hops_logarithmic(benchmark):
    means, rows = run_once(benchmark, run_hop_sweep)
    emit(render_table(
        ["ring_size", "mean_hops", "max_hops", "mean_latency_ms"],
        rows,
        title="E7a: index-node lookup cost vs ring size (Chord O(log N))",
    ))
    # 32x more nodes must cost ~5 extra hops, not 32x.
    assert means[256] < means[8] + 6
    # Monotone-ish growth, clearly sublinear:
    assert means[256] < means[8] * 4
    assert means[256] <= 8  # ~ (log2 256)/2 + slack


def run_publication_contrast():
    triples = generate_foaf_triples(FoafConfig(num_people=60, seed=13))

    hybrid = HybridSystem()
    for i in range(16):
        hybrid.add_index_node(f"N{i}")
    hybrid.build_ring()
    hybrid.add_storage_node("D0", triples, publish=True, protocol=True)
    hybrid_data = hybrid.stats.bytes_for(
        "publish", "publish.reply", "index_put", "index_put.reply", "replica_put"
    )
    hybrid_total = hybrid.stats.bytes_total

    rdfpeers = RDFPeersSystem()
    for i in range(16):
        rdfpeers.add_node(f"P{i}")
    rdfpeers.build_ring()
    rdfpeers.publish("P0", triples)
    rdfpeers_data = rdfpeers.stats.bytes_for("store_triples", "store_triples.reply")
    rdfpeers_total = rdfpeers.stats.bytes_total

    return {
        "triples": len(set(triples)),
        "hybrid_data": hybrid_data,
        "hybrid_total": hybrid_total,
        "hybrid_local": len(hybrid.storage_nodes["D0"].graph),
        "rdfpeers_data": rdfpeers_data,
        "rdfpeers_total": rdfpeers_total,
        "rdfpeers_stored": rdfpeers.total_stored(),
    }


def test_e7_publication_contrast_with_rdfpeers(benchmark):
    m = run_once(benchmark, run_publication_contrast)
    emit(render_table(
        ["system", "data_plane_bytes", "total_bytes", "triples_migrated"],
        [
            ["hybrid (this paper)", m["hybrid_data"], m["hybrid_total"], 0],
            ["RDFPeers", m["rdfpeers_data"], m["rdfpeers_total"], m["rdfpeers_stored"]],
        ],
        title="E7b: publication cost — index entries vs data migration",
    ))
    # Data stays at the provider in the hybrid design...
    assert m["hybrid_local"] == m["triples"]
    # ... RDFPeers migrates ~3 copies of everything ...
    assert m["rdfpeers_stored"] >= 2 * m["triples"]
    # ... and the hybrid data plane is cheaper than shipping the triples.
    assert m["hybrid_data"] < m["rdfpeers_data"]
