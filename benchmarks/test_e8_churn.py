"""E8 — Churn resilience (paper Sect. III-C/D).

Claims under test:

* Storage-node failure "is not significant": queries still answer with
  the surviving providers' data, and the stale location-table entries are
  cleaned after the first timeout.
* Index-node *graceful departure* loses nothing (the successor takes the
  location table over).
* Index-node *failure* loses the primary rows unless the replication
  policy (r >= 2) kept copies at the successors — exactly the mechanism
  pair (successor list + replication) the paper names.
"""

from __future__ import annotations

import random


from repro.metrics import render_table
from repro.overlay import (
    depart_index_node,
    fail_index_node,
    fail_storage_node,
)
from repro.query import DistributedExecutor, ExecutionOptions
from repro.rdf import COMMON_PREFIXES
from repro.sparql import evaluate_query, parse_query
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

from conftest import build_system, emit, run_once

QUERY = "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"


def fresh_system(replication_factor=1, seed=41):
    triples = generate_foaf_triples(FoafConfig(num_people=80, seed=seed))
    parts = partition_triples(triples, 5, overlap=0.2, seed=seed + 1)
    return build_system(num_index=12, parts=parts,
                        replication_factor=replication_factor)


def surviving_rows(system):
    from repro.rdf import Graph

    union = Graph()
    for node in system.storage_nodes.values():
        if node.alive:
            union.update(iter(node.graph))
    return evaluate_query(parse_query(QUERY, COMMON_PREFIXES), union).rows


def run_index_churn():
    rng = random.Random(5)
    rows = []
    results = {}
    for r in (1, 2, 3):
        for event in ("none", "depart", "fail"):
            system = fresh_system(replication_factor=r)
            expected = len(surviving_rows(system))
            # Kill/depart 3 index nodes *including the one owning the
            # query pattern's key* — the worst case for this query.
            from repro.overlay import key_for_pattern
            from repro.rdf import FOAF, TriplePattern, Variable

            pattern = TriplePattern(Variable("x"), FOAF.knows, Variable("y"))
            _, key = key_for_pattern(pattern, system.space)
            owner = system.ring.owner_of(key).node_id
            victims = [owner] + [
                n for n in sorted(system.index_nodes) if n != owner
            ][:2]
            if event == "depart":
                for v in victims:
                    depart_index_node(system, v)
            elif event == "fail":
                for v in victims:
                    fail_index_node(system, v)
            executor = DistributedExecutor(system)
            result, report = executor.execute(QUERY, initiator="D0")
            recall = len(result.rows) / expected if expected else 1.0
            results[(r, event)] = recall
            rows.append([r, event, expected, len(result.rows), round(recall, 3)])
    return results, rows


def test_e8_index_node_churn(benchmark):
    results, rows = run_once(benchmark, run_index_churn)
    emit(render_table(
        ["replication", "event", "expected_rows", "returned_rows", "recall"],
        rows,
        title="E8a: index-node churn — departure vs failure vs replication",
    ))
    for r in (1, 2, 3):
        # Graceful departure is always lossless (handover, Sect. III-D).
        assert results[(r, "depart")] == 1.0
        assert results[(r, "none")] == 1.0
    # Unreplicated failure may lose the rows the dead nodes owned;
    # replication restores full recall.
    assert results[(2, "fail")] == 1.0
    assert results[(3, "fail")] == 1.0
    # Without replicas, losing the key's owner loses the index rows.
    assert results[(1, "fail")] < 1.0


def run_storage_churn():
    system = fresh_system()
    executor = DistributedExecutor(system, ExecutionOptions(delivery_timeout=1.0))
    timeline = []

    baseline, report0 = executor.execute(QUERY, initiator="D0")
    timeline.append(["healthy", len(baseline.rows), report0.retries,
                     round(report0.response_time * 1000, 1)])

    fail_storage_node(system, "D2")
    first, report1 = executor.execute(QUERY, initiator="D0")
    timeline.append(["just after D2 crash", len(first.rows), report1.retries,
                     round(report1.response_time * 1000, 1)])

    second, report2 = executor.execute(QUERY, initiator="D0")
    timeline.append(["after cleanup", len(second.rows), report2.retries,
                     round(report2.response_time * 1000, 1)])

    return system, timeline, (first, report1), (second, report2)


def test_e8_storage_node_failure_timeline(benchmark):
    system, timeline, (first, report1), (second, report2) = run_once(
        benchmark, run_storage_churn
    )
    emit(render_table(
        ["phase", "rows", "chain_retries", "time_ms"],
        timeline,
        title="E8b: storage-node crash — first query pays the timeout, "
              "then the index is clean",
    ))
    expected = surviving_rows(system)
    # Both queries return exactly the surviving data.
    assert first.rows == expected
    assert second.rows == expected
    # The first query paid for failure detection; the second did not.
    assert report1.retries >= 1
    assert report2.retries == 0
    assert report2.response_time < report1.response_time
