"""E9 — Index load distribution under the six-key scheme (Sect. III-B).

An ablation the paper's design implies but does not evaluate: publishing
every triple under ⟨s⟩, ⟨p⟩, ⟨o⟩, ⟨s,p⟩, ⟨p,o⟩, ⟨s,o⟩ costs six index
entries per triple, and the ⟨p⟩ key concentrates load — there are few
distinct predicates, and Zipf-skewed object values concentrate ⟨o⟩ and
⟨p,o⟩ too.

Measured:

* total cells = 6 x triples per provider (exact),
* per-index-node cell-count imbalance (max/mean) as object skew grows,
* the share of total frequency carried by the heaviest single key.
"""

from __future__ import annotations


from repro.metrics import render_table
from repro.overlay import KeyKind
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

from conftest import build_system, emit, run_once


def run_sweep():
    rows = []
    results = {}
    for zipf_s in (0.0, 0.8, 1.4):
        triples = generate_foaf_triples(FoafConfig(
            num_people=150, knows_per_person=4, zipf_s=zipf_s, seed=51,
        ))
        parts = partition_triples(triples, 6, seed=52)
        system = build_system(num_index=16, parts=parts)

        cells = {
            node_id: node.table.cell_count()
            for node_id, node in system.index_nodes.items()
        }
        total_cells = sum(cells.values())
        mean_cells = total_cells / len(cells)
        imbalance = max(cells.values()) / mean_cells

        # Hot-spot metric per attribute kind: the share of the kind's
        # total frequency carried by its single hottest key. Object skew
        # shows up in the ⟨o⟩ keys (the ⟨p⟩ keys are always concentrated —
        # few predicates exist regardless of skew).
        from collections import defaultdict

        from repro.overlay import index_keys

        freq_by_kind = defaultdict(lambda: defaultdict(int))
        for part in parts:
            for t in part:
                for kind, key in index_keys(t, system.space):
                    freq_by_kind[kind][key] += 1
        o_freqs = freq_by_kind[KeyKind.O]
        o_hot_share = max(o_freqs.values()) / sum(o_freqs.values())

        results[zipf_s] = {
            "imbalance": imbalance,
            "o_hot_share": o_hot_share,
            "total_cells": total_cells,
            "triples": sum(len(p) for p in parts),
        }
        rows.append([zipf_s, total_cells, round(mean_cells, 1),
                     max(cells.values()), round(imbalance, 2),
                     round(100 * o_hot_share, 1)])
    return results, rows


def test_e9_index_load(benchmark):
    results, rows = run_once(benchmark, run_sweep)
    emit(render_table(
        ["zipf_s", "total_cells", "mean_cells/node", "max_cells/node",
         "imbalance", "hot_o_key_%_of_o_freq"],
        rows,
        title="E9: six-key index load vs object-popularity skew (Sect. III-B)",
    ))
    for zipf_s, m in results.items():
        # Publication volume is exactly 6 entries/triple before aggregation;
        # aggregated cells are fewer but bounded by it.
        assert m["total_cells"] <= 6 * m["triples"]
        # SHA-1 cannot fix key-popularity skew: some imbalance always exists.
        assert m["imbalance"] > 1.0
    # Object-popularity skew concentrates the ⟨o⟩ index onto hot keys.
    assert results[1.4]["o_hot_share"] > results[0.0]["o_hot_share"]


def test_e9_predicate_keys_dominate_hot_rows(benchmark):
    """The ⟨p⟩ rows (a handful of distinct predicates) hold far more
    frequency per key than ⟨s,p⟩ or ⟨s,o⟩ rows — the known weakness the
    paper inherits from hashing single attributes."""
    triples = generate_foaf_triples(FoafConfig(num_people=100, seed=53))

    def run():
        from collections import defaultdict

        from repro.overlay import index_keys
        from repro.chord import IdentifierSpace

        space = IdentifierSpace(32)
        freq_by_kind = defaultdict(lambda: defaultdict(int))
        for t in triples:
            for kind, key in index_keys(t, space):
                freq_by_kind[kind][key] += 1
        return {
            kind: max(freqs.values()) for kind, freqs in freq_by_kind.items()
        }

    hottest = run_once(benchmark, run)
    emit(render_table(
        ["key_kind", "hottest_key_frequency"],
        [[kind.name, hottest[kind]] for kind in KeyKind],
        title="E9b: hottest key per attribute combination",
    ))
    assert hottest[KeyKind.P] > 10 * hottest[KeyKind.SP]
    assert hottest[KeyKind.P] >= hottest[KeyKind.PO]
