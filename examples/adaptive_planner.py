#!/usr/bin/env python3
"""The Sect. V planner: mixing the paper's two optimization objectives.

The paper closes with an open problem: basic processing "trades
transmission costs for a low response time" while the optimized chains do
the opposite — how should a system plan "in the face of a mixture of such
objectives"? This example runs our answer (`PrimitiveStrategy.ADAPTIVE`):
the same broad query on networks of 2..16 providers, with the objective
knob swept from pure-bytes to pure-time. Watch the planner switch between
the frequency-ordered chain and the parallel fan-out exactly where the
measured frontier crosses.

Run:  python examples/adaptive_planner.py
"""

import random

from repro import (
    DistributedExecutor,
    ExecutionOptions,
    HybridSystem,
    PrimitiveStrategy,
)
from repro.metrics import render_table
from repro.rdf import FOAF
from repro.workloads import FoafConfig, generate_foaf_triples

QUERY = "SELECT ?a ?b WHERE { ?a foaf:knows ?b . }"


def skewed_system(num_providers: int) -> HybridSystem:
    triples = [t for t in generate_foaf_triples(
        FoafConfig(num_people=120, knows_per_person=4, seed=5)) if t.p == FOAF.knows]
    rng = random.Random(6)
    weights = list(range(1, num_providers + 1))
    parts = [[] for _ in range(num_providers)]
    for t in triples:
        r = rng.random() * sum(weights)
        acc = 0
        for i, w in enumerate(weights):
            acc += w
            if r <= acc:
                parts[i].append(t)
                break
    system = HybridSystem()
    for i in range(10):
        system.add_index_node(f"N{i}")
    system.build_ring()
    for i, part in enumerate(parts):
        system.add_storage_node(f"D{i}", part)
    return system


def main() -> None:
    rows = []
    for providers in (2, 4, 8, 16):
        system = skewed_system(providers)
        for time_weight in (0.0, 0.5, 1.0):
            executor = DistributedExecutor(system, ExecutionOptions(
                primitive_strategy=PrimitiveStrategy.ADAPTIVE,
                time_weight=time_weight,
                dedup_prior=0.9,
            ))
            result, report = executor.execute(QUERY, initiator="D0")
            choice = next(
                (n.split()[2] for n in report.notes if "adaptive" in n), "?"
            )
            rows.append([providers, time_weight, choice, len(result.rows),
                         round(report.response_time * 1000, 1),
                         report.bytes_total])
    print(render_table(
        ["providers", "time_weight", "planner chose", "rows", "time_ms", "bytes"],
        rows,
        title="Adaptive strategy selection across regimes and objectives",
    ))
    print("\ntime_weight 0.0 minimizes transmission; 1.0 minimizes response "
          "time.\nThe chain wins bytes only while providers are few and "
          "skewed — the planner\nfollows the frontier instead of committing "
          "to either fixed strategy.")


if __name__ == "__main__":
    main()
