#!/usr/bin/env python3
"""Churn in an ad-hoc system: nodes come, go, and crash (Sect. III-C/D).

Scenario: a conference hallway. Laptops share RDF data; people arrive,
suspend their machines, and leave without warning. We watch the system's
answers and its index through every membership event:

1. a new index node joins (location-table range transfer),
2. an index node departs gracefully (handover to its successor),
3. a storage node crashes (stale entries cleaned on query timeout),
4. an index node crashes — once without replication (rows lost), once
   with r=2 (the successor serves its replicas).

Run:  python examples/churn_resilience.py
"""

from repro import DistributedExecutor, ExecutionOptions, HybridSystem
from repro.overlay import (
    depart_index_node,
    fail_index_node,
    fail_storage_node,
    join_index_node,
    key_for_pattern,
)
from repro.rdf import FOAF, TriplePattern, Variable
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

QUERY = "SELECT ?a ?b WHERE { ?a foaf:knows ?b . }"


def build(replication_factor: int) -> HybridSystem:
    triples = generate_foaf_triples(FoafConfig(num_people=80, seed=7))
    parts = partition_triples(triples, 5, overlap=0.2, seed=8)
    system = HybridSystem(replication_factor=replication_factor)
    for i in range(10):
        system.add_index_node(f"N{i}")
    system.build_ring()
    for i, part in enumerate(parts):
        system.add_storage_node(f"D{i}", part)
    return system


def ask(system, label):
    executor = DistributedExecutor(system, ExecutionOptions(delivery_timeout=1.0))
    result, report = executor.execute(QUERY, initiator="D0")
    retries = f", {report.retries} chain retries" if report.retries else ""
    print(f"  {label}: {len(result.rows)} rows "
          f"({report.response_time * 1000:.0f} ms{retries})")
    return len(result.rows)


def main() -> None:
    print("=== replication factor 1 ===")
    system = build(replication_factor=1)
    baseline = ask(system, "healthy system")

    join_index_node(system, "Nnew")
    assert system.ring.is_consistent()
    ask(system, "after index node join (range transferred)")

    depart_index_node(system, sorted(system.index_nodes)[0])
    ask(system, "after graceful index departure (table handed over)")

    fail_storage_node(system, "D2")
    ask(system, "just after storage crash (first query pays the timeout)")
    ask(system, "next query (stale entries already cleaned)")

    # Crash the index node owning the query key: without replicas the rows
    # for this key are gone.
    pattern = TriplePattern(Variable("a"), FOAF.knows, Variable("b"))
    _, key = key_for_pattern(pattern, system.space)
    owner = system.ring.owner_of(key).node_id
    fail_index_node(system, owner)
    ask(system, f"after crash of key owner {owner} (r=1: index rows lost)")

    print("\n=== replication factor 2 ===")
    system = build(replication_factor=2)
    ask(system, "healthy system")
    _, key = key_for_pattern(pattern, system.space)
    owner = system.ring.owner_of(key).node_id
    fail_index_node(system, owner)
    ask(system, f"after crash of key owner {owner} (r=2: replicas serve)")


if __name__ == "__main__":
    main()
