#!/usr/bin/env python3
"""The same node code on real OS processes (no simulator).

Four storage-node processes are spawned; the parent process acts as the
query initiator. A sub-query chains through all four providers with
in-network aggregation (the optimized strategy of Sect. IV-C), and the
final solution mappings arrive back as real pickled bytes over
``multiprocessing`` queues.

Run:  python examples/multiprocess_demo.py
"""

from repro.net.mp import MpCluster
from repro.overlay import StorageNode
from repro.rdf import FOAF, TriplePattern, Variable
from repro.sparql.algebra import BGP
from repro.workloads import paper_example_partition


def main() -> None:
    parts = paper_example_partition()
    algebra = BGP((TriplePattern(Variable("x"), FOAF.knows, Variable("y")),))

    with MpCluster() as cluster:
        for storage_id, triples in parts.items():
            cluster.spawn(StorageNode(storage_id, triples))

        # Direct sub-query to a single provider (request/response).
        rows = cluster.call("D2", "evaluate", {"algebra": algebra})
        print(f"D2 alone answers {len(rows)} solution mappings")

        # In-network aggregation across all four real processes: each node
        # merges its matches into the accumulated set and forwards; the
        # last node delivers to us.
        cluster.send("D1", "chain_step", {
            "algebra": algebra,
            "acc": [],
            "route": ["D2", "D3", "D4"],
            "final": "client",
            "corr": "demo-query",
            "notify": None,
        })
        merged = cluster.wait_delivery("demo-query")
        print(f"chain D1 -> D2 -> D3 -> D4 -> client: {len(merged)} "
              f"deduplicated solution mappings")
        for mu in sorted(merged, key=repr)[:5]:
            pairs = {v.name: t.value.rsplit("/", 1)[-1] for v, t in mu.items()}
            print("  ", pairs)
        print("   ...")


if __name__ == "__main__":
    main()
