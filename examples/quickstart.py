#!/usr/bin/env python3
"""Quickstart: build an ad-hoc Semantic Web data sharing system and query it.

Reproduces the paper's running scenario end to end:

1. five index nodes self-organize into a Chord ring;
2. four storage nodes attach beneath them and publish their RDF triples
   into the two-level distributed index (six keys per triple);
3. SPARQL queries from any node are parsed, transformed to algebra,
   optimized, executed across the network, and post-processed at the
   initiator — with exact transmission accounting.

Run:  python examples/quickstart.py
"""

from repro import DistributedExecutor, HybridSystem
from repro.workloads import paper_example_partition


def main() -> None:
    # --- build the overlay ------------------------------------------------
    system = HybridSystem()
    for i in range(8):
        system.add_index_node(f"N{i}")
    system.build_ring()

    # Four providers share the paper's example dataset; each keeps its own
    # triples locally and publishes only index entries.
    for storage_id, triples in paper_example_partition().items():
        system.add_storage_node(storage_id, triples)

    print(f"ring of {len(system.index_nodes)} index nodes, "
          f"{len(system.storage_nodes)} storage nodes, "
          f"{system.total_triples()} triples (all provider-resident)\n")

    executor = DistributedExecutor(system)

    # --- the paper's Fig. 5 primitive query --------------------------------
    fig5 = "SELECT ?x WHERE { ?x foaf:knows ns:me . }"
    result, report = executor.execute(fig5, initiator="D1")
    print("Fig. 5 query:", fig5.strip())
    for binding in result.bindings():
        print("   ?x =", binding["x"].value)
    print(f"   [{report.messages} messages, {report.bytes_total} bytes, "
          f"{report.response_time * 1000:.1f} ms simulated]\n")

    # --- the paper's Fig. 9 query: filter + optional -----------------------
    fig9 = """
        SELECT ?x ?y ?z WHERE {
          ?x foaf:name ?name ;
             ns:knowsNothingAbout ?y .
          FILTER regex(?name, "Smith")
          OPTIONAL { ?y foaf:knows ?z . }
        }
    """
    result, report = executor.execute(fig9, initiator="D1")
    print("Fig. 9 query (filter pushed to the providers):")
    for binding in result.bindings():
        row = {k: v.value.rsplit('/', 1)[-1] for k, v in binding.items()}
        print("  ", row)
    print(f"   [{report.messages} messages, {report.bytes_total} bytes, "
          f"{report.response_time * 1000:.1f} ms simulated; "
          f"notes: {', '.join(report.notes)}]")


if __name__ == "__main__":
    main()
