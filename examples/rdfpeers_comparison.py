#!/usr/bin/env python3
"""Architecture comparison: the paper's hybrid overlay vs RDFPeers.

RDFPeers (Cai & Frank, 2004) *stores* each triple at three ring nodes;
the paper's system keeps triples at their providers and distributes only
a six-key location index. This script publishes the same dataset into
both systems and compares:

* where the data ends up (migrated vs provider-resident),
* data-plane publication traffic,
* the cost of resolving the same triple pattern in each.

Run:  python examples/rdfpeers_comparison.py
"""

from repro import DistributedExecutor, HybridSystem
from repro.baselines import RDFPeersSystem
from repro.metrics import render_table
from repro.rdf import FOAF, TriplePattern, Variable
from repro.workloads import FoafConfig, generate_foaf_triples

PATTERN = TriplePattern(Variable("x"), FOAF.knows, Variable("y"))


def main() -> None:
    triples = generate_foaf_triples(FoafConfig(num_people=60, seed=13))

    # --- the paper's hybrid system -----------------------------------------
    hybrid = HybridSystem()
    for i in range(16):
        hybrid.add_index_node(f"N{i}")
    hybrid.build_ring()
    hybrid.add_storage_node("D0", triples, publish=True, protocol=True)
    hybrid_pub = hybrid.stats.bytes_for(
        "publish", "publish.reply", "index_put", "index_put.reply", "replica_put"
    )
    executor = DistributedExecutor(hybrid)
    result, report = executor.execute(
        "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }", initiator="D0"
    )

    # --- RDFPeers -----------------------------------------------------------
    rdfpeers = RDFPeersSystem()
    for i in range(16):
        rdfpeers.add_node(f"P{i}")
    rdfpeers.build_ring()
    rdfpeers.publish("P0", triples)
    rdfpeers_pub = rdfpeers.stats.bytes_for("store_triples", "store_triples.reply")
    checkpoint = rdfpeers.stats.checkpoint()
    matches = rdfpeers.query_pattern("P1", PATTERN)
    rdfpeers_query_bytes = rdfpeers.stats.delta(checkpoint).bytes

    print(render_table(
        ["metric", "hybrid (this paper)", "RDFPeers"],
        [
            ["triples migrated off provider", 0, rdfpeers.total_stored()],
            ["publication data-plane bytes", hybrid_pub, rdfpeers_pub],
            ["pattern-query answer rows", len(result.rows), len(matches)],
            ["pattern-query bytes", report.bytes_total, rdfpeers_query_bytes],
        ],
        title="Publishing 60 people's FOAF data into both architectures",
    ))
    print(
        "\nThe hybrid design trades slightly costlier queries (two-level "
        "indirection)\nfor provider-resident data and index-entry-sized "
        "publication — the paper's\ncentral architectural argument (Sect. I)."
    )


if __name__ == "__main__":
    main()
