#!/usr/bin/env python3
"""Compare the paper's query-processing strategies on one workload.

Scenario: a reading group shares FOAF-style contact data across a dozen
laptops. A member asks "who knows whom?" — a broad primitive query — and
we measure each strategy of Sect. IV-C, then a selective conjunction
under the three join-site policies of Sect. II.

Run:  python examples/strategy_comparison.py
"""

from repro import (
    DistributedExecutor,
    ExecutionOptions,
    HybridSystem,
    JoinSitePolicy,
    PrimitiveStrategy,
)
from repro.metrics import render_table
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples


def build_system() -> HybridSystem:
    triples = generate_foaf_triples(
        FoafConfig(num_people=150, knows_per_person=4, nick_fraction=0.2, seed=42)
    )
    parts = partition_triples(triples, 8, overlap=0.3, seed=43)
    system = HybridSystem()
    for i in range(12):
        system.add_index_node(f"N{i}")
    system.build_ring()
    for i, part in enumerate(parts):
        system.add_storage_node(f"D{i}", part)
    return system


def main() -> None:
    system = build_system()

    broad = "SELECT ?a ?b WHERE { ?a foaf:knows ?b . }"
    rows = []
    for strategy in PrimitiveStrategy:
        executor = DistributedExecutor(
            system, ExecutionOptions(primitive_strategy=strategy)
        )
        result, report = executor.execute(broad, initiator="D0")
        rows.append([strategy.name, len(result.rows),
                     round(report.response_time * 1000, 1),
                     report.bytes_total, report.messages])
    print(render_table(
        ["strategy", "rows", "time_ms", "bytes", "messages"], rows,
        title="Primitive strategies (Sect. IV-C) on a broad query",
    ))
    print()

    # A left outer join with a selective top filter: the two operand sets
    # collect at different sites, so the join-site policy has a real
    # decision to make (with a conjunction over overlapping providers the
    # shared-site optimization of Sect. IV-D would pre-empt it).
    selective = """SELECT ?a ?n ?k WHERE {
        ?a foaf:name ?n .
        OPTIONAL { ?a foaf:nick ?k . }
        FILTER (BOUND(?k) && regex(?k, "Shrek"))
    }"""
    rows = []
    for policy in JoinSitePolicy:
        executor = DistributedExecutor(
            system, ExecutionOptions(join_site_policy=policy)
        )
        result, report = executor.execute(selective, initiator="D0")
        rows.append([policy.value, len(result.rows),
                     round(report.response_time * 1000, 1),
                     report.bytes_total])
    print(render_table(
        ["join-site policy", "rows", "time_ms", "bytes"], rows,
        title="Join-site selection (Sect. II) on a filtered OPTIONAL query",
    ))


if __name__ == "__main__":
    main()
