#!/usr/bin/env python3
"""Trace a distributed query and reconstruct the paper's Fig. 3 flow.

The tracer records every message the simulated network carries — RPC
requests, replies, errors, one-way shipments — plus operator spans
(primitive, conjunction, join, optional, ...) with simulated start/end
times. From one traced run we get:

1. a Fig. 3-style ASCII sequence diagram of the message flow;
2. the per-phase cost table (lookup / ship / join / finalize), whose
   byte column sums *exactly* to ``report.bytes_total``;
3. a JSONL event dump suitable for diffing between runs (the simulation
   is deterministic, so the trace is byte-identical across runs).

Run:  python examples/trace_walkthrough.py
"""

from repro import DistributedExecutor, HybridSystem
from repro.trace import Tracer, render_phases, render_sequence, render_spans, to_jsonl
from repro.workloads import paper_example_partition

FIG6 = """SELECT ?x ?y ?z WHERE {
    ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y . }"""


def main() -> None:
    system = HybridSystem()
    for i in range(8):
        system.add_index_node(f"N{i}")
    system.build_ring()
    for storage_id, triples in paper_example_partition().items():
        system.add_storage_node(storage_id, triples)

    tracer = Tracer()
    executor = DistributedExecutor(system, tracer=tracer)
    result, report = executor.execute(FIG6, initiator="D1")

    print("Fig. 6 conjunctive query:", " ".join(FIG6.split()))
    print(f"{report.result_count} results\n")

    print("message flow (Fig. 3 reconstructed):")
    print(render_sequence(tracer))

    print(render_phases(report.phases))
    phase_bytes = sum(p.bytes for p in report.phases.values())
    print(f"\nphase bytes {phase_bytes} == report.bytes_total "
          f"{report.bytes_total}: {phase_bytes == report.bytes_total}")

    print("\noperator spans:")
    print(render_spans(tracer))

    jsonl = to_jsonl(tracer)
    print(f"JSONL export: {len(jsonl.splitlines())} events, "
          f"first line:\n  {jsonl.splitlines()[0]}")


if __name__ == "__main__":
    main()
