"""repro — distributed SPARQL query processing in an ad-hoc Semantic Web
data sharing system.

A from-scratch reproduction of Zhou, v. Bochmann & Shi, *Distributed
Query Processing in an Ad-Hoc Semantic Web Data Sharing System* (IPDPS
Workshops / IPPS 2013): a hybrid two-level P2P overlay (Chord ring of
index nodes with storage nodes beneath), a six-key distributed index over
RDF triples, and distributed processing of SPARQL queries with the
paper's optimization strategies.

Quickstart::

    from repro import HybridSystem
    from repro.workloads import paper_example_partition

    system = HybridSystem()
    for i in range(8):
        system.add_index_node(f"N{i}")
    system.build_ring()
    for storage_id, triples in paper_example_partition().items():
        system.add_storage_node(storage_id, triples)

    result, report = system.execute(
        "SELECT ?x WHERE { ?x foaf:knows ns:me . }", initiator="D1"
    )
    print(result.bindings(), report.bytes_total)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .rdf import (
    BlankNode,
    Graph,
    IRI,
    Literal,
    Triple,
    TriplePattern,
    Variable,
)
from .sparql import QueryResult, evaluate_query, parse_query
from .net import LinkModel, Network, NetworkStats, Simulator
from .chord import ChordRing, IdentifierSpace
from .overlay import HybridSystem, IndexNode, StorageNode, fig1_network
from .query import (
    ConjunctionMode,
    DistributedExecutor,
    ExecutionOptions,
    ExecutionReport,
    JoinSitePolicy,
    PrimitiveStrategy,
)

__version__ = "1.0.0"

__all__ = [
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "Triple",
    "TriplePattern",
    "Graph",
    "parse_query",
    "evaluate_query",
    "QueryResult",
    "Simulator",
    "Network",
    "NetworkStats",
    "LinkModel",
    "IdentifierSpace",
    "ChordRing",
    "HybridSystem",
    "IndexNode",
    "StorageNode",
    "fig1_network",
    "DistributedExecutor",
    "ExecutionOptions",
    "ExecutionReport",
    "PrimitiveStrategy",
    "ConjunctionMode",
    "JoinSitePolicy",
    "__version__",
]
