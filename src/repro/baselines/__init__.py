"""Baseline comparators (S13): the RDFPeers flat-DHT repository and the
unstructured (Gnutella-style) flooding overlay."""

from .rdfpeers import RDFPeersNode, RDFPeersSystem
from .flooding import FloodingNode, FloodingSystem
from .ranges import LocalityHash, NumericRange, sort_ranges

__all__ = [
    "RDFPeersNode",
    "RDFPeersSystem",
    "FloodingNode",
    "FloodingSystem",
    "LocalityHash",
    "NumericRange",
    "sort_ranges",
]
