"""Unstructured-P2P (Gnutella-style) flooding baseline.

The paper's introduction motivates the hybrid design against plain
unstructured P2P: flooding needs no index but has "unsatisfactory
scalability" — every query touches a neighborhood that grows with the
network, and bounded TTLs trade recall for cost.

This baseline implements exactly that comparator: storage nodes form a
random k-regular-ish neighbor graph; a query floods with a TTL; each
reached node evaluates the sub-query locally and sends its matches
straight back to the initiator. Duplicate arrivals are suppressed by
query id (standard Gnutella semantics).

Experiment E11 compares messages, bytes, and recall against the two-level
index for the same query on the same data.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..net.transport import Network
from ..overlay.peer import _mapping_sort_key
from ..overlay.storage_node import StorageNode
from ..rdf.triple import Triple
from ..sparql.algebra import Algebra
from ..sparql.solutions import SolutionMapping

__all__ = ["FloodingNode", "FloodingSystem"]


class FloodingNode(StorageNode):
    """A storage node that forwards queries to its neighbors."""

    def __init__(self, node_id: str, triples: Optional[Iterable[Triple]] = None) -> None:
        super().__init__(node_id, triples)
        self.neighbors: List[str] = []
        self._seen_queries: Set[str] = set()

    def rpc_flood(self, payload: Dict[str, Any], src: str) -> None:
        """One-way flood step: evaluate locally, answer the initiator,
        forward to neighbors while TTL remains."""
        assert self.network is not None
        qid = payload["qid"]
        if qid in self._seen_queries:
            return
        self._seen_queries.add(qid)

        matches = self.local_eval(payload["algebra"])
        if matches:
            self.network.send(
                self.node_id,
                payload["initiator"],
                "deliver",
                {
                    "corr": qid,
                    "data": sorted(matches, key=_mapping_sort_key),
                    "notify": None,
                },
            )
        ttl = payload["ttl"] - 1
        if ttl <= 0:
            return
        for neighbor in self.neighbors:
            if neighbor == src:
                continue
            self.network.send(
                self.node_id,
                neighbor,
                "flood",
                {**payload, "ttl": ttl},
            )


class FloodingSystem:
    """A random unstructured overlay of :class:`FloodingNode`."""

    def __init__(self, network: Optional[Network] = None) -> None:
        self.network = network or Network()
        self.nodes: Dict[str, FloodingNode] = {}
        self._qid_seq = 0

    @property
    def sim(self):
        return self.network.sim

    @property
    def stats(self):
        return self.network.stats

    def add_node(self, node_id: str, triples: Iterable[Triple] = ()) -> FloodingNode:
        node = FloodingNode(node_id, triples)
        self.network.register(node)
        self.nodes[node_id] = node
        return node

    def wire_random(self, degree: int, seed: int = 0) -> None:
        """Connect each node to ~degree random peers (undirected union of
        a ring — guaranteeing connectivity — plus random chords)."""
        ids = sorted(self.nodes)
        if len(ids) < 2:
            return
        rng = random.Random(seed)
        edges: Set[Tuple[str, str]] = set()
        for i, node_id in enumerate(ids):  # connectivity backbone
            edges.add(tuple(sorted((node_id, ids[(i + 1) % len(ids)]))))
        for node_id in ids:
            while sum(1 for e in edges if node_id in e) < degree:
                other = ids[rng.randrange(len(ids))]
                if other != node_id:
                    edges.add(tuple(sorted((node_id, other))))
        for a, b in edges:
            self.nodes[a].neighbors.append(b)
            self.nodes[b].neighbors.append(a)
        for node in self.nodes.values():
            node.neighbors.sort()

    # ---------------------------------------------------------------- query

    def query(
        self,
        initiator_id: str,
        algebra: Algebra,
        ttl: int,
        settle_time: float = 3.0,
    ) -> List[SolutionMapping]:
        """Flood *algebra* from *initiator_id* and collect the answers
        that arrive within *settle_time* simulated seconds.

        Flooding has no completion detection (a core weakness of the
        paradigm): the initiator simply waits out a deadline, so recall
        depends on both TTL and patience.
        """
        initiator = self.nodes[initiator_id]
        self._qid_seq += 1
        qid = f"flood-{self._qid_seq}"

        def proc():
            # Seed the flood at the initiator itself.
            initiator.rpc_flood(
                {
                    "qid": qid,
                    "algebra": algebra,
                    "ttl": ttl,
                    "initiator": initiator_id,
                },
                initiator_id,
            )
            yield self.sim.timeout(settle_time)
            collected = initiator.mailbox.pop(qid, set())
            return sorted(collected, key=_mapping_sort_key)

        return self.sim.run_process(proc())

    def nodes_reached(self) -> int:
        """How many nodes saw the most recent query (recall diagnostics)."""
        qid = f"flood-{self._qid_seq}"
        return sum(1 for n in self.nodes.values() if qid in n._seen_queries)
