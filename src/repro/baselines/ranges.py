"""Locality-preserving hashing and range queries (paper Sect. II).

The paper credits RDFPeers with resolving "a range query for ?o
efficiently by using a uniform locality preserving hashing function and a
range ordering algorithm that sorts the query ranges in ascending order".
This module implements both:

* :class:`LocalityHash` — maps numeric object values onto the identifier
  ring *order-preservingly*, so a value range corresponds to a contiguous
  arc of the ring;
* :class:`RangeIndex` mixin methods on the RDFPeers system — numeric
  triples are additionally stored under their locality key, and a range
  query walks the arc's successor chain, visiting only the nodes whose
  ranges intersect the query;
* disjunctive range queries — multiple ranges are sorted ascending and
  resolved in one ring traversal (the "range ordering algorithm").

The hybrid system needs none of this machinery: a range is simply a
FILTER over the ⟨p⟩-indexed pattern, evaluated *at the providers*
(Sect. IV-G filter pushing). Experiment E13 compares the two designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..chord.idspace import IdentifierSpace
from ..rdf.terms import Literal, RDFTerm

__all__ = ["LocalityHash", "NumericRange", "sort_ranges"]


@dataclass(frozen=True, slots=True)
class NumericRange:
    """A closed numeric interval [lo, hi]."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty range [{self.lo}, {self.hi}]")

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def wire_size(self) -> int:
        return 16


def sort_ranges(ranges: Iterable[NumericRange]) -> List[NumericRange]:
    """RDFPeers' range ordering: ascending by lower bound, so a single
    clockwise traversal of the ring serves every range."""
    return sorted(ranges, key=lambda r: (r.lo, r.hi))


@dataclass(frozen=True, slots=True)
class LocalityHash:
    """Order-preserving map from a numeric attribute domain to the ring.

    RDFPeers assumes the attribute's domain is globally known; values are
    mapped linearly onto the identifier space, so ``v1 <= v2  =>
    key(v1) <= key(v2)`` and a value range is a contiguous arc.
    Out-of-domain values clamp to the ends.
    """

    domain_lo: float
    domain_hi: float
    space: IdentifierSpace

    def __post_init__(self) -> None:
        if self.domain_hi <= self.domain_lo:
            raise ValueError("locality hash needs a non-degenerate domain")

    def key(self, value: float) -> int:
        clamped = min(max(value, self.domain_lo), self.domain_hi)
        fraction = (clamped - self.domain_lo) / (self.domain_hi - self.domain_lo)
        return min(self.space.size - 1, int(fraction * (self.space.size - 1)))

    def arc(self, rng: NumericRange) -> Tuple[int, int]:
        """The (start, end) ring keys covering *rng* (inclusive arc)."""
        return self.key(rng.lo), self.key(rng.hi)


def numeric_value(term: RDFTerm) -> Optional[float]:
    """The numeric value of a literal, or None."""
    if isinstance(term, Literal) and term.is_numeric:
        try:
            return float(term.to_python())  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
    return None
