"""RDFPeers baseline (Cai & Frank, WWW 2004) — the comparator system.

RDFPeers is the flat-DHT design the paper differentiates itself from:
each triple is *stored at* (not merely indexed by) the ring nodes owning
the hashes of its subject, predicate, and object — three copies migrate
away from the data provider. The paper's architecture instead keeps
triples at their providers and distributes only location-table entries.

This implementation provides what the comparison experiments need:

* triple publication with real data migration (charged traffic),
* single-pattern query resolution at the responsible node,
* RDFPeers' subject-anchored conjunctive resolution: candidate subjects
  flow from one predicate's node to the next and are intersected along
  the way (the "recursive algorithm that seeks the candidate subjects for
  each predicate recursively" of Sect. II).

Experiment E7 contrasts publication traffic and data placement; the
query-side numbers show both systems enjoy O(log N) routing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..chord.hashing import hash_term
from ..chord.idspace import IdentifierSpace
from ..chord.node import ChordNode
from ..chord.ring import ChordRing
from ..net.transport import Network
from ..overlay.peer import QueryPeer, _mapping_sort_key
from ..rdf.graph import Graph
from ..rdf.terms import IRI, RDFTerm, is_concrete
from ..rdf.triple import Triple, TriplePattern
from ..sparql.solutions import SolutionMapping, join as omega_join, match_pattern
from .ranges import LocalityHash, NumericRange, numeric_value, sort_ranges

__all__ = ["RDFPeersNode", "RDFPeersSystem"]

_ATTR_TAGS = ("s:", "p:", "o:")


def _attr_key(tag: str, term: RDFTerm, space: IdentifierSpace) -> int:
    return hash_term(tag + term.n3(), space)


class RDFPeersNode(QueryPeer, ChordNode):
    """A ring node that stores triples for the key ranges it owns."""

    def __init__(self, node_id: str, ident: int, space: IdentifierSpace,
                 successor_list_size: int = 3) -> None:
        ChordNode.__init__(self, node_id, ident, space, successor_list_size)
        #: Triples stored here, bucketed by the ring key that put them here.
        self.store: Dict[int, Graph] = {}

    # ---------------------------------------------------------- store side

    def rpc_store_triples(self, payload: Dict[str, Any], src: str) -> int:
        key = payload["key"]
        bucket = self.store.setdefault(key, Graph())
        added = bucket.update(payload["triples"])
        return added

    def rpc_match_pattern(self, payload: Dict[str, Any], src: str) -> List[SolutionMapping]:
        """Match a pattern against the bucket of one key."""
        key = payload["key"]
        pattern: TriplePattern = payload["pattern"]
        bucket = self.store.get(key)
        if bucket is None:
            return []
        out: Set[SolutionMapping] = set()
        for triple in bucket.triples(pattern):
            mu = match_pattern(pattern, triple)
            if mu is not None:
                out.add(mu)
        return sorted(out, key=_mapping_sort_key)

    def rpc_match_with_candidates(self, payload: Dict[str, Any], src: str) -> List[SolutionMapping]:
        """One step of the conjunctive algorithm: join incoming candidate
        mappings with this node's matches for the pattern."""
        matches = self.rpc_match_pattern(payload, src)
        candidates: Sequence[SolutionMapping] = payload.get("candidates", ())
        joined = omega_join(candidates, matches)
        return sorted(joined, key=_mapping_sort_key)

    def triples_stored(self) -> int:
        return sum(len(g) for g in self.store.values())

    # -------------------------------------------------- numeric range index

    @property
    def numeric_store(self) -> Dict[int, List[Triple]]:
        box = self.__dict__.setdefault("_numeric_store", {})
        return box

    def rpc_store_numeric(self, payload: Dict[str, Any], src: str) -> int:
        """Store triples under the locality-preserving key of their
        numeric object (Sect. II: range support)."""
        bucket = self.numeric_store.setdefault(payload["key"], [])
        added = 0
        for triple in payload["triples"]:
            if triple not in bucket:
                bucket.append(triple)
                added += 1
        return added

    def rpc_range_scan(self, payload: Dict[str, Any], src: str) -> List[Triple]:
        """Local matches for predicate + ranges among the numeric buckets
        this node stores."""
        predicate: IRI = payload["predicate"]
        ranges: List[NumericRange] = payload["ranges"]
        out: List[Triple] = []
        for bucket in self.numeric_store.values():
            for triple in bucket:
                if triple.p != predicate:
                    continue
                value = numeric_value(triple.o)
                if value is None:
                    continue
                if any(r.contains(value) for r in ranges):
                    out.append(triple)
        return sorted(out, key=lambda t: t.n3())


class RDFPeersSystem:
    """A flat multi-attribute addressable network of RDFPeers nodes."""

    def __init__(self, space: Optional[IdentifierSpace] = None,
                 network: Optional[Network] = None) -> None:
        self.space = space or IdentifierSpace(32)
        self.network = network or Network()
        self.ring = ChordRing(self.network, self.space)
        self.nodes: Dict[str, RDFPeersNode] = {}

    @property
    def sim(self):
        return self.network.sim

    @property
    def stats(self):
        return self.network.stats

    def add_node(self, node_id: str, ident: Optional[int] = None) -> RDFPeersNode:
        if ident is None:
            ident = hash_term(node_id, self.space)
        node = RDFPeersNode(node_id, ident, self.space)
        self.ring.add_node(node)
        self.nodes[node_id] = node
        return node

    def build_ring(self) -> None:
        self.ring.build_static()

    # ------------------------------------------------------------ publishing

    def publish(self, provider_id: str, triples: Iterable[Triple]) -> int:
        """Store each triple at the successors of Hash(s), Hash(p), Hash(o).

        The provider routes through the ring (real lookups) and ships the
        triples themselves — the data-migration cost the paper's design
        avoids.
        """
        triples = list(triples)
        entry = self.nodes[provider_id]

        def proc():
            stored = 0
            by_key: Dict[int, List[Triple]] = {}
            for triple in triples:
                for tag, term in zip(_ATTR_TAGS, triple):
                    key = _attr_key(tag, term, self.space)
                    by_key.setdefault(key, []).append(triple)
            for key in sorted(by_key):
                result = yield entry.call(entry.node_id, "find_successor", {"key": key})
                stored += yield entry.call(
                    result.ref.node_id,
                    "store_triples",
                    {"key": key, "triples": by_key[key]},
                    timeout=60.0,
                )
            return stored

        return self.sim.run_process(proc())

    # -------------------------------------------------------------- querying

    @staticmethod
    def _route_attr(pattern: TriplePattern) -> Tuple[str, RDFTerm]:
        """The attribute RDFPeers routes on: the least-frequent bound one;
        we use subject > object > predicate preference (predicates are the
        most skewed, as the RDFPeers paper itself notes)."""
        if is_concrete(pattern.s):
            return "s:", pattern.s  # type: ignore[return-value]
        if is_concrete(pattern.o):
            return "o:", pattern.o  # type: ignore[return-value]
        if is_concrete(pattern.p):
            return "p:", pattern.p  # type: ignore[return-value]
        raise ValueError("RDFPeers cannot route a fully unbound pattern")

    def query_pattern(self, initiator_id: str, pattern: TriplePattern) -> List[SolutionMapping]:
        """Resolve one triple pattern at the responsible node."""
        entry = self.nodes[initiator_id]
        tag, term = self._route_attr(pattern)
        key = _attr_key(tag, term, self.space)

        def proc():
            result = yield entry.call(entry.node_id, "find_successor", {"key": key})
            matches = yield entry.call(
                result.ref.node_id, "match_pattern", {"key": key, "pattern": pattern}
            )
            return matches

        return self.sim.run_process(proc())

    def query_conjunction(
        self, initiator_id: str, patterns: Sequence[TriplePattern]
    ) -> List[SolutionMapping]:
        """Subject-anchored conjunctive resolution: candidates travel from
        node to node and are intersected (joined) at each step."""
        entry = self.nodes[initiator_id]

        def proc():
            candidates: Optional[List[SolutionMapping]] = None
            for pattern in patterns:
                tag, term = self._route_attr(pattern)
                key = _attr_key(tag, term, self.space)
                result = yield entry.call(entry.node_id, "find_successor", {"key": key})
                owner = result.ref.node_id
                if candidates is None:
                    candidates = yield entry.call(
                        owner, "match_pattern", {"key": key, "pattern": pattern}
                    )
                else:
                    candidates = yield entry.call(
                        owner,
                        "match_with_candidates",
                        {"key": key, "pattern": pattern, "candidates": candidates},
                    )
                if not candidates:
                    return []
            return candidates or []

        return self.sim.run_process(proc())

    # ------------------------------------------------- numeric range queries

    def enable_numeric_index(self, domain_lo: float, domain_hi: float) -> None:
        """Configure the globally-known numeric attribute domain for the
        locality-preserving hash (RDFPeers assumes one)."""
        self.locality = LocalityHash(domain_lo, domain_hi, self.space)

    def publish_numeric(self, provider_id: str, triples: Iterable[Triple]) -> int:
        """Additionally store numeric-object triples under their locality
        keys (real lookups + data shipping, as in :meth:`publish`)."""
        if not hasattr(self, "locality"):
            raise RuntimeError("call enable_numeric_index first")
        entry = self.nodes[provider_id]
        by_key: Dict[int, List[Triple]] = {}
        for triple in triples:
            value = numeric_value(triple.o)
            if value is None:
                continue
            by_key.setdefault(self.locality.key(value), []).append(triple)

        def proc():
            stored = 0
            for key in sorted(by_key):
                result = yield entry.call(entry.node_id, "find_successor", {"key": key})
                stored += yield entry.call(
                    result.ref.node_id,
                    "store_numeric",
                    {"key": key, "triples": by_key[key]},
                    timeout=60.0,
                )
            return stored

        return self.sim.run_process(proc())

    def range_query(
        self,
        initiator_id: str,
        predicate: IRI,
        ranges: Sequence[NumericRange],
    ) -> List[Triple]:
        """Resolve (possibly disjunctive) numeric range queries.

        Ranges are sorted ascending and coalesced (the paper's "range
        ordering algorithm"), then each arc of the ring is walked from the
        successor of Hash(lo) to the successor of Hash(hi): only nodes
        whose segments intersect the query are visited.
        """
        if not hasattr(self, "locality"):
            raise RuntimeError("call enable_numeric_index first")
        ordered = _coalesce(sort_ranges(ranges))
        entry = self.nodes[initiator_id]

        def proc():
            matches: List[Triple] = []
            visited: Set[str] = set()

            def visit(ref):
                if ref.node_id in visited:
                    return
                visited.add(ref.node_id)
                found = yield entry.call(
                    ref.node_id,
                    "range_scan",
                    {"predicate": predicate, "ranges": list(ordered)},
                )
                matches.extend(found)

            for rng in ordered:
                # Locality keys never wrap (the domain maps monotonically
                # onto [0, 2^m)), so the arc is the plain interval
                # [start_key, end_key]; the successor chain may still wrap
                # past 2^m - 1, in which case the wrapping node owns the
                # remainder of the arc.
                start_key, end_key = self.locality.arc(rng)
                result = yield entry.call(
                    entry.node_id, "find_successor", {"key": start_key}
                )
                current = result.ref
                while True:
                    yield from visit(current)
                    # Done when the arc end is covered: either this node's
                    # id passed end_key, or we are on a wrapped node (id
                    # below start_key), which owns the ring's tail arc.
                    if current.ident >= end_key or current.ident < start_key:
                        break
                    succ_list = yield entry.call(current.node_id, "get_successor_list")
                    if not succ_list or succ_list[0] == current:
                        break
                    nxt = succ_list[0]
                    if nxt.ident <= current.ident:  # wrapped around the top
                        yield from visit(nxt)
                        break
                    current = nxt
            return sorted(set(matches), key=lambda t: t.n3())

        return self.sim.run_process(proc())

    # ------------------------------------------------------------- metrics

    def total_stored(self) -> int:
        return sum(node.triples_stored() for node in self.nodes.values())


def _coalesce(ordered: List[NumericRange]) -> List[NumericRange]:
    """Merge overlapping/adjacent sorted ranges into maximal arcs."""
    if not ordered:
        return []
    merged = [ordered[0]]
    for rng in ordered[1:]:
        last = merged[-1]
        if rng.lo <= last.hi:
            merged[-1] = NumericRange(last.lo, max(last.hi, rng.hi))
        else:
            merged.append(rng)
    return merged
