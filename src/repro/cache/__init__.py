"""Cross-query result caching with delta-exact invalidation (S13).

The engine re-ships the same hot sub-results for every query that asks
for them: the only reuse mechanism below this package is the *per-query*
lookup LRU in :mod:`repro.query.executor`. This package adds a per-site
semantic result cache in the spirit of PHD-Store's workload-adaptive
placement and Peng et al.'s reusable partial results:

* :mod:`repro.cache.epoch` — the key-scoped ``data_epoch`` ledger that
  ``publish_delta`` / ``unpublish_delta`` advance; cached entries carry
  epoch stamps and a stale stamp can only ever produce a *miss*.
* :mod:`repro.cache.keys` — canonical cache keys for triple patterns and
  BGPs (variables numbered by first occurrence), so key equality implies
  structural equivalence up to variable renaming.
* :mod:`repro.cache.result_cache` — the per-node store: frequency-gated
  admission, a byte budget, LFU-tie-broken-LRU eviction.
* :mod:`repro.cache.runtime` — executor-side probing for the
  ``CacheProbe`` physical operator.

Everything is off unless ``ExecutionOptions.result_cache`` is set; with
it off the engine is byte-identical to a build without this package.
"""

from .epoch import DataEpochLedger
from .keys import bgp_cache_key, pattern_cache_key
from .result_cache import CacheEntry, ResultCache

__all__ = [
    "DataEpochLedger",
    "pattern_cache_key",
    "bgp_cache_key",
    "CacheEntry",
    "ResultCache",
]
