"""Key-scoped data-version ledger for delta-exact cache invalidation.

Every live publication path (``publish_delta`` / ``unpublish_delta`` and
the bulk publish that runs at attach time) advances the epoch of each
ring key whose location-table row it touches. Any triple that can change
the answer of a primitive pattern necessarily carries one of the six
index keys of that pattern (Sect. IV-A), so a cached result stamped with
the epochs of the keys it was computed from is provably current exactly
when every stamp still matches the ledger.

The ledger is deliberately dependency-free: the network transport owns
one instance, and both the per-query lookup LRU and the cross-query
result cache validate against it. Readers compare integers only — a
stale stamp produces a miss, never a wrong answer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

__all__ = ["DataEpochLedger"]

#: A ring key as the overlay uses it: ``(KeyKind, hashed identifier)``.
RingKey = Tuple[object, int]


class DataEpochLedger:
    """Monotonic per-ring-key version counters, plus a global counter.

    ``global_epoch`` advances on every key advance; it is the stamp used
    for results whose key set is unknowable (the fully-unbound broadcast
    pattern matches every triple, so any delta must invalidate it).
    """

    __slots__ = ("_epochs", "global_epoch")

    def __init__(self) -> None:
        self._epochs: Dict[RingKey, int] = {}
        self.global_epoch = 0

    def advance(self, key: RingKey) -> int:
        """Bump *key*'s epoch (a delta touched its row); returns it."""
        epoch = self._epochs.get(key, 0) + 1
        self._epochs[key] = epoch
        self.global_epoch += 1
        return epoch

    def get(self, key: RingKey) -> int:
        """Current epoch of *key* (0 if it never saw a delta)."""
        return self._epochs.get(key, 0)

    def snapshot(self, keys: Iterable[RingKey]) -> Dict[RingKey, int]:
        """Stamps for *keys* as of now — what a cache entry records."""
        get = self._epochs.get
        return {key: get(key, 0) for key in keys}

    def current(self, stamps: Dict[RingKey, int]) -> bool:
        """Are all *stamps* still the live epochs? (False ⇒ miss.)"""
        get = self._epochs.get
        return all(get(key, 0) == epoch for key, epoch in stamps.items())

    def __len__(self) -> int:
        return len(self._epochs)
