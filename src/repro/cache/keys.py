"""Canonical cache keys for triple patterns and BGP sub-results.

Two requests may reuse one cached result only if they are guaranteed to
produce the same rows. For a *primitive* pattern the cache key renames
variables to their first-occurrence index (``?x foaf:knows ?y`` and
``?a foaf:knows ?b`` both key as ``?0 <...knows> ?1``): key equality
then implies structural equivalence up to renaming, and the stored rows
are kept as *canonical term tuples* so a hit re-binds them to whatever
variable names the requesting pattern uses. A collision between
structurally different patterns is impossible by construction; an
unstable pattern ordering could at worst produce a benign miss.

For a *BGP* the cached value is a full solution set whose mappings bind
the query's actual variable names, so the key keeps those names verbatim
and canonicalizes only the pattern *order* (plus the projection
signature, which fixes the row schema under projection pushdown).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..rdf.terms import Variable
from ..rdf.triple import TriplePattern

__all__ = ["pattern_cache_key", "bgp_cache_key", "rebind_rows", "canonical_rows"]


def _token(term, numbering: dict, ordered: list) -> str:
    if isinstance(term, Variable):
        index = numbering.get(term)
        if index is None:
            index = numbering[term] = len(ordered)
            ordered.append(term)
        return f"?{index}"
    return term.n3()


def pattern_cache_key(
    pattern: TriplePattern,
) -> Tuple[str, Tuple[Variable, ...]]:
    """Canonical key for one pattern, plus its variables in canonical
    (first-occurrence) order — the schema of the stored rows."""
    numbering: dict = {}
    ordered: list = []
    tokens = [
        _token(term, numbering, ordered)
        for term in (pattern.s, pattern.p, pattern.o)
    ]
    return " ".join(tokens), tuple(ordered)


def canonical_rows(solutions, variables: Tuple[Variable, ...]):
    """Solution mappings → sorted tuple of canonical term tuples.

    *variables* is the canonical order from :func:`pattern_cache_key`;
    every stored row lists its terms in exactly that order, so the rows
    are variable-name-free and reusable across renamings.
    """
    rows = sorted(
        (tuple(mu[var] for var in variables) for mu in solutions),
        key=lambda row: tuple(term.n3() for term in row),
    )
    return tuple(rows)


def rebind_rows(rows, variables: Tuple[Variable, ...]):
    """Canonical term tuples → solution mappings over *variables* (the
    requesting pattern's own canonical variable order)."""
    from ..sparql.solutions import SolutionMapping

    return {
        SolutionMapping(dict(zip(variables, row))) for row in rows
    }


def bgp_cache_key(
    patterns: Iterable[TriplePattern],
    live: Optional[Iterable[Variable]],
) -> str:
    """Order-insensitive key for a BGP walk's combined sub-result.

    *live* is the projection the walk will apply (``None`` = every
    variable survives); it is part of the key because it fixes the
    schema of the rows that land at the combine site.
    """
    parts = sorted(
        " ".join(
            f"?{term.name}" if isinstance(term, Variable) else term.n3()
            for term in (p.s, p.p, p.o)
        )
        for p in patterns
    )
    if live is None:
        signature = "*"
    else:
        signature = ",".join(sorted(v.name for v in live))
    return " | ".join(parts) + " || " + signature
