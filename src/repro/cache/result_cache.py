"""The per-node cross-query result store.

Admission is *workload-adaptive*: every probe bumps the key's observed
access frequency, and a result is only materialized into the cache once
its key has been asked for ``admit_threshold`` times — under a Zipf'd
query mix the handful of hot keys clear the gate almost immediately
while the long tail never pays the fill cost. Residency is bounded by a
per-node byte budget with LFU-tie-broken-LRU eviction (frequencies
survive eviction, so a re-heated key re-enters the cache quickly).

Correctness is delegated entirely to epoch stamps: every entry records
the ``data_epoch`` of each ring key it was computed from plus the
network ``membership_epoch``, captured *before* its result was computed.
A probe revalidates both against the live ledger; any delta or
membership change since the stamps were taken turns the entry into a
miss and drops it. Stale entries can cost a re-execution, never a wrong
answer.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..net.sizes import size_of

__all__ = ["CacheEntry", "ResultCache"]

#: Default per-node residency budget (bytes of cached solution data).
DEFAULT_CACHE_BYTES = 262144

#: Default admission gate: probes a key must accumulate before its
#: result is materialized.
DEFAULT_ADMIT_THRESHOLD = 2


class CacheEntry:
    """One memoized sub-result plus everything needed to revalidate it."""

    __slots__ = ("value", "vars", "stamps", "membership_epoch",
                 "nbytes", "last_used")

    def __init__(self, value: Any, vars: Any, stamps: Dict[int, int],
                 membership_epoch: int, nbytes: int, last_used: int) -> None:
        self.value = value
        self.vars = vars
        self.stamps = stamps
        self.membership_epoch = membership_epoch
        self.nbytes = nbytes
        self.last_used = last_used


class ResultCache:
    """Byte-budgeted store of sub-results for one index/combine node.

    All instances share the network's :class:`CacheCounters`, so the
    system-wide hit ratio aggregates naturally.
    """

    __slots__ = ("network", "byte_cap", "admit_threshold",
                 "entries", "frequencies", "bytes_used", "_clock")

    def __init__(self, network, byte_cap: int = DEFAULT_CACHE_BYTES,
                 admit_threshold: int = DEFAULT_ADMIT_THRESHOLD) -> None:
        self.network = network
        self.byte_cap = byte_cap
        self.admit_threshold = admit_threshold
        self.entries: Dict[str, CacheEntry] = {}
        #: Probe counts per key; survives eviction (the LFU signal).
        self.frequencies: Dict[str, int] = {}
        self.bytes_used = 0
        self._clock = 0

    # ------------------------------------------------------------- probing

    def probe(self, key: str) -> Tuple[Optional[CacheEntry], bool]:
        """Look *key* up, bump its frequency, revalidate the stamps.

        Returns ``(entry, admit)``: *entry* is the current cached entry
        (None on a miss) and *admit* says whether a fresh result for the
        key has cleared the admission gate.
        """
        counters = self.network.cache
        counters.probes += 1
        freq = self.frequencies.get(key, 0) + 1
        self.frequencies[key] = freq
        entry = self.entries.get(key)
        if entry is not None:
            if (entry.membership_epoch == self.network.membership_epoch
                    and self.network.data_epochs.current(entry.stamps)):
                counters.hits += 1
                self._clock += 1
                entry.last_used = self._clock
                return entry, False
            # A delta or membership change outdated the stamps.
            self._drop(key, entry)
            counters.stale_drops += 1
        counters.misses += 1
        if freq >= self.admit_threshold:
            return None, True
        counters.admission_deferred += 1
        return None, False

    # ----------------------------------------------------------- admission

    def admit(self, key: str, value: Any, vars: Any,
              stamps: Dict[int, int], membership_epoch: int) -> bool:
        """Materialize a result computed under *stamps*.

        The stamps must have been captured *before* the result was
        computed: a delta that raced the computation then makes the
        entry dead on arrival instead of silently wrong.
        """
        nbytes = size_of(value)
        if nbytes > self.byte_cap:
            return False
        counters = self.network.cache
        old = self.entries.get(key)
        if old is not None:
            self._drop(key, old)
        while self.bytes_used + nbytes > self.byte_cap and self.entries:
            victim = min(
                self.entries,
                key=lambda k: (self.frequencies.get(k, 0),
                               self.entries[k].last_used),
            )
            self._drop(key=victim, entry=self.entries[victim])
            counters.evictions += 1
        self._clock += 1
        self.entries[key] = CacheEntry(
            value, vars, dict(stamps), membership_epoch, nbytes, self._clock
        )
        self.bytes_used += nbytes
        counters.admissions += 1
        counters.bytes_cached += nbytes
        return True

    # ------------------------------------------------------------ internal

    def _drop(self, key: str, entry: CacheEntry) -> None:
        del self.entries[key]
        self.bytes_used -= entry.nbytes
        counters = self.network.cache
        counters.bytes_cached -= entry.nbytes
        counters.bytes_evicted += entry.nbytes

    def __len__(self) -> int:
        return len(self.entries)
