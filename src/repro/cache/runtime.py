"""Combine-site BGP caching: the :class:`CacheProbe` operator's runtime.

The distributed compiler emits a :class:`~repro.query.physical.CacheProbe`
(a :class:`~repro.query.physical.BGPWalk` subclass) for every
multi-pattern conjunction when the result cache is on. Before running
the walk, this module asks the *planned combine site* whether it already
holds the walk's whole solution set:

* **hit** — the site installs the memoized solutions into its mailbox
  under a fresh correlation id, exactly where the walk would have left
  them; every chain, provider fan-out, and pairwise join is skipped.
* **miss past the admission gate** — the walk runs normally (pinned to
  the probed site), then its finished mailbox entry is admitted with
  data-epoch stamps captured *before* the walk started, so a delta that
  raced the computation invalidates the entry rather than corrupting it.
* **cold miss** — the walk runs; only the key's frequency is counted.

The probe falls back to the plain walk whenever memoization is unsound
or has no single home: broadcast patterns (no index key), pushed-down
filter conditions, a post-filter, or the BASIC conjunction mode (which
walks index node to index node and has no stable combine site).
"""

from __future__ import annotations

from .keys import bgp_cache_key

__all__ = ["exec_cache_probe"]


def exec_cache_probe(ctx, walk):
    """Generator: execute a CacheProbe operator → ResultHandle."""
    from ..query.conjunction import _fallback_site, _locate_leaves, exec_bgp
    from ..query.plan import ResultHandle, choose_shared_site
    from ..query.strategies import ConjunctionMode

    cfg = ctx.cache_cfg()
    if cfg is None:
        return (yield from exec_bgp(ctx, walk))

    # Locate every leaf up front (the walk needs the rows anyway); pin
    # the results so the fallback walk never consults the index twice.
    steps = yield from _locate_leaves(ctx, walk.children)
    for leaf, info in steps:
        leaf.lookup.info = info
    infos = [info for _leaf, info in steps]

    mode = (ConjunctionMode(walk.plan_mode) if walk.plan_mode is not None
            else ctx.options.conjunction_mode)
    if (
        mode is not ConjunctionMode.OPTIMIZED
        or walk.post_filter is not None
        or any(info.owner is None for info in infos)
        or any(leaf.lookup.condition is not None for leaf in walk.children)
    ):
        walk.detail["cache"] = "bypass"
        return (yield from exec_bgp(ctx, walk))

    # The probe site must be exactly where the walk would combine, so a
    # fill lands where the next probe looks. Pin it on the plan.
    site = walk.plan_site
    if site is None:
        site = choose_shared_site(infos)
    if site is None:
        site = _fallback_site(ctx, infos)
    walk.plan_site = site

    ckey = bgp_cache_key(
        [leaf.lookup.pattern for leaf in walk.children], ctx.live_vars)
    corr = ctx.new_corr()
    span = ctx.tracer.span("cache", key=ckey, site=site)
    payload = {"ckey": ckey, "corr": corr, "cfg": cfg}
    if site == ctx.initiator:
        resp = ctx.initiator_peer.rpc_cache_probe(payload, ctx.initiator)
    else:
        resp = yield ctx.call(site, "cache_probe", payload)

    if resp["hit"]:
        walk.detail["cache"] = "hit"
        span.close(outcome="hit", rows=resp["count"])
        return ResultHandle(site, corr, resp["count"], resp["vars"])

    admit = resp["admit"]
    # Stamps cover every leaf's ring key and are read before the walk:
    # any matching delta necessarily advances one of them.
    stamps = {info.key: ctx.network.data_epochs.get(info.key)
              for info in infos}
    membership = ctx.network.membership_epoch

    handle = yield from exec_bgp(ctx, walk)

    if admit and handle.site == site:
        admit_payload = {
            "ckey": ckey,
            "corr": handle.corr,
            "vars": handle.vars,
            "stamps": stamps,
            "membership": membership,
            "cfg": cfg,
        }
        if site == ctx.initiator:
            ctx.initiator_peer.rpc_cache_admit(admit_payload, ctx.initiator)
        else:
            yield ctx.call(site, "cache_admit", admit_payload)
        walk.detail["cache"] = "fill"
        span.close(outcome="fill", rows=handle.count)
    else:
        walk.detail["cache"] = "miss"
        span.close(outcome="miss")
    return handle
