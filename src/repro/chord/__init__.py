"""Chord DHT substrate (S8): identifier space, hashing, nodes, ring, lookup."""

from .idspace import IdentifierSpace
from .hashing import hash_string, hash_term, hash_terms
from .node import ChordNode, LookupResult, NodeRef
from .ring import ChordRing
from .lookup import LookupSample, lookup, lookup_avoiding, measure_lookups

__all__ = [
    "IdentifierSpace",
    "hash_string",
    "hash_term",
    "hash_terms",
    "ChordNode",
    "NodeRef",
    "LookupResult",
    "ChordRing",
    "lookup",
    "lookup_avoiding",
    "measure_lookups",
    "LookupSample",
]
