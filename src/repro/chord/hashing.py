"""Hashing of RDF attribute values onto the identifier space.

The two-level index applies "globally known hash functions" to the
subject ⟨s⟩, predicate ⟨p⟩, object ⟨o⟩ and to the pairs ⟨s,p⟩, ⟨p,o⟩,
⟨s,o⟩ of each shared triple (paper, Sect. III-B). We use SHA-1 (as Chord
does) truncated to the ring's m bits, over a canonical byte encoding of
the term(s); pairs are length-prefixed so that no two distinct attribute
combinations can collide structurally.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

from ..rdf.terms import RDFTerm
from .idspace import IdentifierSpace

__all__ = ["hash_term", "hash_terms", "hash_string", "hash_terms_seeded"]


def _canonical_bytes(term: Union[RDFTerm, str]) -> bytes:
    if isinstance(term, str):
        return term.encode("utf-8")
    # n3() is injective across term kinds (<...>, "..."@/^^, _:...).
    return term.n3().encode("utf-8")


def hash_string(value: str, space: IdentifierSpace) -> int:
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % space.size


def hash_term(term: Union[RDFTerm, str], space: IdentifierSpace) -> int:
    """Hash a single attribute value to a ring identifier."""
    digest = hashlib.sha1(_canonical_bytes(term)).digest()
    return int.from_bytes(digest, "big") % space.size


def hash_terms(terms: Iterable[Union[RDFTerm, str]], space: IdentifierSpace) -> int:
    """Hash an attribute combination (e.g. ⟨s, p⟩) to a ring identifier.

    Each component is length-prefixed, making the encoding prefix-free:
    Hash(ab, c) can never equal Hash(a, bc) structurally.
    """
    hasher = hashlib.sha1()
    for term in terms:
        data = _canonical_bytes(term)
        hasher.update(len(data).to_bytes(4, "big"))
        hasher.update(data)
    return int.from_bytes(hasher.digest(), "big") % space.size


def hash_terms_seeded(
    terms: Iterable[Union[RDFTerm, str]], seed: int, modulus: int
) -> int:
    """Seeded variant of :func:`hash_terms` over an arbitrary modulus.

    The family of independent hash functions the Bloom-filter digests
    need (one per *seed*), built from the same canonical prefix-free
    term encoding as the index keys.
    """
    hasher = hashlib.sha1(seed.to_bytes(4, "big"))
    for term in terms:
        data = _canonical_bytes(term)
        hasher.update(len(data).to_bytes(4, "big"))
        hasher.update(data)
    return int.from_bytes(hasher.digest(), "big") % modulus
