"""The m-bit circular identifier space of Chord.

All interval arithmetic is modular; Chord correctness hinges on getting
the open/closed interval ends right, so that logic lives here in one
place with exhaustive unit tests (the paper's Fig. 1 uses a 4-bit space,
which the tests reuse).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IdentifierSpace"]


@dataclass(frozen=True, slots=True)
class IdentifierSpace:
    """The ring Z / 2^m with interval tests."""

    bits: int

    def __post_init__(self) -> None:
        if not (2 <= self.bits <= 160):
            raise ValueError("identifier space must use between 2 and 160 bits")

    @property
    def size(self) -> int:
        return 1 << self.bits

    def normalize(self, value: int) -> int:
        return value % self.size

    def between_open(self, x: int, a: int, b: int) -> bool:
        """x ∈ (a, b) on the ring. Empty when a == b? No: (a, a) is the
        *full* ring minus a — Chord's convention for a single-node ring."""
        x, a, b = self.normalize(x), self.normalize(a), self.normalize(b)
        if a == b:
            return x != a
        if a < b:
            return a < x < b
        return x > a or x < b

    def between_right_closed(self, x: int, a: int, b: int) -> bool:
        """x ∈ (a, b] on the ring; (a, a] is again the full ring."""
        x, a, b = self.normalize(x), self.normalize(a), self.normalize(b)
        if a == b:
            return True
        if a < b:
            return a < x <= b
        return x > a or x <= b

    def distance(self, a: int, b: int) -> int:
        """Clockwise distance from a to b."""
        return self.normalize(b - a)

    def finger_start(self, node: int, index: int) -> int:
        """start of finger *index* (0-based): (node + 2^index) mod 2^m."""
        if not (0 <= index < self.bits):
            raise ValueError(f"finger index {index} out of range for m={self.bits}")
        return self.normalize(node + (1 << index))
