"""Client-side lookup helpers and hop-count measurement.

Experiment E7 of DESIGN.md measures the two-level index's scalability
claim: locating the index node responsible for a key costs O(log N)
messages on the ring. These helpers run the measured lookups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean
from typing import List, Optional, Sequence

from ..net.transport import Network
from .node import LookupResult, NodeRef
from .ring import ChordRing

__all__ = ["lookup", "lookup_avoiding", "LookupSample", "measure_lookups"]


def lookup(network: Network, entry: NodeRef, key: int, initiator: str = "client") -> LookupResult:
    """Resolve *key* starting at *entry*; runs the simulation to completion.

    Returns the :class:`LookupResult` (owner + hop count). The entry
    message from the initiator is not counted as a hop, matching the
    convention of the Chord paper (hops = forwarding steps on the ring).
    """

    def proc():
        result = yield network.call(initiator, entry.node_id, "find_successor", {"key": key})
        # Capture completion time *inside* the process: after run() returns
        # the clock has also drained unrelated RPC-timeout timers.
        return result, network.sim.now

    result, _completed_at = network.sim.run_process(proc())
    return result


def lookup_avoiding(
    network: Network,
    entry: NodeRef,
    key: int,
    initiator: str = "client",
    avoid: Sequence[str] = (),
) -> LookupResult:
    """Like :func:`lookup`, but carries an ``avoid`` hint so the ring
    answers with the dead owner's replica holder instead of the owner
    itself (failover routing; Sect. III-D takeover)."""

    payload = {"key": key}
    if avoid:
        payload["avoid"] = list(avoid)

    def proc():
        result = yield network.call(initiator, entry.node_id, "find_successor", payload)
        return result

    return network.sim.run_process(proc())


@dataclass(frozen=True, slots=True)
class LookupSample:
    """Aggregate of a batch of measured lookups."""

    count: int
    mean_hops: float
    max_hops: int
    mean_latency: float

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"{self.count} lookups: mean hops {self.mean_hops:.2f}, "
            f"max {self.max_hops}, mean latency {self.mean_latency * 1000:.1f} ms"
        )


def measure_lookups(
    ring: ChordRing,
    num_lookups: int,
    rng: Optional[random.Random] = None,
    entries: Optional[Sequence[NodeRef]] = None,
) -> LookupSample:
    """Issue *num_lookups* lookups for uniform random keys from random
    entry nodes and aggregate hop counts and latencies."""
    rng = rng or random.Random(0)
    refs = entries if entries is not None else ring.sorted_refs()
    if not refs:
        raise LookupError("cannot measure lookups on an empty ring")
    network = ring.network
    hops: List[int] = []
    latencies: List[float] = []
    for _ in range(num_lookups):
        key = rng.randrange(ring.space.size)
        entry = refs[rng.randrange(len(refs))]

        def proc(entry=entry, key=key):
            start = network.sim.now
            result = yield network.call("client", entry.node_id, "find_successor", {"key": key})
            return result, network.sim.now - start

        result, elapsed = network.sim.run_process(proc())
        hops.append(result.hops)
        latencies.append(elapsed)
    return LookupSample(
        count=num_lookups,
        mean_hops=mean(hops),
        max_hops=max(hops),
        mean_latency=mean(latencies),
    )
