"""A Chord ring participant.

Implements the Chord protocol of Stoica et al. [5] as used by the paper's
index nodes (Sect. III): finger tables for O(log N) lookup, a successor
list for fault tolerance, the stabilize/notify repair protocol, and
key-range transfer on join/leave (Sect. III-C/D).

The class is transport-level: lookups are real simulated RPCs, so hop
counts and lookup latencies measured in experiments are the message-level
truth, not formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..net.sim import Event
from ..net.transport import Node, RpcError
from .idspace import IdentifierSpace

__all__ = ["NodeRef", "ChordNode", "LookupResult"]


@dataclass(frozen=True, slots=True, order=True)
class NodeRef:
    """A (ring id, address) pair — how nodes refer to one another."""

    ident: int
    node_id: str

    def wire_size(self) -> int:
        return 8 + len(self.node_id)


@dataclass(frozen=True, slots=True)
class LookupResult:
    """Outcome of find_successor: the owner and the route length."""

    ref: NodeRef
    hops: int

    def wire_size(self) -> int:
        return self.ref.wire_size() + 4


class ChordNode(Node):
    """One node of the Chord ring.

    Subclasses (the overlay's index nodes) may override
    :meth:`export_keys` / :meth:`import_keys` to move their application
    state (location-table rows) during membership changes.
    """

    def __init__(
        self,
        node_id: str,
        ident: int,
        space: IdentifierSpace,
        successor_list_size: int = 3,
    ) -> None:
        super().__init__(node_id)
        self.space = space
        self.ident = space.normalize(ident)
        self.ref = NodeRef(self.ident, node_id)
        self.fingers: List[Optional[NodeRef]] = [None] * space.bits
        self.successor_list: List[NodeRef] = []
        self.successor_list_size = successor_list_size
        self.predecessor: Optional[NodeRef] = None
        self._next_finger_to_fix = 0

    # ------------------------------------------------------------ topology

    @property
    def successor(self) -> NodeRef:
        if self.successor_list:
            return self.successor_list[0]
        return self.ref

    def set_successor(self, ref: NodeRef) -> None:
        if self.successor_list:
            self.successor_list[0] = ref
        else:
            self.successor_list = [ref]
        self.fingers[0] = ref

    def owns(self, key: int) -> bool:
        """True when this node is the successor of *key*.

        A node owns the keys in (predecessor, self]; with no predecessor
        known (single-node ring) it owns everything.
        """
        if self.predecessor is None:
            return True
        return self.space.between_right_closed(key, self.predecessor.ident, self.ident)

    def closest_preceding(self, key: int) -> NodeRef:
        """Best known strictly-preceding hop toward *key* (fingers, then
        successor list)."""
        for finger in reversed(self.fingers):
            if finger is not None and self.space.between_open(
                finger.ident, self.ident, key
            ):
                return finger
        for ref in reversed(self.successor_list):
            if self.space.between_open(ref.ident, self.ident, key):
                return ref
        return self.ref

    # -------------------------------------------------------- RPC handlers

    def rpc_ping(self, payload: Any, src: str) -> bool:
        return True

    def rpc_get_predecessor(self, payload: Any, src: str) -> Optional[NodeRef]:
        return self.predecessor

    def rpc_get_successor_list(self, payload: Any, src: str) -> List[NodeRef]:
        return list(self.successor_list)

    def rpc_find_successor(self, payload: Dict[str, int], src: str):
        """Recursive find_successor carrying a hop counter.

        Generator handler: forwarding hops are real messages, so the
        experiment's hop counts come straight from the message log.

        An optional ``avoid`` list in the payload names nodes the caller
        has observed dead: instead of returning one of them as the owner,
        we answer with the first other entry of our successor list — in
        Chord's successor-list replication (Sect. III-D) that is exactly
        the replica holder about to take over the dead owner's keys.
        """
        key = payload["key"]
        hops = payload.get("hops", 0)
        avoid = payload.get("avoid") or ()
        if self.space.between_right_closed(key, self.ident, self.successor.ident):
            owner = self.successor
            if owner.node_id in avoid:
                for backup in self.successor_list[1:]:
                    if backup.node_id not in avoid:
                        return LookupResult(backup, hops)
            return LookupResult(owner, hops)
        nxt = self.closest_preceding(key)
        if nxt == self.ref:
            return LookupResult(self.ref, hops)
        forward = {"key": key, "hops": hops + 1}
        if avoid:
            forward["avoid"] = list(avoid)
        try:
            result = yield self.call(nxt.node_id, "find_successor", forward)
            return result
        except RpcError:
            # The chosen hop is dead: drop it from our tables and route via
            # the successor list instead (Chord's fault-tolerant lookup).
            # With a fault injector installed the timeout is ambiguous
            # (message loss, not death): evicting a live node would shift
            # perceived key ownership and silently empty index rows, so
            # the routing tables are left alone and only this lookup
            # reroutes.
            evict = self.network is None or self.network.faults is None
            if evict:
                self._evict(nxt)
            for backup in list(self.successor_list):
                if backup == nxt:
                    continue
                try:
                    result = yield self.call(
                        backup.node_id, "find_successor", dict(forward)
                    )
                    return result
                except RpcError:
                    if evict:
                        self._evict(backup)
            raise

    def rpc_notify(self, candidate: NodeRef, src: str) -> bool:
        """Chord notify: *candidate* believes it is our predecessor."""
        if self.predecessor is None or self.space.between_open(
            candidate.ident, self.predecessor.ident, self.ident
        ):
            self.predecessor = candidate
            return True
        return False

    def rpc_export_keys(self, payload: Dict[str, int], src: str) -> Dict[int, Any]:
        """Hand over the keys in (lo, hi] to a joining predecessor
        (Sect. III-C: 'transfer of a portion of the location table')."""
        lo, hi = payload["lo"], payload["hi"]
        exported = {
            key: value
            for key, value in self.export_keys()
            if self.space.between_right_closed(key, lo, hi)
        }
        self.drop_keys(exported.keys())
        return exported

    def rpc_import_keys(self, payload: Dict[int, Any], src: str) -> int:
        self.import_keys(payload)
        return len(payload)

    # ----------------------------------------- application-state interface

    def export_keys(self):
        """Iterable of (key, value) pairs of application state; overridden
        by the overlay's index node."""
        return ()

    def import_keys(self, items: Dict[int, Any]) -> None:  # pragma: no cover
        pass

    def drop_keys(self, keys) -> None:  # pragma: no cover
        pass

    # ------------------------------------------------------- ring protocols

    def find_successor(self, key: int) -> Event:
        """Client-side lookup entry point (returns an Event of LookupResult)."""
        assert self.network is not None
        return self.network.call(self.node_id, self.node_id, "find_successor", {"key": key})

    def join(self, bootstrap: NodeRef):
        """Generator process: join the ring known to *bootstrap* and pull
        our key range from our new successor."""
        self.predecessor = None
        result: LookupResult = yield self.call(
            bootstrap.node_id, "find_successor", {"key": self.ident}
        )
        self.set_successor(result.ref)
        # Take over (successor.predecessor, self] — approximated by asking
        # for (our id's predecessor range]; the successor computes the cut.
        pred: Optional[NodeRef] = yield self.call(result.ref.node_id, "get_predecessor")
        # With no predecessor known (e.g. a single-node ring) the successor
        # keeps (self, successor] and we take the complement (successor, self].
        lo = pred.ident if pred is not None else result.ref.ident
        imported = yield self.call(
            result.ref.node_id, "export_keys", {"lo": lo, "hi": self.ident}
        )
        self.import_keys(imported)
        yield from self.stabilize()

    def stabilize(self):
        """One stabilize round: verify successor, adopt a closer one,
        notify it, and refresh the successor list."""
        try:
            candidate: Optional[NodeRef] = yield self.call(
                self.successor.node_id, "get_predecessor"
            )
        except RpcError:
            self._advance_successor()
            return
        if candidate is not None and self.space.between_open(
            candidate.ident, self.ident, self.successor.ident
        ):
            self.set_successor(candidate)
        try:
            yield self.call(self.successor.node_id, "notify", self.ref)
            succ_list: List[NodeRef] = yield self.call(
                self.successor.node_id, "get_successor_list"
            )
        except RpcError:
            self._advance_successor()
            return
        merged = [self.successor] + [r for r in succ_list if r != self.ref]
        self.successor_list = merged[: self.successor_list_size]
        self.fingers[0] = self.successor

    def fix_finger(self, index: Optional[int] = None):
        """Refresh one finger-table entry via a real lookup."""
        if index is None:
            index = self._next_finger_to_fix
            self._next_finger_to_fix = (self._next_finger_to_fix + 1) % self.space.bits
        start = self.space.finger_start(self.ident, index)
        try:
            result: LookupResult = yield self.call(
                self.node_id, "find_successor", {"key": start}
            )
            self.fingers[index] = result.ref
        except RpcError:
            self.fingers[index] = None

    def check_predecessor(self):
        """Clear a dead predecessor so notify can repair it."""
        if self.predecessor is None:
            return
        try:
            yield self.call(self.predecessor.node_id, "ping")
        except RpcError:
            self.predecessor = None

    # ------------------------------------------------------------ internals

    def _advance_successor(self) -> None:
        if len(self.successor_list) > 1:
            self.successor_list.pop(0)
        else:
            self.successor_list = [self.ref]
        self.fingers[0] = self.successor

    def _evict(self, dead: NodeRef) -> None:
        self.fingers = [None if f == dead else f for f in self.fingers]
        self.successor_list = [r for r in self.successor_list if r != dead]
        if not self.successor_list:
            self.successor_list = [self.ref]
        if self.predecessor == dead:
            self.predecessor = None
