"""Ring construction and maintenance driving.

Two construction modes:

* **static** — given the full node set, wire predecessors, successor
  lists, and finger tables exactly (what a long-stabilized ring looks
  like). Experiments that measure query processing use this so that DHT
  convergence noise never contaminates query numbers.
* **dynamic** — nodes join through the Chord protocol and the ring is
  repaired by explicitly driven stabilization rounds. The churn
  experiments (E8) use this mode.

Stabilization is round-driven rather than running as free background
processes: each call performs one deterministic sweep, which keeps every
experiment reproducible and lets tests assert convergence after a known
number of rounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..net.transport import Network
from .idspace import IdentifierSpace
from .node import ChordNode, NodeRef

__all__ = ["ChordRing"]


class ChordRing:
    """Manages a set of :class:`ChordNode` on one simulated network."""

    def __init__(self, network: Network, space: IdentifierSpace) -> None:
        self.network = network
        self.space = space
        self.nodes: Dict[str, ChordNode] = {}

    # ------------------------------------------------------------- building

    def add_node(self, node: ChordNode) -> ChordNode:
        if node.space != self.space:
            raise ValueError("node identifier space differs from ring space")
        for existing in self.nodes.values():
            if existing.ident == node.ident:
                raise ValueError(
                    f"identifier collision: {node.node_id} and {existing.node_id} "
                    f"both hash to {node.ident}"
                )
        self.network.register(node)
        self.nodes[node.node_id] = node
        return node

    def sorted_refs(self, alive_only: bool = True) -> List[NodeRef]:
        nodes = [
            n for n in self.nodes.values() if (n.alive or not alive_only)
        ]
        return sorted((n.ref for n in nodes), key=lambda r: r.ident)

    def build_static(self) -> None:
        """Wire the fully-converged ring topology directly."""
        refs = self.sorted_refs(alive_only=False)
        if not refs:
            return
        n = len(refs)
        by_ident = {ref.ident: ref for ref in refs}
        idents = [ref.ident for ref in refs]
        for i, ref in enumerate(refs):
            node = self.nodes[ref.node_id]
            node.predecessor = refs[(i - 1) % n]
            succs = [refs[(i + k) % n] for k in range(1, node.successor_list_size + 1)]
            node.successor_list = succs[: max(1, min(node.successor_list_size, n - 1) or 1)]
            if n == 1:
                node.successor_list = [ref]
            for f in range(self.space.bits):
                start = self.space.finger_start(ref.ident, f)
                node.fingers[f] = by_ident[self._successor_ident(idents, start)]

    @staticmethod
    def _successor_ident(sorted_idents: Sequence[int], key: int) -> int:
        for ident in sorted_idents:
            if ident >= key:
                return ident
        return sorted_idents[0]

    # -------------------------------------------------------------- dynamic

    def join_via(self, node: ChordNode, bootstrap: Optional[NodeRef] = None) -> None:
        """Run the join protocol for *node* (must already be added)."""
        if bootstrap is None:
            others = [r for r in self.sorted_refs() if r != node.ref]
            if not others:
                node.predecessor = None
                node.successor_list = [node.ref]
                node.fingers[0] = node.ref
                return
            bootstrap = others[0]
        self.network.sim.run_process(node.join(bootstrap))

    def stabilize_round(self) -> None:
        """One deterministic sweep: every live node stabilizes, checks its
        predecessor, and fixes every finger."""
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            if not node.alive:
                continue
            self.network.sim.run_process(node.stabilize())
            self.network.sim.run_process(node.check_predecessor())
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            if not node.alive:
                continue
            for f in range(self.space.bits):
                self.network.sim.run_process(node.fix_finger(f))

    def stabilize(self, rounds: int = 2) -> None:
        for _ in range(rounds):
            self.stabilize_round()

    # ------------------------------------------------------------- checking

    def is_consistent(self) -> bool:
        """True when successor/predecessor pointers form the sorted cycle."""
        refs = self.sorted_refs()
        if not refs:
            return True
        n = len(refs)
        for i, ref in enumerate(refs):
            node = self.nodes[ref.node_id]
            expected_succ = refs[(i + 1) % n]
            expected_pred = refs[(i - 1) % n]
            if n == 1:
                expected_succ = expected_pred = ref
            if node.successor != expected_succ:
                return False
            if node.predecessor != expected_pred:
                return False
        return True

    def owner_of(self, key: int) -> ChordNode:
        """Ground-truth successor of *key* among live nodes (no messages)."""
        refs = self.sorted_refs()
        if not refs:
            raise LookupError("empty ring")
        ident = self._successor_ident([r.ident for r in refs], self.space.normalize(key))
        ref = next(r for r in refs if r.ident == ident)
        return self.nodes[ref.node_id]
