"""Command-line interface: build a system from N-Triples files and query it.

Each ``--data`` file becomes one storage node (the provider keeps "its
own" triples, Sect. I); index nodes form the ring; the query runs through
the full distributed pipeline and the answer plus the cost report print
to stdout.

Examples::

    python -m repro --data alice.nt --data bob.nt \
        --query 'SELECT ?x ?y WHERE { ?x foaf:knows ?y . }'

    python -m repro --data ./shared/*.nt --query-file q.rq \
        --strategy freq --join-site move-small --report

    python -m repro trace 'SELECT ?x WHERE { ?x foaf:knows ?y . }' \
        --data alice.nt --data bob.nt --jsonl trace.jsonl

The ``trace`` subcommand executes the query with the tracer enabled and
prints the Fig. 3-style message sequence diagram, the per-phase cost
table, and (optionally) a JSONL event dump.

The ``explain`` subcommand executes the query and prints its annotated
physical operator plan — per-operator placement, estimated vs actual
rows, estimated vs actual bytes. With ``--plan cost`` the estimates come
from the frequency-driven planner's statistics prefetch::

    python -m repro explain 'SELECT ?x WHERE { ?x foaf:knows ?y . }' \
        --data alice.nt --data bob.nt --plan cost

The ``bench-load`` subcommand drives a multi-query workload (closed-loop
fixed concurrency or open-loop Poisson arrivals) through one simulation
and prints throughput, latency percentiles, and admission statistics::

    python -m repro bench-load --data ./shared/*.nt \
        --mode closed --concurrency 16 --num-queries 64 --contention

The ``chaos`` subcommand runs that workload under a seeded message-level
fault plan (loss, duplication, delay spikes, directional partitions,
node brownouts) with the gray-failure defenses switchable from the
command line, and prints completion, latency, fault, and breaker
counters — the same plans replay bit-identically for a fixed seed::

    python -m repro chaos --data ./shared/*.nt --chaos-seed 7 \
        --loss 0.05 --brownouts 1 --breaker --partial-results

The ``profile`` subcommand runs the same workload under :mod:`cProfile`
and prints the hottest functions by cumulative time — where the engine
spends *real* time, for performance work on the engine itself::

    python -m repro profile --data ./shared/*.nt \
        --concurrency 16 --num-queries 64 --top 25

With ``--state-dir`` every node write-ahead logs its state under the
given directory; the ``checkpoint`` subcommand snapshots and compacts
that state, and ``recover`` rebuilds the whole system from it::

    python -m repro --data alice.nt --query '...' --state-dir ./state
    python -m repro checkpoint --state-dir ./state
    python -m repro recover --state-dir ./state --query '...'
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from .overlay.system import HybridSystem
from .query.executor import DistributedExecutor
from .query.strategies import (
    ConjunctionMode,
    ExecutionOptions,
    JoinSitePolicy,
    PrimitiveStrategy,
)
from .rdf.ntriples import parse_ntriples

__all__ = [
    "main",
    "build_parser",
    "build_trace_parser",
    "build_explain_parser",
    "build_bench_load_parser",
    "build_chaos_parser",
    "build_profile_parser",
    "build_checkpoint_parser",
    "build_recover_parser",
]


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by the default query mode and ``trace``."""
    parser.add_argument(
        "--data", action="append", default=[], metavar="FILE.nt",
        help="N-Triples file; each file becomes one storage node "
             "(repeatable)",
    )
    parser.add_argument(
        "--index-nodes", type=int, default=8,
        help="number of ring index nodes (default 8)",
    )
    parser.add_argument(
        "--strategy", choices=[s.value for s in PrimitiveStrategy],
        default=PrimitiveStrategy.FREQ.value,
        help="primitive-query strategy (Sect. IV-C; default freq)",
    )
    parser.add_argument(
        "--conjunction", choices=[m.value for m in ConjunctionMode],
        default=ConjunctionMode.OPTIMIZED.value,
        help="conjunction processing mode (Sect. IV-D)",
    )
    parser.add_argument(
        "--join-site", choices=[p.value for p in JoinSitePolicy],
        default=JoinSitePolicy.MOVE_SMALL.value,
        help="join-site selection policy (Sect. II)",
    )
    parser.add_argument(
        "--time-weight", type=float, default=0.5,
        help="adaptive objective mixture: 0=min bytes, 1=min time",
    )
    parser.add_argument(
        "--plan", choices=["legacy", "cost"], default="legacy",
        help="physical-plan mode: legacy follows the per-step strategy "
             "flags exactly; cost lets the frequency-driven planner pin "
             "join order, walk mode, chain strategies, and combine sites "
             "at plan time",
    )
    parser.add_argument(
        "--initiator", default=None,
        help="node issuing the query (default: first storage node)",
    )
    parser.add_argument(
        "--no-optimize", action="store_true",
        help="disable algebraic optimization (filter pushing)",
    )
    parser.add_argument(
        "--semijoin", action="store_true",
        help="semijoin/Bloom pre-filtering: ship join-key digests so "
             "non-joining rows never travel",
    )
    parser.add_argument(
        "--projection-pushdown", action="store_true",
        help="prune dead variables from intermediate results before "
             "every ship (sound for DISTINCT/ASK/CONSTRUCT queries)",
    )
    parser.add_argument(
        "--dict-encoding", action="store_true",
        help="dictionary-delta wire encoding for shipped solution sets",
    )
    parser.add_argument(
        "--lookup-cache", type=int, default=128, metavar="N",
        help="per-query LRU capacity for index lookups (0 disables; "
             "default 128)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1, metavar="R",
        help="location-table replication factor (Sect. III-D; default 1; "
             "failover needs R >= 2)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry budget per RPC: N extra attempts after a timeout "
             "(default 0 = fail fast)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.05, metavar="SECS",
        help="base exponential backoff between retry attempts, with "
             "seeded jitter (default 0.05)",
    )
    parser.add_argument(
        "--failover", action="store_true",
        help="re-route timed-out lookups and primitive dispatches to "
             "replica holders via the successor list (needs --replicas>=2)",
    )
    parser.add_argument(
        "--hedge", type=float, default=None, metavar="SECS", nargs="?",
        const=0.0,
        help="hedged index reads: duplicate a slow lookup to a replica "
             "after SECS (bare --hedge = auto, the p95 of observed "
             "lookup RTTs)",
    )
    parser.add_argument(
        "--query-deadline", type=float, default=None, metavar="SECS",
        help="end-to-end deadline per query, propagated with every "
             "downstream call (default: none)",
    )
    parser.add_argument(
        "--breaker", action="store_true",
        help="per-peer health ledger + circuit breakers: open circuits "
             "fail calls instantly and failover routes around them "
             "before dialing (default off)",
    )
    parser.add_argument(
        "--breaker-latency", type=float, default=None, metavar="SECS",
        help="EWMA RTT above which a responding peer is treated as "
             "browned out and its breaker tripped (gray-failure "
             "detection; default: timeouts only)",
    )
    parser.add_argument(
        "--partial-results", action="store_true",
        help="degrade instead of fail: when every replica of a "
             "sub-pattern is unreachable, return a flagged subset of the "
             "answer rather than raising (default off)",
    )
    parser.add_argument(
        "--result-cache", action="store_true",
        help="cross-query per-site result cache: index nodes memoize "
             "primitive results and combine sites memoize BGP "
             "sub-results, invalidated delta-exactly by the data-epoch "
             "ledger (default off)",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=262144, metavar="N",
        help="per-node byte budget for cached solution data "
             "(default 262144)",
    )
    parser.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durable state directory: every node write-ahead logs its "
             "state under it (see 'repro checkpoint' / 'repro recover')",
    )
    parser.add_argument(
        "--fsync", action="store_true",
        help="fsync every WAL append and snapshot (durable against OS "
             "crashes, not just process crashes)",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        help="auto-checkpoint a node's state after N WAL records",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed SPARQL over an ad-hoc semantic web data "
                    "sharing system (IPPS 2013 reproduction).",
    )
    _add_common_options(parser)
    query_group = parser.add_mutually_exclusive_group(required=True)
    query_group.add_argument("--query", help="SPARQL query text")
    query_group.add_argument(
        "--query-file", metavar="FILE.rq", help="file containing the query"
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the transmission/time report after the results",
    )
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Execute one query with tracing enabled and render "
                    "its message flow (Fig. 3) and per-phase costs.",
    )
    parser.add_argument(
        "query", nargs="?", default=None,
        help="SPARQL query text (or use --query-file)",
    )
    parser.add_argument(
        "--query-file", metavar="FILE.rq", help="file containing the query"
    )
    _add_common_options(parser)
    parser.add_argument(
        "--jsonl", metavar="FILE.jsonl", default=None,
        help="also write the structured event trace to this JSONL file",
    )
    parser.add_argument(
        "--max-events", type=int, default=None, metavar="N",
        help="cap the sequence diagram at the first N messages",
    )
    parser.add_argument(
        "--no-diagram", action="store_true",
        help="skip the sequence diagram (phase table and spans only)",
    )
    return parser


def build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="Execute one query and print its annotated physical "
                    "operator plan: per-operator placement, estimated vs "
                    "actual rows, and estimated vs actual wire bytes.",
    )
    parser.add_argument(
        "query", nargs="?", default=None,
        help="SPARQL query text (or use --query-file)",
    )
    parser.add_argument(
        "--query-file", metavar="FILE.rq", help="file containing the query"
    )
    _add_common_options(parser)
    return parser


def _explain_main(argv: Sequence[str]) -> int:
    from .query.physical import format_plan

    args = build_explain_parser().parse_args(argv)
    if args.query is not None and args.query_file is not None:
        raise SystemExit("error: give either a positional query or "
                         "--query-file, not both")
    system = _load_system(args)
    executor = DistributedExecutor(system, _build_options(args))
    _, report = executor.execute(_query_text(args), initiator=args.initiator)
    print(format_plan(report.plan))
    print(
        f"# totals: {report.result_count} results, {report.messages} "
        f"messages, {report.bytes_total} bytes, "
        f"{report.response_time * 1000:.1f} ms simulated "
        f"(plan={args.plan})"
    )
    return 0


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    """Workload-shape options shared by ``bench-load`` and ``profile``."""
    parser.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="closed = fixed concurrency, open = Poisson arrivals "
             "(default closed)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=4,
        help="closed-loop clients (default 4)",
    )
    parser.add_argument(
        "--rate", type=float, default=50.0,
        help="open-loop arrival rate, queries per simulated second "
             "(default 50)",
    )
    parser.add_argument(
        "--num-queries", type=int, default=32,
        help="total jobs to submit (default 32)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload schedule seed (default 0)",
    )
    parser.add_argument(
        "--max-in-flight", type=int, default=None, metavar="N",
        help="admission control: max concurrently executing queries",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="bounded admission queue beyond --max-in-flight; "
             "overflow is shed",
    )
    parser.add_argument(
        "--no-contention", action="store_true",
        help="disable the shared-resource contention model (bandwidth "
             "and compute queue freely)",
    )
    parser.add_argument(
        "--query", action="append", default=[], metavar="SPARQL",
        help="replace the default Fig. 4-9 mix with these queries "
             "(repeatable)",
    )


def build_bench_load_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench-load",
        description="Drive a multi-query workload through one simulation "
                    "and report throughput, tail latency, and admission "
                    "statistics.",
    )
    _add_common_options(parser)
    _add_workload_options(parser)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full workload report (summary plus per-job "
             "timeline) to this JSON file",
    )
    return parser


def build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Drive a bench-load workload under a seeded "
                    "message-level fault plan (loss, duplication, delay "
                    "spikes, partitions, node brownouts) and report "
                    "completion rate, tail latency, and the faults "
                    "actually injected.",
    )
    _add_common_options(parser)
    _add_workload_options(parser)
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="fault-plan seed (independent of the workload seed; "
             "default 0)",
    )
    parser.add_argument(
        "--loss", type=float, default=0.0, metavar="P",
        help="per-message drop probability on every link (default 0)",
    )
    parser.add_argument(
        "--duplicate", type=float, default=0.0, metavar="P",
        help="per-message duplication probability (default 0)",
    )
    parser.add_argument(
        "--delay", type=float, default=0.0, metavar="P",
        help="per-message delay-spike probability (default 0)",
    )
    parser.add_argument(
        "--delay-spike", type=float, default=0.05, metavar="SECS",
        help="delay-spike magnitude before jitter (default 0.05)",
    )
    parser.add_argument(
        "--partitions", type=int, default=0, metavar="N",
        help="asymmetric one-way link partitions between random node "
             "pairs (default 0)",
    )
    parser.add_argument(
        "--brownouts", type=int, default=0, metavar="N",
        help="random nodes browned out (compute and egress scaled) "
             "for the fault window (default 0)",
    )
    parser.add_argument(
        "--brownout-factor", type=float, default=8.0, metavar="X",
        help="service-time multiplier for browned-out nodes (default 8)",
    )
    parser.add_argument(
        "--fault-start", type=float, default=0.0, metavar="SECS",
        help="simulated time the fault window opens (default 0)",
    )
    parser.add_argument(
        "--fault-window", type=float, default=60.0, metavar="SECS",
        help="length of the fault window (default 60)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full workload report to this JSON file",
    )
    return parser


def _chaos_main(argv: Sequence[str]) -> int:
    from dataclasses import replace

    from .net.faults import chaos_plan
    from .workloads.load import run_workload

    args = build_chaos_parser().parse_args(argv)
    system, config = _workload_setup(args)
    plan = chaos_plan(
        sorted(system.network.nodes),
        seed=args.chaos_seed,
        start=args.fault_start,
        window=args.fault_window,
        loss=args.loss,
        duplicate=args.duplicate,
        delay=args.delay,
        delay_spike=args.delay_spike,
        partitions=args.partitions,
        brownouts=args.brownouts,
        brownout_factor=args.brownout_factor,
    )
    config = replace(config, faults=plan)
    report = run_workload(system, config, _build_options(args))

    injected = ", ".join(
        f"{kind}={n}" for kind, n in sorted(report.faults_injected.items())
    ) or "none"
    print(
        f"# chaos seed={args.chaos_seed} rules={len(plan.rules)} "
        f"injected: {injected}"
    )
    print(
        f"# completed={report.completed} failed={report.failed} "
        f"incomplete={report.incomplete} shed={report.shed}"
    )
    if report.latency is not None:
        lat = report.latency
        print(
            f"# latency ms: p50={lat.p50 * 1000:.2f} "
            f"p95={lat.p95 * 1000:.2f} p99={lat.p99 * 1000:.2f}"
        )
    defense = {
        k: v for k, v in sorted(report.failover.items())
        if v and k != "lookup_rtts"
    }
    if defense:
        print("# defense: " + ", ".join(f"{k}={v}" for k, v in defense.items()))
    failures = [j for j in report.jobs if j.error is not None and not j.shed]
    for job in failures[:5]:
        print(f"# failed job {job.job_id} ({job.label}): {job.error}")
    if args.json:
        import json

        path = pathlib.Path(args.json)
        payload = report.as_dict(include_jobs=True)
        payload["fault_plan"] = plan.as_dict()
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"# wrote workload report to {path}")
    return 0


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run a bench-load workload under cProfile and print "
                    "the hottest functions — where the engine spends real "
                    "(wall-clock) time, as opposed to simulated time.",
    )
    _add_common_options(parser)
    _add_workload_options(parser)
    parser.add_argument(
        "--top", type=int, default=25, metavar="N",
        help="print the top N functions (default 25)",
    )
    parser.add_argument(
        "--sort", default="cumulative",
        choices=["cumulative", "tottime", "calls"],
        help="pstats sort order (default cumulative)",
    )
    parser.add_argument(
        "--stats-out", metavar="PATH", default=None,
        help="also dump the raw pstats data to this file (inspect later "
             "with pstats or snakeviz)",
    )
    return parser


def build_checkpoint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro checkpoint",
        description="Recover the system persisted under a state directory, "
                    "snapshot every node's state, and compact the logs.",
    )
    parser.add_argument(
        "--state-dir", metavar="DIR", required=True,
        help="the system's durable state directory",
    )
    return parser


def build_recover_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro recover",
        description="Rebuild the system persisted under a state directory "
                    "(snapshot + WAL replay per node) and report how each "
                    "node came back.",
    )
    parser.add_argument(
        "--state-dir", metavar="DIR", required=True,
        help="the system's durable state directory",
    )
    parser.add_argument(
        "--query", metavar="SPARQL", default=None,
        help="also run this query on the recovered system and print the "
             "result count (a liveness check)",
    )
    return parser


def _workload_setup(args: argparse.Namespace):
    """System + LoadConfig from parsed workload options (bench-load and
    profile share this)."""
    from .net.contention import ContentionModel
    from .workloads.load import LoadConfig

    system = _load_system(args)
    if not args.no_contention:
        system.network.contention = ContentionModel()

    kwargs = {}
    if args.query:
        kwargs["queries"] = [(f"q{i}", q) for i, q in enumerate(args.query)]
    if args.initiator:
        kwargs["initiators"] = [args.initiator]
    config = LoadConfig(
        mode=args.mode,
        concurrency=args.concurrency,
        arrival_rate=args.rate,
        num_queries=args.num_queries,
        seed=args.seed,
        max_in_flight=args.max_in_flight,
        queue_limit=args.queue_limit,
        **kwargs,
    )
    return system, config


def _bench_load_main(argv: Sequence[str]) -> int:
    from .workloads.load import run_workload

    args = build_bench_load_parser().parse_args(argv)
    system, config = _workload_setup(args)
    report = run_workload(system, config, _build_options(args))

    mix = ", ".join(f"{label}x{n}" for label, n in sorted(report.per_label().items()))
    print(f"# mode={config.mode} jobs={len(report.jobs)} mix: {mix}")
    print(
        f"# completed={report.completed} failed={report.failed} "
        f"shed={report.shed} deferred={report.deferred} "
        f"peak_in_flight={report.peak_in_flight} "
        f"max_queue={report.max_admission_queue}"
    )
    print(
        f"# duration={report.duration * 1000:.1f} ms simulated, "
        f"throughput={report.throughput:.1f} q/s, "
        f"{report.messages} messages, {report.bytes_total} bytes"
    )
    print(
        f"# wall clock: {report.wall_clock_s * 1000:.1f} ms real, "
        f"{report.queries_per_wall_second:.1f} q/s real"
    )
    if report.latency is not None:
        lat = report.latency
        print(
            f"# latency ms: mean={lat.mean * 1000:.2f} "
            f"p50={lat.p50 * 1000:.2f} p95={lat.p95 * 1000:.2f} "
            f"p99={lat.p99 * 1000:.2f} max={lat.maximum * 1000:.2f}"
        )
    if report.contention:
        print(
            f"# contention: max_queue_depth="
            f"{report.contention['max_queue_depth']} "
            f"total_wait={report.contention['total_wait'] * 1000:.2f} ms"
        )
        hot = sorted(
            report.contention["queues"].items(),
            key=lambda kv: kv[1]["total_wait"],
            reverse=True,
        )[:5]
        for name, stats in hot:
            print(
                f"#   {name}: depth<={stats['max_depth']} "
                f"waits={stats['waits']} "
                f"wait={stats['total_wait'] * 1000:.2f} ms"
            )
    failures = [j for j in report.jobs if j.error is not None and not j.shed]
    for job in failures[:5]:
        print(f"# failed job {job.job_id} ({job.label}): {job.error}")
    if args.json:
        import json

        path = pathlib.Path(args.json)
        path.write_text(
            json.dumps(report.as_dict(include_jobs=True), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"# wrote workload report to {path}")
    return 0


def _profile_main(argv: Sequence[str]) -> int:
    import cProfile
    import pstats

    from .workloads.load import run_workload

    args = build_profile_parser().parse_args(argv)
    system, config = _workload_setup(args)
    options = _build_options(args)

    profiler = cProfile.Profile()
    profiler.enable()
    report = run_workload(system, config, options)
    profiler.disable()

    print(
        f"# completed={report.completed} failed={report.failed} "
        f"shed={report.shed}"
    )
    print(
        f"# wall clock: {report.wall_clock_s * 1000:.1f} ms real, "
        f"{report.queries_per_wall_second:.1f} q/s real "
        f"({report.duration * 1000:.1f} ms simulated)"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.stats_out:
        stats.dump_stats(args.stats_out)
        print(f"# wrote raw pstats data to {args.stats_out}")
    return 0


def _checkpoint_main(argv: Sequence[str]) -> int:
    from .storage import recover_system

    args = build_checkpoint_parser().parse_args(argv)
    system, report = recover_system(args.state_dir)
    done = system.checkpoint()
    print(
        f"# recovered {len(report['index'])} index nodes and "
        f"{len(report['storage'])} storage nodes from {args.state_dir}"
    )
    for node_id in sorted(done):
        print(f"# snapshot {node_id} @ lsn {done[node_id]}")
    return 0


def _recover_main(argv: Sequence[str]) -> int:
    from .storage import recover_system

    args = build_recover_parser().parse_args(argv)
    system, report = recover_system(args.state_dir)
    print(
        f"# recovered {len(report['index'])} index nodes and "
        f"{len(report['storage'])} storage nodes from {args.state_dir}"
    )
    print("# node | snapshot lsn | records replayed | torn truncated")
    for section in ("index", "storage"):
        for node_id in sorted(report[section]):
            info = report[section][node_id]
            print(
                f"# {node_id} | {info['snapshot_lsn']} | "
                f"{info['records_replayed']} | {info['torn_truncated']}"
            )
    if args.query is not None:
        result, exec_report = system.execute(args.query)
        print(
            f"# query ok: {exec_report.result_count} results, "
            f"{exec_report.messages} messages"
        )
    return 0


def _load_system(args: argparse.Namespace) -> HybridSystem:
    if not args.data:
        raise SystemExit("error: at least one --data file is required")
    system = HybridSystem(
        replication_factor=getattr(args, "replicas", 1),
        state_dir=getattr(args, "state_dir", None),
        fsync=getattr(args, "fsync", False),
        snapshot_every=getattr(args, "snapshot_every", None),
    )
    for i in range(args.index_nodes):
        system.add_index_node(f"N{i}")
    system.build_ring()
    for path_text in args.data:
        path = pathlib.Path(path_text)
        if not path.exists():
            raise SystemExit(f"error: no such data file: {path}")
        triples = list(parse_ntriples(path.read_text(encoding="utf-8")))
        system.add_storage_node(path.stem, triples)
    return system


def _query_text(args: argparse.Namespace) -> str:
    if args.query is not None:
        return args.query
    if args.query_file is None:
        raise SystemExit("error: a query (positional) or --query-file is required")
    path = pathlib.Path(args.query_file)
    if not path.exists():
        raise SystemExit(f"error: no such query file: {path}")
    return path.read_text(encoding="utf-8")


def _build_options(args: argparse.Namespace) -> ExecutionOptions:
    return ExecutionOptions(
        primitive_strategy=PrimitiveStrategy(args.strategy),
        conjunction_mode=ConjunctionMode(args.conjunction),
        join_site_policy=JoinSitePolicy(args.join_site),
        time_weight=args.time_weight,
        plan_mode=args.plan,
        optimize=not args.no_optimize,
        semijoin=args.semijoin,
        projection_pushdown=args.projection_pushdown,
        dictionary_encoding=args.dict_encoding,
        lookup_cache_size=args.lookup_cache,
        retries=args.retries,
        backoff=args.backoff,
        failover=args.failover,
        hedge_delay=args.hedge,
        query_deadline=args.query_deadline,
        breaker=args.breaker,
        breaker_latency=args.breaker_latency,
        partial_results=args.partial_results,
        result_cache=args.result_cache,
        cache_bytes=args.cache_bytes,
    )


def _trace_main(argv: Sequence[str]) -> int:
    from .trace import Tracer, render_phases, render_sequence, write_jsonl

    args = build_trace_parser().parse_args(argv)
    if args.query is not None and args.query_file is not None:
        raise SystemExit("error: give either a positional query or "
                         "--query-file, not both")
    system = _load_system(args)
    tracer = Tracer()
    executor = DistributedExecutor(system, _build_options(args), tracer=tracer)
    _, report = executor.execute(_query_text(args), initiator=args.initiator)

    if not args.no_diagram:
        sys.stdout.write(render_sequence(tracer, max_events=args.max_events))
        print()
    print(render_phases(report.phases))
    print(
        f"# {report.result_count} results, {report.messages} messages, "
        f"{report.bytes_total} bytes, "
        f"{report.response_time * 1000:.1f} ms simulated"
    )
    if args.jsonl:
        path = write_jsonl(tracer, args.jsonl)
        print(f"# wrote {len(tracer.events)} events to {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "explain":
        return _explain_main(argv[1:])
    if argv and argv[0] == "bench-load":
        return _bench_load_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] == "checkpoint":
        return _checkpoint_main(argv[1:])
    if argv and argv[0] == "recover":
        return _recover_main(argv[1:])
    args = build_parser().parse_args(argv)
    system = _load_system(args)
    executor = DistributedExecutor(system, _build_options(args))
    result, report = executor.execute(_query_text(args), initiator=args.initiator)

    if result.boolean is not None:
        print("yes" if result.boolean else "no")
    elif result.graph is not None:
        from .rdf.ntriples import serialize_ntriples

        sys.stdout.write(serialize_ntriples(sorted(result.graph, key=lambda t: t.n3())))
    else:
        header = "\t".join(f"?{v.name}" for v in result.variables)
        print(header)
        for mu in result.rows:
            print("\t".join(
                (mu.get(v).n3() if mu.get(v) is not None else "")
                for v in result.variables
            ))

    if args.report:
        print(
            f"# {report.result_count} results, {report.messages} messages, "
            f"{report.bytes_total} bytes, "
            f"{report.response_time * 1000:.1f} ms simulated",
            file=sys.stderr,
        )
        for note in report.notes:
            print(f"# note: {note}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
