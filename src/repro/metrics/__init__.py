"""Measurement utilities (S12): series summaries and table rendering."""

from .counters import DurabilityCounters, Summary, summarize
from .tables import render_table

__all__ = ["DurabilityCounters", "Summary", "summarize", "render_table"]
