"""Measurement utilities (S12): series summaries and table rendering."""

from .counters import Summary, summarize
from .tables import render_table

__all__ = ["Summary", "summarize", "render_table"]
