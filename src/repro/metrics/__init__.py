"""Measurement utilities (S12): series summaries and table rendering."""

from .counters import (
    CacheCounters,
    DurabilityCounters,
    FailoverCounters,
    Summary,
    summarize,
)
from .tables import render_table

__all__ = [
    "CacheCounters",
    "DurabilityCounters",
    "FailoverCounters",
    "Summary",
    "summarize",
    "render_table",
]
