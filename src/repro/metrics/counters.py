"""Aggregation helpers for experiment measurements."""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import mean, median
from typing import Iterable, List, Sequence

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a measurement series."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    p95: float

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"n={self.count} mean={self.mean:.3f} median={self.median:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f} p95={self.p95:.3f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty series")
    return Summary(
        count=len(data),
        mean=mean(data),
        median=median(data),
        minimum=data[0],
        maximum=data[-1],
        p95=data[min(len(data) - 1, math.ceil(0.95 * len(data)) - 1)],
    )
