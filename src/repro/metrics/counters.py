"""Aggregation helpers for experiment measurements."""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import mean, median
from typing import Iterable, List, Sequence

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a measurement series."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    p95: float
    #: Order-statistic percentiles (nearest-rank). ``p50`` is the lower
    #: middle order statistic, which differs from ``median`` (mean of the
    #: two middle values) on even-length series.
    p50: float = 0.0
    p99: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"n={self.count} mean={self.mean:.3f} median={self.median:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f} "
            f"p50={self.p50:.3f} p95={self.p95:.3f} p99={self.p99:.3f}"
        )


def _nearest_rank(data: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted series."""
    return data[min(len(data) - 1, math.ceil(q * len(data)) - 1)]


def summarize(values: Iterable[float]) -> Summary:
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty series")
    return Summary(
        count=len(data),
        mean=mean(data),
        median=median(data),
        minimum=data[0],
        maximum=data[-1],
        p95=_nearest_rank(data, 0.95),
        p50=_nearest_rank(data, 0.50),
        p99=_nearest_rank(data, 0.99),
    )
