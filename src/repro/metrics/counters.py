"""Aggregation helpers for experiment measurements."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import mean, median
from typing import Dict, Iterable, List, Sequence

__all__ = ["Summary", "summarize", "DurabilityCounters", "FailoverCounters",
           "CacheCounters"]


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a measurement series."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    p95: float
    #: Order-statistic percentiles (nearest-rank). ``p50`` is the lower
    #: middle order statistic, which differs from ``median`` (mean of the
    #: two middle values) on even-length series.
    p50: float = 0.0
    p99: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"n={self.count} mean={self.mean:.3f} median={self.median:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f} "
            f"p50={self.p50:.3f} p95={self.p95:.3f} p99={self.p99:.3f}"
        )


def _nearest_rank(data: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted series."""
    return data[min(len(data) - 1, math.ceil(q * len(data)) - 1)]


@dataclass
class DurabilityCounters:
    """Ledger of the durability subsystem's work (one per system).

    Shared by every WAL, snapshot store, and durable wrapper of a
    :class:`~repro.overlay.system.HybridSystem`, so experiments can
    measure recovery cost (records replayed, torn tails repaired) and
    steady-state overhead (records appended, fsyncs, snapshot bytes)
    with the same checkpoint/delta discipline as the network stats.
    """

    wal_records_appended: int = 0
    wal_records_replayed: int = 0
    wal_torn_records_truncated: int = 0
    wal_fsyncs: int = 0
    snapshots_written: int = 0
    snapshots_loaded: int = 0
    snapshot_bytes_written: int = 0
    #: Completed node recoveries (restart_index_node / restart_storage_node
    #: / recover_system, one per node brought back).
    recoveries: int = 0
    #: Location-table cells dropped at restart because their storage node
    #: was gone (stale-entry detection via membership epoch, Sect. III-D).
    stale_entries_dropped: int = 0
    #: Replica rows merged back into a restarted index node's table.
    replica_rows_reconciled: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "wal_records_appended": self.wal_records_appended,
            "wal_records_replayed": self.wal_records_replayed,
            "wal_torn_records_truncated": self.wal_torn_records_truncated,
            "wal_fsyncs": self.wal_fsyncs,
            "snapshots_written": self.snapshots_written,
            "snapshots_loaded": self.snapshots_loaded,
            "snapshot_bytes_written": self.snapshot_bytes_written,
            "recoveries": self.recoveries,
            "stale_entries_dropped": self.stale_entries_dropped,
            "replica_rows_reconciled": self.replica_rows_reconciled,
        }

    def checkpoint(self) -> "DurabilityCounters":
        """A frozen copy, for before/after deltas."""
        return DurabilityCounters(**self.as_dict())

    def delta(self, since: "DurabilityCounters") -> Dict[str, int]:
        mine, theirs = self.as_dict(), since.as_dict()
        return {key: mine[key] - theirs[key] for key in mine}


@dataclass
class FailoverCounters:
    """Ledger of the fault-tolerance layer's work (one per network).

    Shared by the transport's retry loop and the executor's failover
    paths, with the same checkpoint/delta discipline as
    :class:`DurabilityCounters`, so experiments can attribute exactly how
    much repair work a churn episode caused.
    """

    #: RPC attempts re-issued after a timeout (transport retry budget).
    retries: int = 0
    #: Retried calls that ultimately succeeded within their budget.
    retries_recovered: int = 0
    #: Calls abandoned because the query deadline left no room to retry.
    deadline_exhausted: int = 0
    #: Index lookups re-resolved around a dead owner via its successors.
    lookup_failovers: int = 0
    #: ``execute_primitive`` steps re-dispatched to a replica holder.
    dispatch_failovers: int = 0
    #: Ring re-entries after the initiator's entry index node died.
    entry_failovers: int = 0
    #: Hedged duplicate lookups launched after the latency threshold.
    hedges_launched: int = 0
    #: Hedged lookups where the duplicate answered first.
    hedges_won: int = 0
    #: Promoted replica rows re-replicated to the new owner's successors.
    promotions_rereplicated: int = 0
    #: Stale third-party replica rows swept on graceful departure.
    replica_rows_swept: int = 0
    #: Circuit breakers tripped closed -> open (consecutive timeouts or
    #: an EWMA latency above the gray-failure threshold).
    breaker_trips: int = 0
    #: Open breakers that let a single half-open probe through.
    breaker_half_opens: int = 0
    #: Call attempts rejected instantly by an open breaker (each one a
    #: full RPC timeout the query did not have to wait out).
    breaker_short_circuits: int = 0
    #: RPC outcomes fed to the health ledger (successes + timeouts).
    health_observations: int = 0
    #: Duplicate ``execute_primitive``/``cache_admit`` deliveries
    #: absorbed by receiver-side idempotent dedup instead of
    #: re-executing.
    duplicates_dropped: int = 0
    #: Sub-patterns whose contribution was dropped (owner and replicas
    #: all unreachable) under ``partial_results``.
    partial_patterns_dropped: int = 0
    #: Queries that returned a flagged-incomplete answer instead of
    #: failing outright.
    partial_results: int = 0
    #: Observed ``index_lookup`` round-trip times (only collected while
    #: hedging is enabled; feeds the auto hedge-delay percentile).
    lookup_rtts: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "retries_recovered": self.retries_recovered,
            "deadline_exhausted": self.deadline_exhausted,
            "lookup_failovers": self.lookup_failovers,
            "dispatch_failovers": self.dispatch_failovers,
            "entry_failovers": self.entry_failovers,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "promotions_rereplicated": self.promotions_rereplicated,
            "replica_rows_swept": self.replica_rows_swept,
            "breaker_trips": self.breaker_trips,
            "breaker_half_opens": self.breaker_half_opens,
            "breaker_short_circuits": self.breaker_short_circuits,
            "health_observations": self.health_observations,
            "duplicates_dropped": self.duplicates_dropped,
            "partial_patterns_dropped": self.partial_patterns_dropped,
            "partial_results": self.partial_results,
        }

    def checkpoint(self) -> "FailoverCounters":
        """A frozen copy, for before/after deltas."""
        return FailoverCounters(**self.as_dict())

    def delta(self, since: "FailoverCounters") -> Dict[str, int]:
        mine, theirs = self.as_dict(), since.as_dict()
        return {key: mine[key] - theirs[key] for key in mine}


@dataclass
class CacheCounters:
    """Ledger of the cross-query result cache's work (one per network).

    All per-node caches increment the shared instance, so experiments
    see the system-wide hit ratio with the same checkpoint/delta
    discipline as :class:`FailoverCounters`.
    """

    #: Cache consultations (primitive executions + BGP probes).
    probes: int = 0
    #: Probes answered from a current cached entry.
    hits: int = 0
    #: Probes that found no entry for the key.
    misses: int = 0
    #: Probes that found an entry whose epoch stamps had gone stale
    #: (counted *in addition to* the miss they become).
    stale_drops: int = 0
    #: Entries admitted after clearing the frequency gate.
    admissions: int = 0
    #: Fills skipped because the key had not yet cleared the gate.
    admission_deferred: int = 0
    #: Entries evicted to stay under the byte budget.
    evictions: int = 0
    #: Bytes currently resident across all caches.
    bytes_cached: int = 0
    #: Bytes freed by evictions (stale drops included).
    bytes_evicted: int = 0

    def hit_ratio(self) -> float:
        """Hits over probes (0.0 before any probe)."""
        return self.hits / self.probes if self.probes else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "probes": self.probes,
            "hits": self.hits,
            "misses": self.misses,
            "stale_drops": self.stale_drops,
            "admissions": self.admissions,
            "admission_deferred": self.admission_deferred,
            "evictions": self.evictions,
            "bytes_cached": self.bytes_cached,
            "bytes_evicted": self.bytes_evicted,
        }

    def checkpoint(self) -> "CacheCounters":
        """A frozen copy, for before/after deltas."""
        return CacheCounters(**self.as_dict())

    def delta(self, since: "CacheCounters") -> Dict[str, int]:
        mine, theirs = self.as_dict(), since.as_dict()
        return {key: mine[key] - theirs[key] for key in mine}


def summarize(values: Iterable[float]) -> Summary:
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty series")
    return Summary(
        count=len(data),
        mean=mean(data),
        median=median(data),
        minimum=data[0],
        maximum=data[-1],
        p95=_nearest_rank(data, 0.95),
        p50=_nearest_rank(data, 0.50),
        p99=_nearest_rank(data, 0.99),
    )
