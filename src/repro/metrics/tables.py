"""Plain-text table rendering for the benchmark harness.

Every experiment in ``benchmarks/`` prints its rows through this module
so EXPERIMENTS.md and the bench output share one format.
"""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["render_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    cells: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
