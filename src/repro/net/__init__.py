"""Simulated network substrate (S7): DES kernel, transport, sizes, stats.

The multi-process (real OS processes) transport lives in
:mod:`repro.net.mp` and is imported explicitly by the examples that use
it, to keep simulation imports light.
"""

from .contention import ContentionModel, ResourceQueue
from .faults import FaultInjector, FaultPlan, FaultRule, chaos_plan
from .health import HealthLedger, PeerHealth
from .sim import AllOf, AnyOf, Event, Process, SimError, Simulator, Timeout
from .sizes import HEADER_BYTES, size_of
from .stats import MessageRecord, NetworkStats
from .transport import (
    LinkModel,
    Network,
    Node,
    NodeUnknown,
    RemoteError,
    RetryPolicy,
    RpcError,
    RpcTimeout,
)

__all__ = [
    "ContentionModel",
    "ResourceQueue",
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimError",
    "size_of",
    "HEADER_BYTES",
    "NetworkStats",
    "MessageRecord",
    "LinkModel",
    "Network",
    "Node",
    "RetryPolicy",
    "RpcError",
    "RpcTimeout",
    "RemoteError",
    "NodeUnknown",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "chaos_plan",
    "HealthLedger",
    "PeerHealth",
]
