"""Shared-resource contention for the simulated network.

The base :class:`~repro.net.transport.LinkModel` prices every message as
``latency + bytes/bandwidth`` with infinite parallelism: a thousand
concurrent transfers through one site cost the same as one. That is the
right model for the paper's single-query experiments, but it cannot show
interference between concurrent queries.

This module adds a *capacity* model on top, kept strictly additive so the
uncontended path stays byte-identical:

* every node has an **egress** and an **ingress** resource whose service
  time per message is the message's transfer time (``bytes/bandwidth``) —
  the node's access link, shared by all in-flight transfers through it;
* every node has a **compute** resource whose service time is the node's
  ``compute_delay`` — the per-request local-processing queue.

Transfers are grouped into **flows** (one flow per query).  Work of the
same flow runs in parallel, exactly as before — a query never contends
with itself, so a single running query observes zero waiting everywhere
and reports the same response time, message count, and byte totals as a
simulation without any contention model.  Work of *different* flows
serializes FIFO through each resource: a message admitted while another
flow occupies the resource waits until the earlier occupancy drains.

The accounting is analytic (busy-until bookkeeping at admission time)
rather than token-passing, which keeps the simulator's determinism: the
wait depends only on admission order, which the event heap already makes
deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple

__all__ = ["ResourceQueue", "ContentionModel"]


class ResourceQueue:
    """A FIFO service queue shared by concurrent flows.

    Occupancies are tracked per flow as absolute busy-until times.  Work
    belonging to the flow that already occupies the queue is concurrent
    (zero wait); work of other flows starts when every earlier foreign
    occupancy has drained.
    """

    __slots__ = ("name", "_until", "max_depth", "total_wait", "waits", "admissions")

    def __init__(self, name: str) -> None:
        self.name = name
        #: flow -> absolute time its admitted work finishes.
        self._until: Dict[Hashable, float] = {}
        self.max_depth = 0
        self.total_wait = 0.0
        self.waits = 0
        self.admissions = 0

    def admit(self, flow: Hashable, at: float, duration: float) -> float:
        """Admit *duration* seconds of work for *flow* at time *at*.

        Returns the queueing wait (0.0 when the queue is idle or only
        holds work of the same flow).
        """
        self.admissions += 1
        until = self._until
        # One pass: collect drained occupancies and the FIFO start time
        # (drained entries have t <= at and can never raise `start`).
        start = at
        stale = None
        for g, t in until.items():
            if t <= at:
                if stale is None:
                    stale = [g]
                else:
                    stale.append(g)
            elif g != flow and t > start:
                start = t
        if stale is not None:
            for g in stale:
                del until[g]
        wait = start - at
        if duration > 0.0:
            finish = start + duration
            prev = until.get(flow)
            if prev is None or finish > prev:
                until[flow] = finish
            depth = len(until)
            if depth > self.max_depth:
                self.max_depth = depth
        if wait > 0.0:
            self.total_wait += wait
            self.waits += 1
        return wait

    @property
    def depth(self) -> int:
        """Number of flows currently holding an occupancy (approximate:
        drained entries are purged lazily on the next admission)."""
        return len(self._until)


class ContentionModel:
    """Per-node ingress/egress/compute queues for a :class:`Network`.

    Attach with ``network.contention = ContentionModel()``.  The
    transport then asks this model for the extra queueing wait of every
    message that carries a flow id; messages without a flow (setup
    traffic, maintenance) bypass contention entirely and behave exactly
    as in the uncontended model.
    """

    def __init__(self) -> None:
        self._queues: Dict[Tuple[str, str], ResourceQueue] = {}
        #: Optional per-node service-time multiplier ``(node_id, at) ->
        #: factor`` — wired by :meth:`Network.install_faults` so a
        #: browned-out node's queues drain slower. ``None`` (the
        #: default) keeps service times exactly as modeled.
        self.service_scale: Optional[Callable[[str, float], float]] = None

    def _queue(self, kind: str, node_id: str) -> ResourceQueue:
        key = (kind, node_id)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = ResourceQueue(f"{kind}:{node_id}")
        return queue

    # ------------------------------------------------------------- admission

    def transfer_wait(self, src: str, dst: str, flow: Optional[Hashable],
                      at: float, transfer: float) -> float:
        """Queueing wait for a transfer of *transfer* seconds from *src*
        to *dst*: the message serializes through the sender's egress and
        the receiver's ingress resources."""
        if flow is None:
            return 0.0
        scale = self.service_scale
        out_service = in_service = transfer
        if scale is not None:
            out_service = transfer * scale(src, at)
        wait = self._queue("out", src).admit(flow, at, out_service)
        if scale is not None:
            in_service = transfer * scale(dst, at + wait)
        wait += self._queue("in", dst).admit(flow, at + wait, in_service)
        return wait

    def compute_wait(self, node_id: str, flow: Optional[Hashable],
                     at: float, service: float) -> float:
        """Queueing wait for *service* seconds of local processing at
        *node_id* (the node's ``compute_delay``)."""
        if flow is None:
            return 0.0
        scale = self.service_scale
        if scale is not None:
            service = service * scale(node_id, at)
        return self._queue("cpu", node_id).admit(flow, at, service)

    # ------------------------------------------------------------ reporting

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Aggregate queue statistics (for workload reports)."""
        out: Dict[str, Dict[str, float]] = {}
        for (kind, node_id), queue in sorted(self._queues.items()):
            if queue.max_depth <= 1 and queue.waits == 0:
                continue
            out[f"{kind}:{node_id}"] = {
                "max_depth": queue.max_depth,
                "waits": queue.waits,
                "total_wait": queue.total_wait,
            }
        return out

    def max_queue_depth(self) -> int:
        return max((q.max_depth for q in self._queues.values()), default=0)

    def total_wait(self) -> float:
        return sum(q.total_wait for q in self._queues.values())
