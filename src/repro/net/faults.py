"""Deterministic message-level fault injection (the chaos layer).

The crash-stop model (:meth:`Network.fail_node`) covers peers that die;
an ad-hoc network also has peers that are merely *flaky*: links that lose
or duplicate datagrams, windows of asymmetric partition, latency spikes,
and nodes that brown out — alive and answering, but an order of magnitude
slower. This module injects exactly those faults into the transport,
deterministically: every decision is drawn from an RNG seeded with
``(plan seed, link, per-link message ordinal)``, so a given
:class:`FaultPlan` produces the same fault sequence on every run — the
property the chaos regression suite pins its outcomes on.

A plan is a set of :class:`FaultRule` windows over simulated time:

* ``loss`` — each matching message is dropped with ``probability``;
* ``duplicate`` — a second copy is delivered ``delay`` (+/- jitter)
  after the first;
* ``delay`` — an extra latency spike of ``delay`` (+/- jitter) seconds;
* ``partition`` — directional drop: ``src -> dst`` messages vanish while
  the reverse path keeps flowing (probability defaults to 1.0);
* ``brownout`` — node ``node``'s service times (wire transfer and
  compute, and its contention-queue occupancies) are scaled by
  ``factor``.

Faults model the *network*, not the sender: a lost or delayed message is
still charged to the byte ledger (the bytes left the sender's NIC), so
traffic accounting stays honest under chaos.

The layer is entirely opt-in: ``network.faults`` is ``None`` until
:meth:`Network.install_faults` is called, and the transport's fast paths
are byte-identical when it is.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["FaultRule", "FaultPlan", "MessageFate", "FaultInjector",
           "chaos_plan"]

#: Rule kinds that act on individual messages (vs. node brownout).
LINK_KINDS = ("loss", "duplicate", "delay", "partition")
KINDS = LINK_KINDS + ("brownout",)


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One fault, active over a simulated-time window.

    ``src``/``dst`` restrict link rules to a directional edge (``None``
    matches any endpoint, so a single rule can degrade the whole fabric);
    ``node`` names a brownout target. ``probability`` is the per-message
    firing chance for link rules (partitions default it to 1.0 via
    :func:`chaos_plan`). ``delay`` and ``jitter`` shape latency spikes
    and the lag of duplicate copies; ``factor`` is the brownout
    service-time multiplier.
    """

    kind: str
    start: float = 0.0
    end: float = math.inf
    src: Optional[str] = None
    dst: Optional[str] = None
    node: Optional[str] = None
    probability: float = 1.0
    delay: float = 0.0
    jitter: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def in_window(self, at: float) -> bool:
        return self.start <= at < self.end

    def matches_link(self, src: str, dst: str, at: float) -> bool:
        return (
            self.kind in LINK_KINDS
            and self.in_window(at)
            and (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
        )

    def matches_node(self, node_id: str, at: float) -> bool:
        return (
            self.kind == "brownout"
            and self.in_window(at)
            and (self.node is None or self.node == node_id)
        )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable schedule of faults (safe to embed in frozen configs).

    ``seed`` keys every probabilistic decision; two runs of the same plan
    against the same workload observe identical fault sequences.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any sequence at construction; store a tuple.
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [
                {k: getattr(rule, k)
                 for k in ("kind", "start", "end", "src", "dst", "node",
                           "probability", "delay", "jitter", "factor")}
                for rule in self.rules
            ],
        }


@dataclass(slots=True)
class MessageFate:
    """The injector's verdict for one message."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0
    dup_delay: float = 0.0


#: Shared "no fault" verdict — the common case inside an active window.
_CLEAN = MessageFate()


class FaultInjector:
    """Runtime evaluator of a :class:`FaultPlan`.

    Holds the per-link message ordinals that key the deterministic RNG,
    and tallies every injected fault by kind (surfaced in workload
    reports and the chaos benchmark).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._link_rules: List[FaultRule] = [
            r for r in plan.rules if r.kind in LINK_KINDS
        ]
        self._node_rules: List[FaultRule] = [
            r for r in plan.rules if r.kind == "brownout"
        ]
        #: (src, dst) -> messages seen on that directional link.
        self._seq: Dict[Tuple[str, str], int] = {}
        self.injected: Dict[str, int] = {k: 0 for k in LINK_KINDS}

    # ------------------------------------------------------------- messages

    def message_fate(self, src: str, dst: str, at: float) -> MessageFate:
        """Decide this message's fate. Called once per transmission (the
        request and its reply are separate messages on opposite links).

        Every message on a link advances that link's ordinal whether or
        not a rule fires, so a rule window opening later never perturbs
        the draws of messages before it.
        """
        key = (src, dst)
        n = self._seq.get(key, 0)
        self._seq[key] = n + 1
        rules = [r for r in self._link_rules if r.matches_link(src, dst, at)]
        if not rules:
            return _CLEAN
        rng: Optional[random.Random] = None
        fate = MessageFate()
        for rule in rules:
            if rule.probability >= 1.0:
                hit = True
            else:
                if rng is None:
                    rng = random.Random(f"{self.plan.seed}|{src}>{dst}|{n}")
                hit = rng.random() < rule.probability
            if not hit:
                continue
            if rule.kind in ("loss", "partition"):
                self.injected[rule.kind] += 1
                fate.drop = True
                # A dropped message has no further fate.
                fate.duplicate = False
                break
            if rule.jitter > 0.0:
                if rng is None:
                    rng = random.Random(f"{self.plan.seed}|{src}>{dst}|{n}")
                u = rng.random()
                lag = max(0.0, rule.delay * (1.0 + rule.jitter * (2.0 * u - 1.0)))
            else:
                lag = rule.delay
            if rule.kind == "duplicate":
                self.injected["duplicate"] += 1
                fate.duplicate = True
                fate.dup_delay = lag
            else:  # delay spike
                self.injected["delay"] += 1
                fate.extra_delay += lag
        return fate

    # ---------------------------------------------------------------- nodes

    def brownout_factor(self, node_id: str, at: float) -> float:
        """Service-time multiplier for *node_id* at time *at* (1.0 when
        healthy; factors of overlapping brownouts multiply)."""
        factor = 1.0
        for rule in self._node_rules:
            if rule.matches_node(node_id, at):
                factor *= rule.factor
        return factor

    def as_dict(self) -> dict:
        return {"injected": dict(self.injected), "plan": self.plan.as_dict()}


def chaos_plan(
    node_ids: Sequence[str],
    *,
    seed: int = 0,
    start: float = 0.0,
    window: float = 60.0,
    loss: float = 0.0,
    duplicate: float = 0.0,
    delay: float = 0.0,
    delay_spike: float = 0.05,
    jitter: float = 0.5,
    dup_lag: float = 0.01,
    partitions: int = 0,
    brownouts: int = 0,
    brownout_factor: float = 8.0,
) -> FaultPlan:
    """Build a seeded :class:`FaultPlan` (the `churn_schedule` analogue).

    ``loss``/``duplicate``/``delay`` are fabric-wide per-message
    probabilities over ``[start, start + window)``; ``partitions`` picks
    that many directional node pairs to cut (A -> B drops while B -> A
    flows), and ``brownouts`` picks that many nodes to slow by
    ``brownout_factor``. Victim selection is drawn from
    ``Random(f"chaos|{seed}")``, independent of the per-message fate RNG.
    """
    end = start + window
    rules: List[FaultRule] = []
    if loss > 0.0:
        rules.append(FaultRule("loss", start=start, end=end, probability=loss))
    if duplicate > 0.0:
        rules.append(FaultRule("duplicate", start=start, end=end,
                               probability=duplicate, delay=dup_lag,
                               jitter=jitter))
    if delay > 0.0:
        rules.append(FaultRule("delay", start=start, end=end,
                               probability=delay, delay=delay_spike,
                               jitter=jitter))
    rng = random.Random(f"chaos|{seed}")
    if partitions > 0:
        if len(node_ids) < 2:
            raise ValueError("partitions need at least two nodes")
        for _ in range(partitions):
            a, b = rng.sample(list(node_ids), 2)
            rules.append(FaultRule("partition", start=start, end=end,
                                   src=a, dst=b))
    if brownouts > 0:
        if not node_ids:
            raise ValueError("brownouts need at least one node")
        victims = rng.sample(list(node_ids), min(brownouts, len(node_ids)))
        for victim in victims:
            rules.append(FaultRule("brownout", start=start, end=end,
                                   node=victim, factor=brownout_factor))
    return FaultPlan(rules=tuple(rules), seed=seed)
