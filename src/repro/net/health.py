"""Per-peer health scoring and circuit breaking (gray-failure defense).

Crash-stop failures are caught by timeouts (Sect. III-D); *gray*
failures — a browned-out peer that answers, slowly, or a lossy link that
times out only some of the time — are not: each call pays the full
timeout before failover kicks in, burning the query deadline on a peer
that recent history already condemned.

The :class:`HealthLedger` closes that gap. Every RPC attempt feeds it an
observation (EWMA round-trip latency on success, a consecutive-failure
count on timeout), and each peer carries a classic three-state circuit
breaker:

* **closed** — traffic flows; observations update the score;
* **open** — tripped after ``failure_threshold`` consecutive timeouts
  (or an EWMA RTT above ``latency_threshold``); calls are short-circuited
  with an immediate :class:`~repro.net.transport.RpcTimeout` instead of
  waiting out a real one;
* **half-open** — after ``reset_after`` seconds of open, exactly one
  probe call is let through; success closes the breaker, failure
  re-opens it.

Consulted in two places: the transport short-circuits individual
attempts (cheap, and the retry loop's backoff naturally spaces the
half-open probes), and :func:`repro.query.failover.dispatch_primitive`
routes *around* an open-circuit owner before ever dialing it.

Opt-in: ``network.health`` stays ``None`` (and every counter zero)
unless an executor enables ``ExecutionOptions.breaker``.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..metrics.counters import FailoverCounters
    from .sim import Simulator

__all__ = ["PeerHealth", "HealthLedger", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class PeerHealth:
    """Mutable per-peer record: score + breaker state."""

    __slots__ = ("ewma_rtt", "failures", "state", "opened_at",
                 "probe_inflight")

    def __init__(self) -> None:
        self.ewma_rtt: Optional[float] = None
        self.failures = 0
        self.state = CLOSED
        self.opened_at = 0.0
        self.probe_inflight = False

    def as_dict(self) -> dict:
        return {
            "ewma_rtt": self.ewma_rtt,
            "failures": self.failures,
            "state": self.state,
        }


class HealthLedger:
    """Network-wide peer health scores feeding per-peer breakers."""

    def __init__(
        self,
        sim: "Simulator",
        counters: "FailoverCounters",
        *,
        failure_threshold: int = 3,
        reset_after: float = 1.0,
        latency_threshold: Optional[float] = None,
        alpha: float = 0.3,
    ) -> None:
        self.sim = sim
        self.counters = counters
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.latency_threshold = latency_threshold
        self.alpha = alpha
        self._peers: Dict[str, PeerHealth] = {}

    def peer(self, peer_id: str) -> PeerHealth:
        health = self._peers.get(peer_id)
        if health is None:
            health = self._peers[peer_id] = PeerHealth()
        return health

    # ---------------------------------------------------------- observations

    def observe_success(self, peer_id: str, rtt: float) -> None:
        """A call to *peer_id* returned after *rtt* simulated seconds."""
        self.counters.health_observations += 1
        health = self.peer(peer_id)
        if health.ewma_rtt is None:
            health.ewma_rtt = rtt
        else:
            health.ewma_rtt += self.alpha * (rtt - health.ewma_rtt)
        health.failures = 0
        if health.state == HALF_OPEN:
            # The half-open probe came back: the peer has recovered.
            health.state = CLOSED
            health.probe_inflight = False
        if (self.latency_threshold is not None
                and health.ewma_rtt > self.latency_threshold):
            # Answering, but too slowly to be useful — the gray failure.
            self._trip(health)

    def observe_failure(self, peer_id: str) -> None:
        """A call to *peer_id* timed out (RemoteError does not count:
        an exception proves the peer is alive and reachable)."""
        self.counters.health_observations += 1
        health = self.peer(peer_id)
        health.failures += 1
        if health.state == HALF_OPEN:
            # The probe failed: straight back to open.
            health.state = OPEN
            health.opened_at = self.sim.now
            health.probe_inflight = False
        elif (health.state == CLOSED
              and health.failures >= self.failure_threshold):
            self._trip(health)

    def _trip(self, health: PeerHealth) -> None:
        if health.state == OPEN:
            return
        health.state = OPEN
        health.opened_at = self.sim.now
        health.probe_inflight = False
        self.counters.breaker_trips += 1

    # ---------------------------------------------------------- consultation

    def allow(self, peer_id: str) -> bool:
        """May a call to *peer_id* proceed right now?

        Mutating: an open breaker whose reset period elapsed transitions
        to half-open and *claims* this call as its single probe. Callers
        that only want to peek use :meth:`open_now`.
        """
        health = self._peers.get(peer_id)
        if health is None or health.state == CLOSED:
            return True
        if health.state == OPEN:
            if self.sim.now - health.opened_at < self.reset_after:
                return False
            health.state = HALF_OPEN
            health.probe_inflight = False
        # Half-open: exactly one probe at a time.
        if health.probe_inflight:
            return False
        health.probe_inflight = True
        self.counters.breaker_half_opens += 1
        return True

    def open_now(self, peer_id: str) -> bool:
        """Non-mutating peek: is the breaker currently rejecting traffic
        to *peer_id*? Used by routing decisions (failover dispatch) that
        should not claim the half-open probe."""
        health = self._peers.get(peer_id)
        if health is None or health.state == CLOSED:
            return False
        if health.state == OPEN:
            return self.sim.now - health.opened_at < self.reset_after
        return health.probe_inflight

    # ------------------------------------------------------------ reporting

    def snapshot(self) -> Dict[str, dict]:
        return {peer_id: health.as_dict()
                for peer_id, health in sorted(self._peers.items())}
