"""Real multi-process transport: the same node logic over OS processes.

The simulator (``repro.net.transport``) is where experiments run, but the
node implementations are not simulator-bound: any handler that does not
suspend (no generator RPCs) — local evaluation, mailbox delivery, and the
one-way ``chain_step`` used by the optimized strategies of Sect. IV-C —
runs unchanged over this transport, where every node is a separate OS
process and messages are real pickled bytes over ``multiprocessing``
queues.

``examples/multiprocess_demo.py`` uses this to run a chained distributed
query across four real processes — the zero-to-aha proof that the design
survives outside the simulator.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import uuid
from typing import Any, Dict, Tuple

__all__ = ["MpCluster", "MpTransportError"]

_STOP = "__stop__"


class MpTransportError(RuntimeError):
    """Transport-level failure (dead worker, timeout)."""


class _WorkerTransport:
    """The ``network`` facade handed to a node inside its worker process.

    Supports exactly the subset non-suspending handlers use:
    ``send`` (one-way). ``call`` is deliberately absent — a suspending
    handler would need the simulator's process machinery.
    """

    def __init__(self, queues: Dict[str, mp.Queue]) -> None:
        self._queues = queues

    def send(self, src: str, dst: str, method: str, payload: Any = None) -> None:
        q = self._queues.get(dst)
        if q is not None:
            q.put(("oneway", src, method, payload))


def _worker_main(node, queues: Dict[str, mp.Queue]) -> None:
    """Worker loop: dispatch incoming messages to ``rpc_*`` handlers."""
    node.network = _WorkerTransport(queues)
    inbox = queues[node.node_id]
    while True:
        message = inbox.get()
        if message == _STOP:
            return
        kind, src, *rest = message
        if kind == "oneway":
            method, payload = rest
            handler = getattr(node, f"rpc_{method}", None)
            if handler is not None:
                try:
                    handler(payload, src)
                except Exception:  # noqa: BLE001 - one-way faults vanish
                    pass
        elif kind == "call":
            corr, method, payload = rest
            handler = getattr(node, f"rpc_{method}", None)
            try:
                if handler is None:
                    raise MpTransportError(f"no handler rpc_{method}")
                result: Tuple[str, Any] = ("ok", handler(payload, src))
            except Exception as exc:  # noqa: BLE001 - shipped back to caller
                result = ("error", repr(exc))
            reply_q = queues.get(src)
            if reply_q is not None:
                reply_q.put(("reply", node.node_id, corr, result))


class MpCluster:
    """Hosts nodes in separate OS processes; the creating process acts as
    the client endpoint (query initiator)."""

    CLIENT_ID = "client"

    def __init__(self) -> None:
        self._ctx = mp.get_context("fork")
        self._queues: Dict[str, mp.Queue] = {self.CLIENT_ID: self._ctx.Queue()}
        self._nodes: Dict[str, Any] = {}
        self._procs: Dict[str, mp.process.BaseProcess] = {}
        #: Deliveries addressed to the client (e.g. a chain's final result).
        self._deliveries: Dict[str, Any] = {}

    # ------------------------------------------------------------ lifecycle

    def spawn(self, node) -> None:
        """Register *node* (any object with ``node_id`` and ``rpc_*``
        handlers) to run in its own process. Processes launch together on
        :meth:`start` — or implicitly at the first message — so that every
        worker holds the queues of *all* nodes (a worker forked earlier
        would silently lack the queues of later nodes)."""
        node_id = node.node_id
        if node_id in self._nodes or node_id in self._procs:
            raise ValueError(f"node {node_id!r} already spawned")
        self._queues[node_id] = self._ctx.Queue()
        self._nodes[node_id] = node

    def start(self) -> None:
        for node_id, node in self._nodes.items():
            proc = self._ctx.Process(
                target=_worker_main, args=(node, self._queues), daemon=True
            )
            proc.start()
            self._procs[node_id] = proc
        self._nodes.clear()

    def _ensure_started(self) -> None:
        if self._nodes:
            self.start()

    def shutdown(self) -> None:
        for node_id, proc in self._procs.items():
            self._queues[node_id].put(_STOP)
        for proc in self._procs.values():
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._procs.clear()

    def __enter__(self) -> "MpCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ----------------------------------------------------------- messaging

    def send(self, dst: str, method: str, payload: Any = None) -> None:
        self._ensure_started()
        q = self._queues.get(dst)
        if q is None:
            raise MpTransportError(f"unknown node {dst!r}")
        q.put(("oneway", self.CLIENT_ID, method, payload))

    def call(self, dst: str, method: str, payload: Any = None,
             timeout: float = 30.0) -> Any:
        """Blocking request/response from the client to a node."""
        self._ensure_started()
        q = self._queues.get(dst)
        if q is None:
            raise MpTransportError(f"unknown node {dst!r}")
        corr = uuid.uuid4().hex
        q.put(("call", self.CLIENT_ID, corr, method, payload))
        while True:
            message = self._next_client_message(timeout)
            kind = message[0]
            if kind == "reply":
                _, src, reply_corr, (status, value) = message
                if reply_corr != corr:
                    continue  # stale reply from an abandoned call
                if status == "error":
                    raise MpTransportError(f"{dst}.{method}: {value}")
                return value
            self._absorb(message)

    def wait_delivery(self, corr: str, timeout: float = 30.0) -> Any:
        """Wait for a one-way ``deliver`` addressed to the client."""
        while corr not in self._deliveries:
            self._absorb(self._next_client_message(timeout))
        return self._deliveries.pop(corr)

    # ------------------------------------------------------------ internals

    def _next_client_message(self, timeout: float):
        try:
            return self._queues[self.CLIENT_ID].get(timeout=timeout)
        except queue_mod.Empty as exc:
            raise MpTransportError("timed out waiting for cluster message") from exc

    def _absorb(self, message) -> None:
        kind = message[0]
        if kind == "oneway":
            _, src, method, payload = message
            if method == "deliver":
                self._deliveries[payload["corr"]] = payload.get("data", [])
            # 'delivered' notifications and anything else are ignored: the
            # client polls deliveries directly.
