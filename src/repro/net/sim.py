"""Discrete-event simulation kernel.

A small, deterministic, generator-based process simulator in the style of
SimPy, purpose-built for the paper's evaluation: processes are Python
generators that ``yield`` events (timeouts, other processes, composites);
the kernel advances virtual time event by event.

Determinism: ties in the event heap break on a monotonically increasing
sequence number, never on object identity, so repeated runs with the same
seed produce byte-identical traces. That property underpins every number
in EXPERIMENTS.md.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..trace.tracer import NULL_TRACER

__all__ = ["Simulator", "Event", "Timeout", "Process", "AllOf", "AnyOf", "SimError"]


class SimError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Event:
    """A one-shot occurrence with a value and callbacks.

    Events are created pending, then either *succeed* or *fail* exactly
    once. Processes waiting on an event are resumed with its value (or
    have the failure raised inside them).
    """

    __slots__ = ("sim", "callbacks", "_value", "_failure", "_done", "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._failure: Optional[BaseException] = None
        self._done = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimError("event has not triggered yet")
        return self._value

    @property
    def failure(self) -> Optional[BaseException]:
        return self._failure

    def succeed(self, value: Any = None) -> "Event":
        if self._done:
            raise SimError("event already triggered")
        self._done = True
        self._value = value
        self.sim._ready(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._done:
            raise SimError("event already triggered")
        self._done = True
        self._failure = exception
        self.sim._ready(self)
        return self

    def cancel(self) -> bool:
        """Withdraw a pending event: it will never trigger, its callbacks
        are dropped, and waiters are never resumed. Returns False when the
        event already triggered (cancellation lost the race)."""
        if self._done:
            return False
        self._done = True
        self._cancelled = True
        self.callbacks.clear()
        return True


class Timeout(Event):
    """An event that succeeds after a fixed delay.

    Cancelling a pending Timeout tombstones its heap entry, so the event
    loop discards it without advancing the clock — stale timers (e.g. an
    RPC deadline whose reply already won) neither churn the heap nor drag
    ``sim.now`` forward after the useful work completed.
    """

    __slots__ = ("delay", "_entry")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._entry: Optional[list] = sim._schedule_at(sim.now + delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self._entry = None
        self.succeed(value)

    def cancel(self) -> bool:
        if not super().cancel():
            return False
        entry = self._entry
        if entry is not None:
            entry[2] = None  # tombstone: run() drops it without firing
            entry[3] = ()
            self._entry = None
        return True


class Process(Event):
    """A running generator; completes (as an Event) when it returns.

    The generator yields Events; it is resumed with each event's value.
    A failed awaited event is thrown into the generator so processes can
    ``try/except`` simulated failures (e.g. RPC timeouts).
    """

    __slots__ = ("_gen", "_pid")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]) -> None:
        super().__init__(sim)
        self._gen = gen
        self._pid = next(sim._proc_ids)
        tracer = sim.tracer
        if tracer.enabled:
            tracer.record("process_spawn", name=self.name, detail={"pid": self._pid})
        sim._schedule_now(self._resume, None, None)

    @property
    def name(self) -> str:
        """The generator function's name (stable across runs)."""
        code = getattr(self._gen, "gi_code", None)
        return code.co_name if code is not None else "process"

    def _trace_finish(self, outcome: str) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.record("process_finish", name=self.name,
                          detail={"pid": self._pid, "outcome": outcome})

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._trace_finish("ok")
            self.succeed(stop.value)
            return
        except Exception as failure:  # noqa: BLE001 - propagate into waiters
            self._trace_finish("failed")
            self.fail(failure)
            return
        if not isinstance(target, Event):
            self._gen.close()
            self._trace_finish("failed")
            self.fail(SimError(f"process yielded non-Event {target!r}"))
            return
        if target.triggered:
            self.sim._schedule_now(self._resume, target.value, target.failure)
        else:
            target.callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        self._resume(event.value, event.failure)


class AllOf(Event):
    """Succeeds when all child events have succeeded.

    Value: list of child values in the order given. This is the kernel's
    *parallel fan-out* primitive: completion time is the max of the
    children — exactly the paper's "parallelism is exploited" timing for
    the BASIC strategy. Fails fast if any child fails.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._pending = 0
        for event in self._children:
            if event.triggered:
                if event.failure is not None:
                    if not self.triggered:
                        self.fail(event.failure)
                    return
            else:
                self._pending += 1
                event.callbacks.append(self._on_child)
        if self._pending == 0 and not self.triggered:
            self.succeed([e.value for e in self._children])

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.failure is not None:
            self.fail(event.failure)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._children])


class AnyOf(Event):
    """Succeeds with (index, value) of the first child to succeed."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimError("AnyOf requires at least one event")
        for i, event in enumerate(self._children):
            if event.triggered and not self.triggered:
                if event.failure is not None:
                    self.fail(event.failure)
                else:
                    self.succeed((i, event.value))
                return
        for i, event in enumerate(self._children):
            event.callbacks.append(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if event.failure is not None:
            self.fail(event.failure)
        else:
            self.succeed((index, event.value))


class Simulator:
    """The event loop: a heap of [time, seq, action, args] entries.

    Entries are mutable lists so a cancelled Timeout can tombstone its
    slot in place (``entry[2] = None``); ``run()`` discards tombstones
    without advancing the clock. ``tracer`` is the observability hook —
    :data:`~repro.trace.tracer.NULL_TRACER` by default, so an untraced
    simulation pays one attribute check per instrumented site.

    Fast path: entries scheduled at the *current* time (event dispatch,
    process resumption, zero-delay timers) bypass the heap and go on a
    FIFO deque. Such entries carry ``time == now`` with a monotonically
    increasing sequence number, so the deque is sorted by construction;
    ``run()`` merges deque and heap by comparing heads on (time, seq),
    which reproduces the exact total order the single heap produced —
    same events, same clock, same traces — without paying heap churn for
    the majority of entries.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[list] = []
        self._now_queue: "deque[list]" = deque()
        self._seq = itertools.count()
        self._proc_ids = itertools.count()
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------ factories

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        if not hasattr(gen, "send"):
            raise SimError("process() requires a generator (did you forget to call it?)")
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------ internals

    def _schedule_at(self, time: float, fn: Callable, *args: Any) -> list:
        entry = [time, next(self._seq), fn, args]
        if time <= self.now:
            # Due immediately (zero-delay timer): the deque stays sorted
            # because seq is monotonic and the clock never runs backward.
            self._now_queue.append(entry)
        else:
            heapq.heappush(self._heap, entry)
        return entry

    def _schedule_now(self, fn: Callable, *args: Any) -> list:
        entry = [self.now, next(self._seq), fn, args]
        self._now_queue.append(entry)
        return entry

    def _ready(self, event: Event) -> None:
        # Run callbacks via the queue so triggering is never re-entrant.
        self._schedule_now(self._dispatch, event)

    @staticmethod
    def _dispatch(event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    # ----------------------------------------------------------------- run

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains or *until* is reached.

        Returns the final simulation time.
        """
        heap = self._heap
        queue = self._now_queue
        heappop = heapq.heappop
        while True:
            entry = None
            from_heap = False
            if queue:
                head = queue[0]
                if head[2] is None:
                    # Tombstone left by a cancelled timer: drop it without
                    # touching the clock.
                    queue.popleft()
                    continue
                entry = head
            if heap:
                head = heap[0]
                if head[2] is None:
                    heappop(heap)
                    continue
                if entry is None or head[0] < entry[0] or (
                    head[0] == entry[0] and head[1] < entry[1]
                ):
                    entry = head
                    from_heap = True
            if entry is None:
                return self.now
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            if from_heap:
                heappop(heap)
            else:
                queue.popleft()
            self.now = time
            entry[2](*entry[3])

    def run_process(self, gen: Generator[Event, Any, Any]) -> Any:
        """Convenience: spawn *gen*, run to completion, return its value.

        Raises the process's failure, if any — so simulated exceptions
        surface naturally in tests.
        """
        proc = self.process(gen)
        self.run()
        if not proc.triggered:
            raise SimError("deadlock: process never completed")
        if proc.failure is not None:
            raise proc.failure
        return proc.value
