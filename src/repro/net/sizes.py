"""Deterministic wire-size model for simulated messages.

"Minimizing the total amount of intersite data transmission" is the
paper's principal optimization criterion (Sect. IV-C); to compare
strategies we therefore need an exact, reproducible byte count for every
payload that crosses a link. This module assigns each payload a size equal
to what a compact N-Triples/JSON-ish encoding would occupy, so relative
comparisons between strategies are meaningful and stable across runs.

Sizing is a wall-clock hot spot: every simulated message charges
``size_of`` over its whole payload, and solution sets are re-sized each
time they ship. Dispatch is a ``type() -> handler`` table (falling back to
the original ``isinstance`` cascade for subclasses), and the per-term /
per-mapping results are cached on the instances themselves — sound
because RDF terms are interned and solution mappings are immutable. The
computed sizes are byte-identical to the original structural recursion.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any

from ..rdf.terms import IRI, BlankNode, Literal, Variable
from ..rdf.triple import Triple, TriplePattern
from ..sparql.solutions import SolutionMapping

__all__ = ["size_of", "HEADER_BYTES"]

#: Fixed per-message envelope (addresses, message type, request id).
HEADER_BYTES = 48

_CONTAINER_OVERHEAD = 8
_PER_ITEM_OVERHEAD = 2

_set = object.__setattr__


def _size_iri(payload: IRI) -> int:
    n = payload._size
    if n is None:
        n = len(payload.value) + 2
        _set(payload, "_size", n)
    return n


def _size_literal(payload: Literal) -> int:
    n = payload._size
    if n is None:
        n = len(payload.lexical) + 2
        if payload.language:
            n += len(payload.language) + 1
        if payload.datatype:
            n += len(payload.datatype.value) + 4
        _set(payload, "_size", n)
    return n


def _size_blank(payload: BlankNode) -> int:
    n = payload._size
    if n is None:
        n = len(payload.label) + 2
        _set(payload, "_size", n)
    return n


def _size_variable(payload: Variable) -> int:
    n = payload._size
    if n is None:
        n = len(payload.name) + 1
        _set(payload, "_size", n)
    return n


def _size_triple(payload) -> int:
    return size_of(payload.s) + size_of(payload.p) + size_of(payload.o) + 3


def _size_mapping(payload: SolutionMapping) -> int:
    n = payload._size
    if n is None:
        n = _CONTAINER_OVERHEAD
        for v, t in payload.items():
            n += size_of(v) + size_of(t) + _PER_ITEM_OVERHEAD
        payload._size = n
    return n


def _size_dict(payload: dict) -> int:
    return _CONTAINER_OVERHEAD + sum(
        size_of(k) + size_of(v) + _PER_ITEM_OVERHEAD for k, v in payload.items()
    )


def _size_sequence(payload) -> int:
    return _CONTAINER_OVERHEAD + sum(
        size_of(item) + _PER_ITEM_OVERHEAD for item in payload
    )


def _size_str(payload: str) -> int:
    return len(payload.encode("utf-8"))


_DISPATCH = {
    type(None): lambda payload: 1,
    bool: lambda payload: 1,
    int: lambda payload: 8,
    float: lambda payload: 8,
    str: _size_str,
    bytes: len,
    IRI: _size_iri,
    Literal: _size_literal,
    BlankNode: _size_blank,
    Variable: _size_variable,
    Triple: _size_triple,
    TriplePattern: _size_triple,
    SolutionMapping: _size_mapping,
    dict: _size_dict,
    list: _size_sequence,
    tuple: _size_sequence,
    set: _size_sequence,
    frozenset: _size_sequence,
}


def size_of(payload: Any) -> int:
    """Estimated serialized size of *payload* in bytes.

    Deterministic, structural, and additive over containers. Unknown
    objects may implement ``wire_size() -> int``.
    """
    handler = _DISPATCH.get(type(payload))
    if handler is not None:
        return handler(payload)
    return _size_of_slow(payload)


def _size_of_slow(payload: Any) -> int:
    """The original isinstance cascade, for subclasses of the table types
    and the open-ended cases (enums, ``wire_size`` objects, dataclasses)."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, str):
        return _size_str(payload)
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, IRI):
        return _size_iri(payload)
    if isinstance(payload, Literal):
        return _size_literal(payload)
    if isinstance(payload, BlankNode):
        return _size_blank(payload)
    if isinstance(payload, Variable):
        return _size_variable(payload)
    if isinstance(payload, (Triple, TriplePattern)):
        return _size_triple(payload)
    if isinstance(payload, SolutionMapping):
        return _size_mapping(payload)
    if isinstance(payload, dict):
        return _size_dict(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return _size_sequence(payload)
    if isinstance(payload, enum.Enum):
        return len(payload.name) + 1
    wire_size = getattr(payload, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        # Generic rule for structured payloads (algebra nodes, plan steps):
        # the sum of the fields plus container overhead.
        return _CONTAINER_OVERHEAD + sum(
            size_of(getattr(payload, f.name)) + _PER_ITEM_OVERHEAD
            for f in dataclasses.fields(payload)
        )
    raise TypeError(f"no wire-size rule for {type(payload).__name__}")
