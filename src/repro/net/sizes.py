"""Deterministic wire-size model for simulated messages.

"Minimizing the total amount of intersite data transmission" is the
paper's principal optimization criterion (Sect. IV-C); to compare
strategies we therefore need an exact, reproducible byte count for every
payload that crosses a link. This module assigns each payload a size equal
to what a compact N-Triples/JSON-ish encoding would occupy, so relative
comparisons between strategies are meaningful and stable across runs.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any

from ..rdf.terms import IRI, BlankNode, Literal, Variable
from ..rdf.triple import Triple, TriplePattern
from ..sparql.solutions import SolutionMapping

__all__ = ["size_of", "HEADER_BYTES"]

#: Fixed per-message envelope (addresses, message type, request id).
HEADER_BYTES = 48

_CONTAINER_OVERHEAD = 8
_PER_ITEM_OVERHEAD = 2


def size_of(payload: Any) -> int:
    """Estimated serialized size of *payload* in bytes.

    Deterministic, structural, and additive over containers. Unknown
    objects may implement ``wire_size() -> int``.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, IRI):
        return len(payload.value) + 2
    if isinstance(payload, Literal):
        n = len(payload.lexical) + 2
        if payload.language:
            n += len(payload.language) + 1
        if payload.datatype:
            n += len(payload.datatype.value) + 4
        return n
    if isinstance(payload, BlankNode):
        return len(payload.label) + 2
    if isinstance(payload, Variable):
        return len(payload.name) + 1
    if isinstance(payload, (Triple, TriplePattern)):
        return size_of(payload.s) + size_of(payload.p) + size_of(payload.o) + 3
    if isinstance(payload, SolutionMapping):
        return _CONTAINER_OVERHEAD + sum(
            size_of(v) + size_of(t) + _PER_ITEM_OVERHEAD for v, t in payload.items()
        )
    if isinstance(payload, dict):
        return _CONTAINER_OVERHEAD + sum(
            size_of(k) + size_of(v) + _PER_ITEM_OVERHEAD for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(
            size_of(item) + _PER_ITEM_OVERHEAD for item in payload
        )
    if isinstance(payload, enum.Enum):
        return len(payload.name) + 1
    wire_size = getattr(payload, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        # Generic rule for structured payloads (algebra nodes, plan steps):
        # the sum of the fields plus container overhead.
        return _CONTAINER_OVERHEAD + sum(
            size_of(getattr(payload, f.name)) + _PER_ITEM_OVERHEAD
            for f in dataclasses.fields(payload)
        )
    raise TypeError(f"no wire-size rule for {type(payload).__name__}")
