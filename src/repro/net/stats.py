"""Traffic and timing accounting for the simulated network.

Every experiment in EXPERIMENTS.md reports some subset of: total bytes
shipped between sites, message count, per-link breakdowns, and response
times. This module is the single source of those numbers.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["NetworkStats", "MessageRecord"]


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """One message that crossed a link."""

    time: float
    src: str
    dst: str
    kind: str
    bytes: int


@dataclass
class NetworkStats:
    """Aggregate counters, resettable between experiment phases.

    ``checkpoint()``/``delta()`` let the harness measure a single query's
    traffic in the middle of a long-lived system without rebuilding it.
    """

    messages: int = 0
    bytes_total: int = 0
    per_kind_bytes: Counter = field(default_factory=Counter)
    per_kind_messages: Counter = field(default_factory=Counter)
    per_link_bytes: Dict[Tuple[str, str], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    records: List[MessageRecord] = field(default_factory=list)
    #: Record individual messages (costly for big runs; on by default).
    keep_records: bool = True

    def record(self, time: float, src: str, dst: str, kind: str, nbytes: int) -> None:
        self.messages += 1
        self.bytes_total += nbytes
        self.per_kind_bytes[kind] += nbytes
        self.per_kind_messages[kind] += 1
        self.per_link_bytes[(src, dst)] += nbytes
        if self.keep_records:
            self.records.append(MessageRecord(time, src, dst, kind, nbytes))

    def reset(self) -> None:
        self.messages = 0
        self.bytes_total = 0
        self.per_kind_bytes.clear()
        self.per_kind_messages.clear()
        self.per_link_bytes.clear()
        self.records.clear()

    def checkpoint(self) -> Tuple[int, int]:
        return (self.messages, self.bytes_total)

    def delta(self, checkpoint: Tuple[int, int]) -> "StatsDelta":
        msgs, nbytes = checkpoint
        return StatsDelta(self.messages - msgs, self.bytes_total - nbytes)

    def bytes_for(self, *kinds: str) -> int:
        return sum(self.per_kind_bytes[k] for k in kinds)

    def summary(self) -> str:
        lines = [f"messages={self.messages} bytes={self.bytes_total}"]
        for kind in sorted(self.per_kind_bytes):
            lines.append(
                f"  {kind}: {self.per_kind_messages[kind]} msgs, "
                f"{self.per_kind_bytes[kind]} bytes"
            )
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class StatsDelta:
    messages: int
    bytes: int
