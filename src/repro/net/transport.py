"""Simulated message transport: nodes, links, and RPC.

Models the ad-hoc network substrate of the paper: every node "has an IP
address by which it may be contacted" (Sect. III-A) — here a string node
id — and exchanges messages whose cost is ``latency + bytes/bandwidth``.
All traffic is charged to :class:`~repro.net.stats.NetworkStats`, giving
the exact transmission totals the optimization study compares.

The RPC layer dispatches a message of kind ``m`` to the destination
node's ``rpc_m`` method. A handler may return a value directly or be a
generator that performs further RPCs (that is how sub-query shipping
chains through storage nodes). Failed nodes silently drop traffic; callers
observe an :class:`RpcTimeout`, which is precisely the failure-detection
mechanism Sect. III-D prescribes ("no acknowledgement ... after a timeout
period").
"""

from __future__ import annotations

import random
from types import GeneratorType
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..cache.epoch import DataEpochLedger
from ..metrics.counters import CacheCounters, FailoverCounters
from ..trace.tracer import phase_for_method
from .contention import ContentionModel
from .faults import FaultInjector, FaultPlan
from .health import HealthLedger
from .sim import Event, Simulator, Timeout
from .sizes import HEADER_BYTES, size_of
from .stats import NetworkStats

_RPC_ATTRS: Dict[str, str] = {}


def _rpc_attr(method: str) -> str:
    """Memoized ``rpc_<method>`` attribute name (no per-delivery f-string)."""
    name = _RPC_ATTRS.get(method)
    if name is None:
        name = _RPC_ATTRS[method] = "rpc_" + method
    return name


__all__ = [
    "LinkModel",
    "Node",
    "Network",
    "RetryPolicy",
    "RpcError",
    "RpcTimeout",
    "RemoteError",
    "NodeUnknown",
]


class RpcError(Exception):
    """Base class for RPC failures."""


class RpcTimeout(RpcError):
    """No response within the timeout (dead or partitioned peer)."""


class RemoteError(RpcError):
    """The remote handler raised; carries the original message."""


class NodeUnknown(RpcError):
    """Destination id was never registered."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Budget for re-issuing a timed-out RPC.

    The paper's failure detection is the timeout itself (Sect. III-D:
    "no acknowledgement ... after a timeout period"); a retry policy
    turns that detection into recovery. ``attempts`` is the *total*
    attempt count (1 = classic fail-fast). The backoff before attempt
    ``k`` grows exponentially from ``base_backoff`` and carries
    deterministic seeded jitter — the schedule is a pure function of
    (seed, call key, attempt), so runs with the same seed stay
    byte-identical, the property every experiment relies on. Only
    :class:`RpcTimeout` is retried: a :class:`RemoteError` or
    :class:`NodeUnknown` would fail identically on every attempt.
    """

    attempts: int = 3
    base_backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    #: Jitter as a +/- fraction of the raw backoff (0 disables it).
    jitter: float = 0.5
    seed: int = 0
    #: Cap on each attempt's individual timeout; None keeps the caller's
    #: timeout for every attempt.
    per_attempt_timeout: Optional[float] = None

    def backoff_before(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before *attempt* (2-based; attempt 1 is free).

        Deterministic: the jitter is drawn from an RNG seeded with
        (policy seed, *key*, attempt), never from global random state.
        """
        if attempt <= 1:
            return 0.0
        raw = min(
            self.max_backoff,
            self.base_backoff * self.multiplier ** (attempt - 2),
        )
        if self.jitter <= 0:
            return raw
        u = random.Random(f"{self.seed}|{key}|{attempt}").random()
        return max(0.0, raw * (1.0 + self.jitter * (2.0 * u - 1.0)))


@dataclass(frozen=True, slots=True)
class LinkModel:
    """Per-message cost model.

    Defaults approximate a broadband WAN: 10 ms one-way latency, 1 MB/s.
    Absolute values are arbitrary; experiments only compare strategies
    under the *same* link model (and sweep it where relevant).
    """

    latency: float = 0.010
    bandwidth: float = 1_000_000.0

    def delay(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


class Node:
    """Base class for simulated nodes.

    Subclasses expose RPC handlers as methods named ``rpc_<kind>`` taking
    ``(payload, src)``. ``compute_delay`` adds a fixed local-processing
    cost per handled request (0 by default: the paper's cost model is
    communication-dominated).
    """

    compute_delay: float = 0.0

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.network: Optional["Network"] = None
        self.alive = True

    # Wiring ----------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        self.network = network

    @property
    def sim(self) -> Simulator:
        assert self.network is not None, "node not registered with a network"
        return self.network.sim

    # Convenience for handler code -------------------------------------------

    def call(self, dst: str, method: str, payload: Any = None,
             timeout: Optional[float] = None,
             flow: Optional[str] = None,
             retry: Optional["RetryPolicy"] = None,
             deadline: Optional[float] = None) -> Event:
        assert self.network is not None
        return self.network.call(self.node_id, dst, method, payload, timeout,
                                 flow=flow, retry=retry, deadline=deadline)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.node_id} ({status})>"


class Network:
    """The simulated network: node registry + message fabric."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        link: Optional[LinkModel] = None,
        stats: Optional[NetworkStats] = None,
        default_timeout: float = 5.0,
    ) -> None:
        self.sim = sim or Simulator()
        self.link = link or LinkModel()
        self.stats = stats or NetworkStats()
        self.default_timeout = default_timeout
        #: Shared ledger of retry/failover work (see
        #: :class:`~repro.metrics.counters.FailoverCounters`); stays all
        #: zeros unless a caller opts into retry, deadline, or failover.
        self.failover = FailoverCounters()
        self.nodes: Dict[str, Node] = {}
        #: Bumped on every membership change (join/leave/crash/recovery);
        #: cheap staleness check for caches of lookup results.
        self.membership_epoch = 0
        #: Per-ring-key data versions, advanced by every live publication
        #: (publish/unpublish deltas and attach-time bulk publish); the
        #: staleness oracle for cached lookup rows and cached results.
        self.data_epochs = DataEpochLedger()
        #: Shared ledger of the cross-query result cache's work; stays
        #: all zeros unless an executor opts in via ``--result-cache``.
        self.cache = CacheCounters()
        #: Optional shared-resource capacity model (see
        #: :mod:`repro.net.contention`).  ``None`` — the default — keeps
        #: the classic infinite-parallelism link model; assign a
        #: :class:`~repro.net.contention.ContentionModel` to make
        #: concurrent flows queue for node ingress/egress bandwidth and
        #: compute.  Messages without a flow id bypass the model either
        #: way, so single-query runs are byte-identical in both settings.
        self.contention: Optional[ContentionModel] = None
        #: Chaos layer (see :mod:`repro.net.faults`): ``None`` — the
        #: default — delivers every message exactly once at its modeled
        #: delay; :meth:`install_faults` swaps in a deterministic
        #: injector for loss / duplication / delay spikes / partitions /
        #: brownouts.
        self.faults: Optional[FaultInjector] = None
        #: Gray-failure defense (see :mod:`repro.net.health`): ``None``
        #: until an executor opts in via ``ExecutionOptions.breaker``;
        #: then every call attempt feeds the ledger and consults the
        #: per-peer circuit breaker.
        self.health: Optional[HealthLedger] = None

    def install_faults(self, plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
        """Attach (or, with ``None``, detach) a chaos plan. When a
        contention model is present its service times inherit the plan's
        brownout factors, so a browned-out node is slow on the wire *and*
        in its queues."""
        self.faults = FaultInjector(plan) if plan is not None else None
        if self.contention is not None:
            self.contention.service_scale = (
                self.faults.brownout_factor if self.faults is not None else None
            )
        return self.faults

    @staticmethod
    def _sniff_flow(payload: Any) -> Optional[str]:
        """Derive a flow id from a payload's correlation id, if any.

        Correlation ids are minted as ``<query-id>#<seq>``, so the prefix
        identifies the owning query — the flow every message of that
        query contends as.
        """
        if isinstance(payload, dict):
            corr = payload.get("corr")
            if isinstance(corr, str):
                return corr.rsplit("#", 1)[0]
        return None

    # ----------------------------------------------------------- membership

    def register(self, node: Node) -> Node:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        node.attach(self)
        self.nodes[node.node_id] = node
        self.membership_epoch += 1
        return node

    def deregister(self, node_id: str) -> None:
        if self.nodes.pop(node_id, None) is not None:
            self.membership_epoch += 1

    def node(self, node_id: str) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NodeUnknown(node_id) from None

    def fail_node(self, node_id: str) -> None:
        """Crash a node: it stops answering but keeps its state (III-D)."""
        self.node(node_id).alive = False
        self.membership_epoch += 1

    def recover_node(self, node_id: str) -> None:
        self.node(node_id).alive = True
        self.membership_epoch += 1

    # ------------------------------------------------------------------ rpc

    def call(
        self,
        src: str,
        dst: str,
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
        flow: Optional[str] = None,
        *,
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
    ) -> Event:
        """Invoke ``rpc_<method>`` on *dst*, returning an Event.

        The event succeeds with the handler's return value, or fails with
        :class:`RpcTimeout` / :class:`RemoteError`. Both the request and
        the response are charged to the traffic stats. *flow* names the
        query this message belongs to for the contention model (sniffed
        from the payload's correlation id when omitted); the reply
        inherits the request's flow.

        *retry* re-issues the call on :class:`RpcTimeout` per the
        :class:`RetryPolicy`. *deadline* is an absolute simulation time
        that bounds the whole call including retries: each attempt's
        timeout is clamped to the remaining budget, and no retry is
        launched past it. With both omitted (the default) the call takes
        the classic single-attempt path, byte-identical to before.
        """
        if retry is None and deadline is None:
            return self._call_once(src, dst, method, payload, timeout, flow)
        return self._call_retrying(src, dst, method, payload, timeout, flow,
                                   retry, deadline)

    def _call_retrying(
        self,
        src: str,
        dst: str,
        method: str,
        payload: Any,
        timeout: Optional[float],
        flow: Optional[str],
        retry: Optional[RetryPolicy],
        deadline: Optional[float],
    ) -> Event:
        """Retry loop around :meth:`_call_once` (see :meth:`call`)."""
        outer = self.sim.event()
        base_timeout = timeout if timeout is not None else self.default_timeout
        attempts = retry.attempts if retry is not None else 1
        key = f"{src}>{dst}.{method}"
        state = {"attempt": 0}

        def launch() -> None:
            state["attempt"] += 1
            state["clamped"] = False
            per = base_timeout
            if retry is not None and retry.per_attempt_timeout is not None:
                per = min(per, retry.per_attempt_timeout)
            if deadline is not None:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    self.failover.deadline_exhausted += 1
                    outer.fail(RpcTimeout(
                        f"{src} -> {dst}.{method}: query deadline exhausted"))
                    return
                if remaining < per:
                    per = remaining
                    state["clamped"] = True
            inner = self._call_once(src, dst, method, payload, per, flow)
            inner.callbacks.append(settle)

        def settle(event: Event) -> None:
            failure = event.failure
            if failure is None:
                if state["attempt"] > 1:
                    self.failover.retries_recovered += 1
                outer.succeed(event.value)
                return
            # A timeout on a deadline-clamped attempt is the deadline's
            # doing, not the peer's — attribute it (and never retry past
            # it).
            deadline_hit = isinstance(failure, RpcTimeout) and state["clamped"]
            exhausted = (
                retry is None
                or not isinstance(failure, RpcTimeout)
                or state["attempt"] >= attempts
            )
            if not exhausted and not deadline_hit:
                delay = retry.backoff_before(state["attempt"] + 1, key=key)
                if deadline is not None and self.sim.now + delay >= deadline:
                    deadline_hit = True
            if exhausted or deadline_hit:
                if deadline_hit:
                    self.failover.deadline_exhausted += 1
                outer.fail(failure)
                return
            self.failover.retries += 1
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.record(
                    "rpc_retry", src=src, dst=dst, name=method,
                    phase=phase_for_method(method),
                    detail={"attempt": state["attempt"] + 1, "backoff": delay},
                )
            self.sim.timeout(delay).callbacks.append(lambda _e: launch())

        launch()
        return outer

    def _call_once(
        self,
        src: str,
        dst: str,
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
        flow: Optional[str] = None,
    ) -> Event:
        """One attempt of :meth:`call`: the classic fail-fast RPC."""
        health = self.health
        if health is not None and not health.allow(dst):
            # Open circuit: fail this attempt immediately instead of
            # burning a real timeout on a peer recent history condemned.
            self.failover.breaker_short_circuits += 1
            result = self.sim.event()
            self.sim._schedule_now(
                result.fail,
                RpcTimeout(f"{src} -> {dst}.{method}: circuit open"))
            return result
        result = self.sim.event()
        deadline = timeout if timeout is not None else self.default_timeout
        if flow is None:
            flow = self._sniff_flow(payload)
        state: dict = {"done": False, "flow": flow}
        if health is not None:
            started = self.sim.now

            def observe(event: Event) -> None:
                if event.failure is None:
                    health.observe_success(dst, self.sim.now - started)
                elif isinstance(event.failure, RpcTimeout):
                    health.observe_failure(dst)

            result.callbacks.append(observe)

        def expire(_event: Event) -> None:
            if not state["done"]:
                state["done"] = True
                tracer = self.sim.tracer
                if tracer.enabled:
                    tracer.record("rpc_timeout", src=src, dst=dst, name=method,
                                  phase=phase_for_method(method),
                                  detail={"deadline": deadline})
                result.fail(RpcTimeout(f"{src} -> {dst}.{method} timed out"))

        timer = self.sim.timeout(deadline)
        timer.callbacks.append(expire)
        # The winner of the reply/deadline race cancels the loser, so no
        # dead timer lingers in the heap after the call settles.
        state["timer"] = timer

        request_bytes = HEADER_BYTES + size_of(method) + size_of(payload)
        target = self.nodes.get(dst)
        if target is None:
            # Unknown address: fail fast (a real stack would ICMP-reject).
            self.sim._schedule_now(self._fail_fast, result, state, NodeUnknown(dst))
            return result

        delay = self.link.delay(request_bytes)
        faults = self.faults
        fate = None
        if faults is not None:
            now = self.sim.now
            scale = faults.brownout_factor(src, now)
            if scale != 1.0:
                # Brownout: the sender's NIC serves bytes `scale` slower.
                delay += (request_bytes / self.link.bandwidth) * (scale - 1.0)
            fate = faults.message_fate(src, dst, now)
            delay += fate.extra_delay
        if self.contention is not None:
            delay += self.contention.transfer_wait(
                src, dst, flow, self.sim.now,
                request_bytes / self.link.bandwidth,
            )
        self.stats.record(self.sim.now, src, dst, method, request_bytes)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.message("rpc_request", src, dst, method, request_bytes, delay)
        if fate is not None:
            if fate.drop:
                # Lost in flight (bytes already charged to the sender);
                # the caller's timer will fire.
                return result
            if fate.duplicate:
                dup = self.sim.timeout(delay + fate.dup_delay)
                dup.callbacks.append(
                    lambda _e: self._deliver(src, dst, method, payload,
                                             result, state)
                )
        arrival = self.sim.timeout(delay)
        arrival.callbacks.append(
            lambda _e: self._deliver(src, dst, method, payload, result, state)
        )
        return result

    def send(self, src: str, dst: str, method: str, payload: Any = None,
             flow: Optional[str] = None) -> None:
        """One-way (unacknowledged) message — used for sub-query shipping
        along storage-node chains, where the paper's optimized strategies
        deliberately avoid response traffic. Dropped silently when the
        destination is unknown or dead, like a datagram."""
        nbytes = HEADER_BYTES + size_of(method) + size_of(payload)
        if dst not in self.nodes:
            return
        delay = self.link.delay(nbytes)
        faults = self.faults
        fate = None
        if faults is not None:
            now = self.sim.now
            scale = faults.brownout_factor(src, now)
            if scale != 1.0:
                delay += (nbytes / self.link.bandwidth) * (scale - 1.0)
            fate = faults.message_fate(src, dst, now)
            delay += fate.extra_delay
        if self.contention is not None:
            if flow is None:
                flow = self._sniff_flow(payload)
            delay += self.contention.transfer_wait(
                src, dst, flow, self.sim.now, nbytes / self.link.bandwidth
            )
        self.stats.record(self.sim.now, src, dst, method, nbytes)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.message("oneway", src, dst, method, nbytes, delay)
        if fate is not None:
            if fate.drop:
                return  # datagram lost in flight
            if fate.duplicate:
                dup = self.sim.timeout(delay + fate.dup_delay)
                dup.callbacks.append(
                    lambda _e: self._deliver_oneway(src, dst, method, payload))
        arrival = self.sim.timeout(delay)
        arrival.callbacks.append(lambda _e: self._deliver_oneway(src, dst, method, payload))

    def _deliver_oneway(self, src: str, dst: str, method: str, payload: Any) -> None:
        target = self.nodes.get(dst)
        if target is None or not target.alive:
            return
        handler = getattr(target, _rpc_attr(method), None)
        if handler is None:
            return
        try:
            outcome = handler(payload, src)
        except Exception:  # noqa: BLE001 - one-way faults vanish, like UDP
            return
        if type(outcome) is GeneratorType:
            self.sim.process(outcome)

    @staticmethod
    def _settle(state: dict) -> bool:
        """Mark the call settled and cancel its deadline timer. Returns
        False when the timeout already won the race."""
        if state["done"]:
            return False
        state["done"] = True
        timer: Optional[Timeout] = state.get("timer")
        if timer is not None:
            timer.cancel()
        return True

    @classmethod
    def _fail_fast(cls, result: Event, state: dict, exc: Exception) -> None:
        if cls._settle(state):
            result.fail(exc)

    def _deliver(
        self, src: str, dst: str, method: str, payload: Any, result: Event, state: dict
    ) -> None:
        target = self.nodes.get(dst)
        if target is None or not target.alive:
            return  # dropped; the caller's timer will fire
        handler = getattr(target, _rpc_attr(method), None)
        if handler is None:
            self._respond_failure(src, dst, method, result, state,
                                  RemoteError(f"{dst} has no handler rpc_{method}"))
            return
        try:
            outcome = handler(payload, src)
        except Exception as exc:  # noqa: BLE001 - remote fault becomes RemoteError
            self._respond_failure(src, dst, method, result, state,
                                  RemoteError(f"{dst}.{method}: {exc}"))
            return
        if type(outcome) is GeneratorType:
            proc = self.sim.process(outcome)
            proc.callbacks.append(
                lambda event: self._respond_event(src, dst, method, event, result, state, target)
            )
        else:
            self._respond_value(src, dst, method, outcome, result, state, target)

    def _respond_event(
        self, src: str, dst: str, method: str, event: Event, result: Event, state: dict, target: Node
    ) -> None:
        if event.failure is not None:
            self._respond_failure(src, dst, method, result, state,
                                  RemoteError(f"{dst}.{method}: {event.failure}"))
        else:
            self._respond_value(src, dst, method, event.value, result, state, target)

    def _respond_value(
        self, src: str, dst: str, method: str, value: Any, result: Event, state: dict, target: Node
    ) -> None:
        if not target.alive:
            return  # crashed before replying
        response_bytes = HEADER_BYTES + size_of(value)
        self.stats.record(self.sim.now, dst, src, f"{method}.reply", response_bytes)
        total_delay = self.link.delay(response_bytes) + target.compute_delay
        faults = self.faults
        fate = None
        if faults is not None:
            now = self.sim.now
            scale = faults.brownout_factor(dst, now)
            if scale != 1.0:
                # Browned-out responder: its compute and egress both slow.
                total_delay += (
                    response_bytes / self.link.bandwidth + target.compute_delay
                ) * (scale - 1.0)
            fate = faults.message_fate(dst, src, now)
            total_delay += fate.extra_delay
        if self.contention is not None:
            flow = state.get("flow")
            now = self.sim.now
            compute_wait = self.contention.compute_wait(
                dst, flow, now, target.compute_delay
            )
            total_delay += compute_wait + self.contention.transfer_wait(
                dst, src, flow, now + compute_wait + target.compute_delay,
                response_bytes / self.link.bandwidth,
            )
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.message("rpc_reply", dst, src, f"{method}.reply",
                           response_bytes, total_delay)

        def finish(_event: Event) -> None:
            if self._settle(state):
                result.succeed(value)

        if fate is not None:
            if fate.drop:
                return  # reply lost in flight; the caller's timer fires
            if fate.duplicate:
                dup = self.sim.timeout(total_delay + fate.dup_delay)
                dup.callbacks.append(finish)
        arrival = self.sim.timeout(total_delay)
        arrival.callbacks.append(finish)

    def _respond_failure(
        self, src: str, dst: str, method: str, result: Event, state: dict, exc: Exception
    ) -> None:
        response_bytes = HEADER_BYTES + size_of(str(exc))
        delay = self.link.delay(response_bytes)
        faults = self.faults
        fate = None
        if faults is not None:
            now = self.sim.now
            scale = faults.brownout_factor(dst, now)
            if scale != 1.0:
                delay += (response_bytes / self.link.bandwidth) * (scale - 1.0)
            fate = faults.message_fate(dst, src, now)
            delay += fate.extra_delay
        if self.contention is not None:
            delay += self.contention.transfer_wait(
                dst, src, state.get("flow"), self.sim.now,
                response_bytes / self.link.bandwidth,
            )
        self.stats.record(self.sim.now, dst, src, f"{method}.error", response_bytes)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.message("rpc_error", dst, src, f"{method}.error",
                           response_bytes, delay, detail={"error": str(exc)})

        def finish(_event: Event) -> None:
            if self._settle(state):
                result.fail(exc)

        if fate is not None:
            if fate.drop:
                return  # error reply lost; the caller's timer fires
            if fate.duplicate:
                dup = self.sim.timeout(delay + fate.dup_delay)
                dup.callbacks.append(finish)
        arrival = self.sim.timeout(delay)
        arrival.callbacks.append(finish)
