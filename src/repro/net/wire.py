"""Compact wire formats for shipped solution sets (transmission PR).

"Minimizing the total amount of intersite data transmission" is the
paper's principal optimization criterion (Sect. IV-C). The executor's
plain encoding charges every solution mapping its full structural size,
so a term repeated across a thousand rows is paid a thousand times. This
module provides the two payload types that cut that cost:

* :class:`SolutionBatch` — dictionary-delta encoding of a solution set:
  variables and terms are tabled once, rows become small index pairs.
  ``wire_size()`` is exact and *adaptive*: when the dictionary would be
  larger than the naive list (tiny sets with no repetition), the batch is
  charged at the naive size instead, so a batch never costs more than
  ``naive + BATCH_HEADER_BYTES``.
* :class:`JoinDigest` — a semijoin pre-filter: the projection of a
  resident solution set onto the prospective join variables, shipped as
  an exact key set when small and as a counting-free Bloom filter above
  a threshold (deterministic seeded hashing via
  :func:`repro.chord.hashing.hash_terms_seeded`). False positives only
  cost bytes (the join still filters); false negatives are impossible.

Both types implement ``wire_size()`` and therefore integrate with
:func:`repro.net.sizes.size_of` wherever they are embedded in payloads.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..chord.hashing import hash_terms_seeded
from ..rdf.terms import RDFTerm, Variable
from ..sparql.solutions import SolutionMapping, _Schema
from .sizes import size_of

__all__ = [
    "SolutionBatch",
    "JoinDigest",
    "FilteredResult",
    "BATCH_HEADER_BYTES",
    "DIGEST_HEADER_BYTES",
    "DICT_WIRE_SCALE",
    "PRUNED_COUNTER_BYTES",
    "as_solution_set",
    "encode_solutions",
    "mapping_sort_key",
]

#: Fixed batch envelope: mode flag + three table lengths (the bounded
#: header of the "never larger than naive" guarantee).
BATCH_HEADER_BYTES = 6

#: Fixed digest envelope: mode flag, variable count, key/bit count.
DIGEST_HEADER_BYTES = 8

#: Prior used by the adaptive planner for how much of a typical FOAF
#: solution batch survives dictionary encoding (measured on the E1/E2
#: workloads; only relative costs matter for the strategy choice).
DICT_WIRE_SCALE = 0.6

#: A digest-filtered reply carries how many rows the sender dropped, so
#: the initiator's report can attribute the semijoin's effect. One fixed
#: counter, part of the documented digest overhead bound.
PRUNED_COUNTER_BYTES = 4

_CONTAINER_OVERHEAD = 8
_PER_ITEM_OVERHEAD = 2


def mapping_sort_key(mu: SolutionMapping):
    """Canonical, deterministic ordering of solution mappings.

    Cached on the mapping: canonical ordering is applied every time a set
    ships, and the same rows ship repeatedly along an aggregation chain.
    """
    key = mu._skey
    if key is None:
        key = mu._skey = tuple((v.name, t.n3()) for v, t in mu.items())
    return key


def _index_width(count: int) -> int:
    if count <= 0xFF:
        return 1
    if count <= 0xFFFF:
        return 2
    return 4


class SolutionBatch:
    """A dictionary-delta encoded set of solution mappings.

    Variables and RDF terms appear once each in side tables; every row is
    a tuple of (variable index, term index) pairs. Construction is
    deterministic: rows are canonically ordered and the term table is
    filled in first-appearance order over that ordering, so encoding the
    same set twice (or from any iteration order) yields identical
    structure and identical ``wire_size()``.
    """

    __slots__ = ("variables", "terms", "rows", "mode", "_wire")

    def __init__(
        self,
        variables: Tuple[Variable, ...],
        terms: Tuple[RDFTerm, ...],
        rows: Tuple[Tuple[Tuple[int, int], ...], ...],
        mode: str,
        wire: int,
    ) -> None:
        self.variables = variables
        self.terms = terms
        self.rows = rows
        self.mode = mode
        self._wire = wire

    # ------------------------------------------------------------ encoding

    @classmethod
    def encode(cls, solutions: Iterable[SolutionMapping]) -> "SolutionBatch":
        ordered = sorted(set(solutions), key=mapping_sort_key)
        var_index: Dict[Variable, int] = {}
        term_index: Dict[RDFTerm, int] = {}
        variables: List[Variable] = []
        terms: List[RDFTerm] = []
        rows: List[Tuple[Tuple[int, int], ...]] = []
        naive = _CONTAINER_OVERHEAD
        npairs = 0
        # Rows sharing a schema share variable indices; resolve the
        # variable table once per schema instead of once per row. The
        # tables still fill in first-appearance order over the canonical
        # row ordering, so the encoding is unchanged.
        schema_vis: Dict[object, Tuple[int, ...]] = {}
        for mu in ordered:
            naive += size_of(mu) + _PER_ITEM_OVERHEAD
            schema = mu._schema
            vis = schema_vis.get(schema)
            if vis is None:
                resolved: List[int] = []
                for var in schema.vars:
                    vi = var_index.get(var)
                    if vi is None:
                        vi = var_index[var] = len(variables)
                        variables.append(var)
                    resolved.append(vi)
                vis = schema_vis[schema] = tuple(resolved)
            row: List[Tuple[int, int]] = []
            for vi, term in zip(vis, mu._values):
                ti = term_index.get(term)
                if ti is None:
                    ti = term_index[term] = len(terms)
                    terms.append(term)
                row.append((vi, ti))
            npairs += len(row)
            rows.append(tuple(row))

        var_w = _index_width(len(variables))
        term_w = _index_width(len(terms))
        dict_size = (
            _CONTAINER_OVERHEAD
            + sum(size_of(v) + _PER_ITEM_OVERHEAD for v in variables)
            + _CONTAINER_OVERHEAD
            + sum(size_of(t) + _PER_ITEM_OVERHEAD for t in terms)
            + _CONTAINER_OVERHEAD
            + len(rows) * _PER_ITEM_OVERHEAD
            + npairs * (var_w + term_w)
        )
        mode = "dict" if dict_size <= naive else "plain"
        wire = BATCH_HEADER_BYTES + min(dict_size, naive)
        return cls(tuple(variables), tuple(terms), tuple(rows), mode, wire)

    def decode(self) -> Set[SolutionMapping]:
        variables = self.variables
        terms = self.terms
        # Rows sharing a variable-index signature share a schema; the
        # (schema, permutation) plan is computed once per signature.
        plans: Dict[Tuple[int, ...], Tuple[_Schema, Tuple[int, ...]]] = {}
        out: Set[SolutionMapping] = set()
        add = out.add
        for row in self.rows:
            signature = tuple([vi for vi, _ in row])
            plan = plans.get(signature)
            if plan is None:
                row_vars = [variables[vi] for vi in signature]
                order = sorted(range(len(row_vars)),
                               key=lambda i: row_vars[i].name)
                schema = _Schema.of(tuple([row_vars[i] for i in order]))
                plan = plans[signature] = (schema, tuple(order))
            schema, order = plan
            row_terms = [terms[ti] for _, ti in row]
            add(SolutionMapping._make(
                schema, tuple([row_terms[i] for i in order])
            ))
        return out

    # ---------------------------------------------------------------- misc

    def wire_size(self) -> int:
        return self._wire

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SolutionBatch {len(self.rows)} rows, {len(self.terms)} terms, "
            f"{self.mode}, {self._wire}B>"
        )


class JoinDigest:
    """A compact summary of the join-key values present in a resident
    solution set, used to pre-filter the other operand before it ships.

    ``prunable`` is False when some resident row does not bind every
    digest variable — such a row is compatible with *any* sender row on
    those variables, so no pruning is sound and ``allows`` admits
    everything. Likewise a sender row missing a digest variable is always
    admitted. Exact mode stores the projected key tuples themselves;
    Bloom mode stores a bit array with ``nhashes`` seeded positions per
    key (no false negatives, bounded false positives).
    """

    __slots__ = ("variables", "mode", "keys", "nbits", "nhashes", "bits", "prunable")

    def __init__(
        self,
        variables: Tuple[Variable, ...],
        mode: str,
        keys: FrozenSet[Tuple[RDFTerm, ...]],
        nbits: int,
        nhashes: int,
        bits: int,
        prunable: bool,
    ) -> None:
        self.variables = variables
        self.mode = mode
        self.keys = keys
        self.nbits = nbits
        self.nhashes = nhashes
        self.bits = bits
        self.prunable = prunable

    # ------------------------------------------------------------- building

    @classmethod
    def build(
        cls,
        solutions: Iterable[SolutionMapping],
        variables: Sequence[Variable],
        exact_threshold: int = 64,
        bloom_bits: int = 10,
    ) -> "JoinDigest":
        ordered_vars = tuple(sorted(set(variables), key=lambda v: v.name))
        if not ordered_vars:
            return cls(ordered_vars, "exact", frozenset(), 0, 0, 0, False)
        keys: Set[Tuple[RDFTerm, ...]] = set()
        for mu in solutions:
            values = tuple(mu.get(v) for v in ordered_vars)
            if any(t is None for t in values):
                # A resident row that does not bind every digest variable
                # is compatible with anything: pruning is unsound.
                return cls(ordered_vars, "exact", frozenset(), 0, 0, 0, False)
            keys.add(values)
        if len(keys) <= exact_threshold:
            return cls(ordered_vars, "exact", frozenset(keys), 0, 0, 0, True)
        nbits = max(64, len(keys) * bloom_bits)
        nbits = ((nbits + 7) // 8) * 8
        nhashes = max(1, min(8, round(0.693 * bloom_bits)))
        bits = 0
        for key in keys:
            for seed in range(nhashes):
                bits |= 1 << hash_terms_seeded(key, seed, nbits)
        return cls(ordered_vars, "bloom", frozenset(), nbits, nhashes, bits, True)

    # ------------------------------------------------------------ filtering

    def allows(self, mu: SolutionMapping) -> bool:
        """May *mu* join some resident row? (Never a false negative.)"""
        if not self.prunable:
            return True
        values = tuple(mu.get(v) for v in self.variables)
        if any(t is None for t in values):
            return True
        if self.mode == "exact":
            return values in self.keys
        for seed in range(self.nhashes):
            if not (self.bits >> hash_terms_seeded(values, seed, self.nbits)) & 1:
                return False
        return True

    def filter(self, solutions: Iterable[SolutionMapping]) -> Set[SolutionMapping]:
        return {mu for mu in solutions if self.allows(mu)}

    # ---------------------------------------------------------------- misc

    def wire_size(self) -> int:
        base = DIGEST_HEADER_BYTES + sum(
            size_of(v) + _PER_ITEM_OVERHEAD for v in self.variables
        )
        if self.mode == "bloom":
            return base + self.nbits // 8
        return base + sum(
            sum(size_of(t) for t in key) + _PER_ITEM_OVERHEAD for key in self.keys
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = (f"{len(self.keys)} keys" if self.mode == "exact"
                 else f"{self.nbits} bits")
        return f"<JoinDigest {self.mode} {inner}, {self.wire_size()}B>"


class FilteredResult:
    """A shipped solution set plus the count of rows a digest dropped at
    the sender — the provider-side reply format of the semijoin path.
    Costs exactly the payload plus the fixed pruned counter."""

    __slots__ = ("data", "pruned")

    def __init__(self, data, pruned: int) -> None:
        self.data = data
        self.pruned = pruned

    def wire_size(self) -> int:
        return size_of(self.data) + PRUNED_COUNTER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FilteredResult {self.pruned} pruned>"


# ------------------------------------------------------------------ helpers


def encode_solutions(solutions: Iterable[SolutionMapping], encode: bool):
    """The on-wire representation of a solution set: a
    :class:`SolutionBatch` when dictionary encoding is on, else the
    canonical sorted list (the original wire format, byte-identical)."""
    if encode:
        return SolutionBatch.encode(solutions)
    return sorted(set(solutions), key=mapping_sort_key)


def as_solution_set(data) -> Set[SolutionMapping]:
    """Decode whatever arrived on the wire back into a solution set."""
    if isinstance(data, SolutionBatch):
        return data.decode()
    return set(data)
