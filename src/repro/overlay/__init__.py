"""The hybrid two-level P2P overlay (S9): index + storage nodes, the
six-key distributed index, location tables, membership, replication."""

from .keys import KeyKind, SHAPE_TO_KEY, index_keys, key_for_pattern, ring_key
from .location_table import LocationEntry, LocationTable
from .peer import QueryPeer
from .storage_node import StorageNode
from .index_node import IndexNode, PRIMITIVE_STRATEGIES
from .system import FIG1_INDEX_IDS, FIG1_STORAGE_IDS, HybridSystem, fig1_network
from .membership import (
    depart_index_node,
    depart_storage_node,
    fail_index_node,
    fail_storage_node,
    join_index_node,
    restart_index_node,
    restart_storage_node,
)

__all__ = [
    "KeyKind",
    "SHAPE_TO_KEY",
    "index_keys",
    "key_for_pattern",
    "ring_key",
    "LocationEntry",
    "LocationTable",
    "QueryPeer",
    "StorageNode",
    "IndexNode",
    "PRIMITIVE_STRATEGIES",
    "HybridSystem",
    "fig1_network",
    "FIG1_INDEX_IDS",
    "FIG1_STORAGE_IDS",
    "join_index_node",
    "depart_index_node",
    "fail_index_node",
    "fail_storage_node",
    "depart_storage_node",
    "restart_index_node",
    "restart_storage_node",
]
