"""Index nodes: ring members hosting the distributed index.

An index node is a Chord participant (Sect. III-A) that additionally
keeps a :class:`~repro.overlay.location_table.LocationTable` for the keys
it owns (Sect. III-B), orchestrates primitive-query resolution over the
storage nodes listed there (Sect. IV-C), and replicates its rows to ring
successors so that the system "can eventually recover" from index-node
failures (Sect. III-D).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..cache.keys import canonical_rows, pattern_cache_key, rebind_rows
from ..chord.idspace import IdentifierSpace
from ..chord.node import ChordNode
from ..net.transport import RpcError
from ..net.wire import FilteredResult, as_solution_set, encode_solutions
from ..sparql.solutions import union as omega_union
from .location_table import LocationEntry, LocationTable
from .peer import QueryPeer, _mapping_sort_key

__all__ = ["IndexNode", "PRIMITIVE_STRATEGIES"]

#: Strategy names understood by rpc_execute_primitive (Sect. IV-C):
#: * ``basic`` — parallel fan-out, union at the index node (assembly site)
#: * ``chained`` — in-network aggregation along an arbitrary node sequence
#: * ``freq`` — chain ordered by increasing frequency; the node with the
#:   most matching triples is last and returns directly to the initiator.
PRIMITIVE_STRATEGIES = ("basic", "chained", "freq")


class IndexNode(QueryPeer, ChordNode):
    """A ring node hosting part of the two-level distributed index."""

    def __init__(
        self,
        node_id: str,
        ident: int,
        space: IdentifierSpace,
        successor_list_size: int = 3,
        replication_factor: int = 1,
        table: Optional[LocationTable] = None,
    ) -> None:
        ChordNode.__init__(self, node_id, ident, space, successor_list_size)
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        # An externally built table — e.g. a
        # :class:`~repro.storage.durable.DurableLocationTable` recovered
        # from disk — slots in transparently; every index write below
        # goes through it.
        self.table = table if table is not None else LocationTable()
        #: Rows replicated here by ring predecessors (kept apart from the
        #: primary table so load accounting stays honest).
        self.replicas = LocationTable()
        self.replication_factor = replication_factor
        #: Storage nodes attached beneath this index node (Sect. III-A).
        self.attached_storage: List[str] = []

    # ------------------------------------------------- index write handlers

    def rpc_index_put(self, payload: Dict[str, Any], src: str) -> int:
        """Install location-table entries; replicate to successors.

        Payload: ``entries`` — list of (key, storage_id, frequency).
        """
        entries = payload["entries"]
        for key, storage_id, freq in entries:
            self.table.add(key, storage_id, freq)
        self._replicate(entries)
        return len(entries)

    def rpc_replica_put(self, payload: Dict[str, Any], src: str) -> None:
        for key, storage_id, freq in payload["entries"]:
            self.replicas.import_row(key, {storage_id: freq})

    def rpc_index_remove_storage(self, payload: Dict[str, Any], src: str) -> int:
        """Remove all entries of a departed/failed storage node (III-D)."""
        storage_id = payload["storage_id"]
        touched = self.table.remove_storage_node(storage_id)
        self.replicas.remove_storage_node(storage_id)
        if storage_id in self.attached_storage:
            self.attached_storage.remove(storage_id)
        return touched

    def _replicate(self, entries) -> None:
        if self.replication_factor <= 1 or self.network is None:
            return
        for ref in self.successor_list[: self.replication_factor - 1]:
            if ref == self.ref:
                continue
            self.network.send(
                self.node_id, ref.node_id, "replica_put", {"entries": entries}
            )

    def rpc_publish(self, payload: Dict[str, Any], src: str):
        """Publication entry point for an attached storage node.

        Routes each key to its owning index node with real
        ``find_successor`` lookups, then installs rows in per-owner
        batches — the index-construction process of Sect. III-B.
        """
        storage_id = payload["storage_id"]
        by_owner: Dict[str, List] = {}
        pending = []
        for key, freq in payload["entries"]:
            if self.owns(key):
                by_owner.setdefault(self.node_id, []).append((key, storage_id, freq))
            else:
                pending.append(
                    (key, freq, self.call(self.node_id, "find_successor", {"key": key}))
                )
        if pending:
            # Resolve all owner lookups in parallel (they are independent).
            results = yield self.sim.all_of([event for _, _, event in pending])
            for (key, freq, _), result in zip(pending, results):
                by_owner.setdefault(result.ref.node_id, []).append(
                    (key, storage_id, freq)
                )
        installed = 0
        for owner in sorted(by_owner):
            batch = by_owner[owner]
            if owner == self.node_id:
                installed += self.rpc_index_put({"entries": batch}, self.node_id)
            else:
                installed += yield self.call(owner, "index_put", {"entries": batch})
        return installed

    # ------------------------------------------------------- index lookups

    def locate(self, key: int) -> List[LocationEntry]:
        """Location-table row for *key*, falling back to replicas.

        The replica fallback is the takeover path after a predecessor
        failure: this node now owns the key range and serves it from the
        replicated rows, which it promotes on first touch.
        """
        entries = self.table.lookup(key)
        if entries:
            return entries
        replica_row = self.replicas.row_dict(key)
        if replica_row:
            self.table.import_row(key, replica_row)
            self.replicas.drop_row(key)
            entries = self.table.lookup(key)
            # Takeover makes this node the row's primary: push copies to
            # our *own* successors right away, otherwise the promoted row
            # exists exactly once and one more failure silently loses it.
            if self.replication_factor > 1 and self.network is not None:
                self._replicate(
                    [(key, e.storage_id, e.frequency) for e in entries]
                )
                self.network.failover.promotions_rereplicated += 1
            return entries
        return []

    def rpc_index_lookup(self, payload: Dict[str, Any], src: str) -> List[LocationEntry]:
        return self.locate(payload["key"])

    def rpc_replica_lookup(self, payload: Dict[str, Any], src: str) -> List[LocationEntry]:
        """Non-promoting row read, for hedged duplicate lookups: serve the
        primary row if we hold one, else the replica copy *as is* — the
        real owner may be merely slow, not dead, and a promotion here
        would fork the row's ownership."""
        key = payload["key"]
        entries = self.table.lookup(key)
        if entries:
            return entries
        row = self.replicas.row_dict(key)
        return [LocationEntry(storage_id, freq)
                for storage_id, freq in sorted(row.items())]

    def rpc_replica_drop(self, payload: Dict[str, Any], src: str) -> int:
        """Drop the replica rows we hold for *keys* (graceful-departure
        sweep: the primary moved to an heir, so copies replicated by the
        old owner are stale and a later takeover could promote outdated
        frequencies)."""
        dropped = 0
        for key in payload["keys"]:
            if self.replicas.row_dict(key):
                self.replicas.drop_row(key)
                dropped += 1
        if dropped and self.network is not None:
            self.network.failover.replica_rows_swept += dropped
        return dropped

    def rpc_rereplicate(self, payload: Dict[str, Any], src: str) -> int:
        """Replicate the primary rows for *keys* to our successors — run
        by an heir after inheriting a departed predecessor's table, so the
        moved rows regain their full replica count."""
        entries = []
        for key in payload["keys"]:
            for e in self.table.lookup(key):
                entries.append((key, e.storage_id, e.frequency))
        if entries:
            self._replicate(entries)
        return len(entries)

    # ----------------------------------------- primitive query orchestration

    def rpc_execute_primitive(self, payload: Dict[str, Any], src: str):
        """Resolve a single-triple-pattern sub-query (Sect. IV-C).

        Payload: ``algebra`` (the sub-query — a BGP of one pattern,
        possibly wrapped in a pushed-down Filter), ``key`` (ring key of
        the pattern), ``strategy``, plus delivery directives:

        * ``deposit`` — assemble here and keep the result in this node's
          mailbox under ``corr`` (the basic conjunction scheme of IV-D,
          where the next step ships index-node to index-node);
        * ``final`` — the site the result must reach: for *basic* the
          assembled union is shipped there one-way; for *chained*/*freq*
          the chain's last node delivers there (``end_at`` pins the shared
          site to the end of the route, as in the paper's D1 example);
        * neither — *basic* replies with the data directly (the reply to
          the caller is the N7→N1 transfer of the paper's basic scheme).

        Under a fault plan the request is idempotent per corr: the first
        delivery executes and settles an inflight event with its ack; a
        duplicate (message duplication, or a retry whose original was
        merely slow) awaits that event and returns the equivalent ack —
        never a second execution, never a second chain kickoff. A corr
        the initiator already tombstoned is acknowledged emptily without
        executing at all.
        """
        if self._chaos_keep:
            corr = payload.get("corr")
            if corr is not None:
                if corr in self._dead_corrs:
                    self.network.failover.duplicates_dropped += 1
                    return {"mode": "direct", "data": []}
                inflight = self._inflight
                done = inflight.get(corr)
                if done is not None:
                    self.network.failover.duplicates_dropped += 1
                    return self._await_primitive(done)
                done = inflight[corr] = self.sim.event()
                return self._execute_primitive_once(payload, src, done)
        return self._execute_primitive(payload, src)

    def _await_primitive(self, done):
        """Generator: a duplicate request rides the first execution's
        inflight event and replies with the same ack."""
        reply = yield done
        return reply

    def _execute_primitive_once(self, payload: Dict[str, Any], src: str, done):
        """Generator: run the primitive and settle the inflight event so
        any duplicate deliveries observe this execution's outcome."""
        try:
            reply = yield from self._execute_primitive(payload, src)
        except BaseException as exc:
            if not done.triggered:
                done.fail(exc)
            raise
        if not done.triggered:
            done.succeed(reply)
        return reply

    def _execute_primitive(self, payload: Dict[str, Any], src: str):
        strategy = payload.get("strategy", "basic")
        entries = self.locate(payload["key"])
        cache_cfg = payload.get("cache")
        if cache_cfg is not None:
            served = yield from self._execute_cached(
                payload, src, entries, cache_cfg)
            if served is not None:
                return served
        if strategy == "basic":
            result, pruned, dropped = yield from self._execute_basic(
                payload, entries)
            return self._primitive_reply(payload, src, result, pruned,
                                         dropped)
        if strategy in ("chained", "freq"):
            route = self._route(entries, strategy, end_at=payload.get("end_at"))
            if not route:
                return {"mode": "direct", "data": []}
            self._kickoff_chain(payload, route)
            return {"mode": "chained", "route": route}
        raise ValueError(f"unknown primitive strategy {strategy!r}")

    def _primitive_reply(self, payload: Dict[str, Any], src: str,
                         result, pruned, dropped: int = 0):
        """Deliver a basic-scheme result per the payload's directives
        (deposit here / ship to ``final`` / reply directly).

        ``dropped`` — providers that vanished during the fan-out — rides
        back in the ack only when the initiator asked for it via the
        ``partial`` payload flag, keeping the wire byte-identical for
        every other configuration.
        """
        corr = payload.get("corr")
        flag_partial = dropped and payload.get("partial")
        if payload.get("deposit"):
            self.mailbox[corr] = set(result)
            ack = {"mode": "deposited", "count": len(result)}
            if pruned is not None:
                ack["pruned"] = pruned
            if flag_partial:
                ack["dropped"] = dropped
            return ack
        final = payload.get("final")
        encode = payload.get("encode", False)
        if final is not None and final != src:
            assert self.network is not None
            delivery = {"corr": corr,
                        "data": encode_solutions(result, encode),
                        "notify": payload.get("notify")}
            if "notify_corr" in payload:
                delivery["notify_corr"] = payload["notify_corr"]
            self.network.send(self.node_id, final, "deliver", delivery)
            ack = {"mode": "shipped", "count": len(result)}
            if flag_partial:
                ack["dropped"] = dropped
            return ack
        ack = {"mode": "direct", "data": encode_solutions(result, encode)}
        if flag_partial:
            ack["dropped"] = dropped
        return ack

    def _execute_cached(self, payload: Dict[str, Any], src: str,
                        entries: List[LocationEntry], cfg: Dict[str, int]):
        """Generator: serve a primitive through the result cache (S13).

        Returns the finished ack on a hit or an admission fill, or None
        when the normal (uncached) path should run — either the
        sub-query is uncacheable (a pushed-down FILTER rides with it) or
        the key has not yet cleared the admission gate.

        A hit serves the *full* memoized rows and applies the request's
        shipping decorations (digest pre-filter, projection) right here,
        where the providers would have applied them; so one cached entry
        serves every projection/digest variant of its pattern. A fill
        forces an undecorated basic fan-out — chains deliver past this
        node, so only the fan-out lets the owner see the rows it admits.
        """
        algebra = payload["algebra"]
        patterns = getattr(algebra, "patterns", None)
        if patterns is None or len(patterns) != 1:
            return None
        ckey, variables = pattern_cache_key(patterns[0])
        cache = self.result_cache_for(cfg)
        entry, admit = cache.probe(ckey)
        tracer = self.sim.tracer
        if entry is not None:
            span = tracer.span("cache", key=ckey, outcome="hit")
            solutions = rebind_rows(entry.value, variables)
            result, pruned = self._decorate(solutions, payload)
            span.close(rows=len(result))
            return self._primitive_reply(payload, src, result, pruned)
        if not admit:
            return None
        # Stamps are captured before the fan-out: a delta racing the
        # evaluation makes the admitted entry dead on arrival.
        key = payload["key"]
        stamps = {key: self.network.data_epochs.get(key)}
        membership = self.network.membership_epoch
        span = tracer.span("cache", key=ckey, outcome="fill")
        bare = {k: v for k, v in payload.items()
                if k not in ("digest", "project")}
        full, _, _dropped = yield from self._execute_basic(bare, entries)
        cache.admit(ckey, canonical_rows(full, variables), variables,
                    stamps, membership)
        result, pruned = self._decorate(set(full), payload)
        span.close(rows=len(result))
        return self._primitive_reply(payload, src, result, pruned)

    @staticmethod
    def _decorate(solutions, payload: Dict[str, Any]):
        """Apply a request's shipping decorations to full cached rows —
        the exact transforms providers apply before shipping."""
        pruned = None
        digest = payload.get("digest")
        if digest is not None:
            kept = digest.filter(solutions)
            pruned = len(solutions) - len(kept)
            solutions = kept
        keep = payload.get("project")
        if keep is not None:
            solutions = {mu.project(keep) for mu in solutions}
        return sorted(solutions, key=_mapping_sort_key), pruned

    def _execute_basic(self, payload: Dict[str, Any], entries: List[LocationEntry]):
        """Parallel fan-out to every target storage node; union here.

        ``storage_timeout`` (from the initiator's options) bounds how long
        we wait for each provider before declaring it failed.
        """
        assert self.network is not None
        per_node_timeout = payload.get("storage_timeout")
        # Deadline propagation: the initiator's remaining budget rides in
        # the payload; clamp the per-provider wait to it. A timeout under
        # a clamped wait may just mean the budget is tight — not that the
        # provider died — so stale-entry cleanup is suppressed then.
        blame_timeouts = True
        deadline = payload.get("deadline")
        if deadline is not None:
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise ValueError("query deadline exceeded at the index node")
            if per_node_timeout is None or remaining < per_node_timeout:
                per_node_timeout = remaining
                blame_timeouts = False
        sub_query: Dict[str, Any] = {"algebra": payload["algebra"]}
        for key in ("digest", "project", "encode"):
            if key in payload:
                sub_query[key] = payload[key]
        # The evaluate sub-queries carry no correlation id, so the owning
        # query's flow (for the contention model) is derived from the
        # orchestrating payload and threaded out-of-band — the wire
        # payload stays unchanged.
        flow = self.network._sniff_flow(payload)
        calls = [
            (
                entry.storage_id,
                self.call(
                    entry.storage_id,
                    "evaluate",
                    sub_query,
                    timeout=per_node_timeout,
                    flow=flow,
                ),
            )
            for entry in entries
        ]
        solutions: set = set()
        pruned = 0 if "digest" in payload else None
        dropped = 0
        for storage_id, event in calls:
            try:
                batch = yield event
            except RpcError:
                if not blame_timeouts:
                    raise ValueError(
                        "query deadline exceeded during storage fan-out")
                # No acknowledgement within the timeout: the storage node
                # is gone — drop its stale entries (Sect. III-D). Under
                # crash-stop that keeps the answer exact (a dead
                # provider's data left the dataset); under message loss
                # the provider may be alive and its rows merely missing,
                # so the drop count rides back to initiators that asked
                # for partial-result accounting.  With a fault injector
                # installed a timeout is exactly that ambiguous signal —
                # deleting a live provider's row would silently shrink
                # every later query's answer — so the destructive cleanup
                # is suppressed and only the drop count is kept.
                if self.network.faults is None:
                    self.table.remove_storage_node(storage_id)
                    self.replicas.remove_storage_node(storage_id)
                dropped += 1
                continue
            if isinstance(batch, FilteredResult):
                pruned = (pruned or 0) + batch.pruned
                batch = batch.data
            solutions = omega_union(solutions, as_solution_set(batch))
        return sorted(solutions, key=_mapping_sort_key), pruned, dropped

    def _route(
        self,
        entries: List[LocationEntry],
        strategy: str,
        end_at: Optional[str] = None,
    ) -> List[str]:
        if strategy == "freq":
            # Increasing frequency; the largest provider is the final node
            # and returns the result directly to the initiator (IV-C).
            ordered = sorted(entries, key=lambda e: (e.frequency, e.storage_id))
        else:
            ordered = sorted(entries, key=lambda e: e.storage_id)
        route = [e.storage_id for e in ordered]
        if end_at is not None and end_at in route:
            # The shared join site is visited last (IV-D: the chains for
            # P1 and P2 both end at D1).
            route.remove(end_at)
            route.append(end_at)
        return route

    def _kickoff_chain(self, payload: Dict[str, Any], route: List[str]) -> None:
        assert self.network is not None
        first, rest = route[0], route[1:]
        step = {
            "algebra": payload["algebra"],
            "acc": [],
            "route": rest,
            "final": payload["final"],
            "corr": payload["corr"],
            "notify": payload.get("notify"),
        }
        for key in ("digest", "project", "encode", "notify_corr"):
            if key in payload:
                step[key] = payload[key]
        self.network.send(self.node_id, first, "chain_step", step)

    def rpc_get_attached(self, payload: Any, src: str) -> List[str]:
        """Storage nodes attached beneath this index node (used by the
        ring walk that resolves fully-unbound patterns)."""
        return list(self.attached_storage)

    # --------------------------------------------- key transfer (Chord hook)

    def export_keys(self):
        return list(self.table.export_range())

    def import_keys(self, items: Dict[int, Any]) -> None:
        for key, row in items.items():
            self.table.import_row(key, row)

    def drop_keys(self, keys: Iterable[int]) -> None:
        for key in list(keys):
            self.table.drop_row(key)
