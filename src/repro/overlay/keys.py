"""The six-key distributed index scheme of Sect. III-B.

RDFPeers hashes each triple on ⟨s⟩, ⟨p⟩ and ⟨o⟩; the paper *extends* that
practice by also hashing the pairs ⟨s,p⟩, ⟨p,o⟩ and ⟨s,o⟩, storing the
mapping from each hash value to the providing storage nodes "at six
places ... on the Chord ring". This module computes those keys and maps
each of the eight triple-pattern shapes (Sect. IV-C) to the most selective
index key available for it.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional, Tuple

from ..chord.hashing import hash_terms
from ..chord.idspace import IdentifierSpace
from ..rdf.terms import RDFTerm
from ..rdf.triple import PatternShape, Triple, TriplePattern

__all__ = ["KeyKind", "index_keys", "key_for_pattern", "ring_key"]


class KeyKind(enum.Enum):
    """Which attribute combination a key hashes."""

    S = ("s",)
    P = ("p",)
    O = ("o",)
    SP = ("s", "p")
    PO = ("p", "o")
    SO = ("s", "o")

    @property
    def positions(self) -> Tuple[str, ...]:
        return self.value


#: Pattern shape → the index key that serves it (Sect. IV-C). The fully
#: bound shape uses ⟨s,p⟩ by convention (any pair key identifies the same
#: providers; storage nodes verify the remaining attribute locally). The
#: fully unbound shape has no usable key: the dataset is the union of all
#: storage nodes, so the planner falls back to a ring-wide broadcast.
SHAPE_TO_KEY: Dict[PatternShape, Optional[KeyKind]] = {
    PatternShape.SPO: KeyKind.SP,
    PatternShape.SPo: KeyKind.SP,
    PatternShape.SpO: KeyKind.SO,
    PatternShape.sPO: KeyKind.PO,
    PatternShape.Spo: KeyKind.S,
    PatternShape.sPo: KeyKind.P,
    PatternShape.spO: KeyKind.O,
    PatternShape.spo: None,
}


def _attr_values(triple_or_pattern, kind: KeyKind) -> Tuple[RDFTerm, ...]:
    return tuple(getattr(triple_or_pattern, pos) for pos in kind.positions)


#: (kind, interned term tuple, ring size) → ring identifier. Publishing
#: hashes six SHA-1 keys per triple and every pattern lookup hashes one
#: more; the same terms recur constantly (shared subjects/predicates), so
#: the digests are memoized. Terms are interned, which makes the memo key
#: cheap to hash.
_RING_KEYS: Dict[Tuple[KeyKind, Tuple[RDFTerm, ...], int], int] = {}


def ring_key(kind: KeyKind, values: Tuple[RDFTerm, ...], space: IdentifierSpace) -> int:
    """The ring identifier for one attribute combination.

    The kind name participates in the hash so that e.g. the ⟨s⟩ key of a
    term and the ⟨o⟩ key of the same term land on different identifiers,
    as they would with six independent 'globally known hash functions'.
    """
    memo = (kind, values, space.size)
    key = _RING_KEYS.get(memo)
    if key is None:
        key = _RING_KEYS[memo] = hash_terms((kind.name, *values), space)
    return key


def index_keys(triple: Triple, space: IdentifierSpace) -> Iterator[Tuple[KeyKind, int]]:
    """The six (kind, ring key) pairs under which *triple* is indexed."""
    for kind in KeyKind:
        yield kind, ring_key(kind, _attr_values(triple, kind), space)


def key_for_pattern(
    pattern: TriplePattern, space: IdentifierSpace
) -> Optional[Tuple[KeyKind, int]]:
    """The index key serving *pattern*, or None for (?s, ?p, ?o)."""
    kind = SHAPE_TO_KEY[pattern.shape]
    if kind is None:
        return None
    return kind, ring_key(kind, _attr_values(pattern, kind), space)
