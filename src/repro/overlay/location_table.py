"""The location table kept by every index node (Table I of the paper).

Each row maps a key K_i — the hash value of a single attribute or a pair
of attributes — to the storage nodes sharing matching triples, each with a
*frequency*: "the number of triples that share the same hash value for
their attribute(s)". The frequency drives the optimizations of Sect. IV
(chain ordering, move-small, join ordering), so it is maintained exactly
under publication, unpublication, and node removal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["LocationEntry", "LocationTable"]


@dataclass(frozen=True, slots=True)
class LocationEntry:
    """One (storage node, frequency) cell of a location-table row."""

    storage_id: str
    frequency: int

    def wire_size(self) -> int:
        return len(self.storage_id) + 4


class LocationTable:
    """key → {storage node id → frequency}."""

    __slots__ = ("_rows",)

    def __init__(self) -> None:
        self._rows: Dict[int, Dict[str, int]] = {}

    # -------------------------------------------------------------- updates

    def add(self, key: int, storage_id: str, count: int = 1) -> None:
        """Record *count* more triples from *storage_id* under *key*."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        row = self._rows.setdefault(key, {})
        row[storage_id] = row.get(storage_id, 0) + count

    def remove(self, key: int, storage_id: str, count: Optional[int] = None) -> None:
        """Remove *count* triples (or the whole cell when None)."""
        row = self._rows.get(key)
        if row is None or storage_id not in row:
            return
        if count is None or row[storage_id] <= count:
            del row[storage_id]
        else:
            row[storage_id] -= count
        if not row:
            del self._rows[key]

    def remove_storage_node(self, storage_id: str) -> int:
        """Drop every cell of *storage_id* (stale-entry cleanup, III-D).

        Returns the number of rows touched.
        """
        touched = 0
        for key in list(self._rows):
            row = self._rows[key]
            if storage_id in row:
                del row[storage_id]
                touched += 1
                if not row:
                    del self._rows[key]
        return touched

    # -------------------------------------------------------------- queries

    def lookup(self, key: int) -> List[LocationEntry]:
        """The row for *key*, deterministically ordered by node id."""
        row = self._rows.get(key, {})
        return [
            LocationEntry(storage_id, freq)
            for storage_id, freq in sorted(row.items())
        ]

    def __contains__(self, key: int) -> bool:
        return key in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def keys(self) -> Iterator[int]:
        return iter(self._rows)

    def total_frequency(self, key: int) -> int:
        return sum(self._rows.get(key, {}).values())

    def cell_count(self) -> int:
        """Total number of (key, storage node) cells — the index-load
        metric of experiment E9."""
        return sum(len(row) for row in self._rows.values())

    # ------------------------------------------------------------- transfer

    def export_range(self) -> Iterator[Tuple[int, Dict[str, int]]]:
        """All rows as (key, cells) pairs — for key transfer on join/leave."""
        for key, row in self._rows.items():
            yield key, dict(row)

    def import_row(self, key: int, cells: Dict[str, int]) -> None:
        """Merge a transferred/replicated row (max-merge is idempotent)."""
        row = self._rows.setdefault(key, {})
        for storage_id, freq in cells.items():
            row[storage_id] = max(row.get(storage_id, 0), freq)

    def drop_row(self, key: int) -> None:
        self._rows.pop(key, None)

    def row_dict(self, key: int) -> Dict[str, int]:
        return dict(self._rows.get(key, {}))

    def wire_size(self) -> int:
        return sum(
            8 + sum(len(s) + 4 for s in row) for key, row in self._rows.items()
        )

    # --------------------------------------------------------- presentation

    def format_table(self, key_names: Optional[Dict[int, str]] = None) -> str:
        """Render in the style of the paper's Table I."""
        names = key_names or {}
        lines = ["Key | Storage node (frequency)"]
        for key in sorted(self._rows):
            label = names.get(key, f"K={key}")
            cells = ", ".join(
                f"{entry.storage_id} ({entry.frequency})" for entry in self.lookup(key)
            )
            lines.append(f"{label} | {cells}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocationTable({len(self._rows)} keys, {self.cell_count()} cells)"
