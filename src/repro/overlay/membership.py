"""Membership changes: joins, departures, failures (Sect. III-C/D).

These functions drive the protocol-level membership operations of the
paper on a live :class:`~repro.overlay.system.HybridSystem`:

* **index node join** — ring join plus "the transfer of a portion of the
  location table to the new node from its predecessor node" (III-C; the
  transfer actually comes from the *successor*, which held the keys the
  new node now owns — the paper's wording describes the same range).
* **index node graceful departure** — "requires its immediate successor
  node to take over its location table" (III-D).
* **index node failure** — crash without handover; recovery relies on the
  successor list and the replication policy (III-D).
* **storage node departure/failure** — at most stale location-table
  entries remain, removed on query timeout (III-D) or eagerly on a
  graceful goodbye.
"""

from __future__ import annotations

from typing import Optional

from ..chord.hashing import hash_string
from .index_node import IndexNode
from .storage_node import StorageNode
from .system import HybridSystem

__all__ = [
    "join_index_node",
    "depart_index_node",
    "fail_index_node",
    "depart_storage_node",
    "fail_storage_node",
]


def join_index_node(
    system: HybridSystem,
    node_id: str,
    ident: Optional[int] = None,
    stabilize_rounds: int = 2,
) -> IndexNode:
    """Join a new index node through the Chord protocol.

    The joining node locates its successor, imports the location-table
    rows for the key range it now owns, and the ring re-stabilizes.
    """
    if ident is None:
        ident = hash_string(node_id, system.space)
    node = IndexNode(
        node_id,
        ident,
        system.space,
        successor_list_size=system.successor_list_size,
        replication_factor=system.replication_factor,
    )
    system.ring.add_node(node)
    system.index_nodes[node_id] = node
    system.ring.join_via(node)
    system.ring.stabilize(stabilize_rounds)
    return node


def depart_index_node(system: HybridSystem, node_id: str, stabilize_rounds: int = 2) -> None:
    """Graceful departure: hand the location table to the successor, then
    leave the ring."""
    node = system.index_nodes[node_id]
    successor = node.successor
    if successor != node.ref:
        heir = system.index_nodes[successor.node_id]

        def handover():
            rows = {key: row for key, row in node.table.export_range()}
            count = yield node.call(successor.node_id, "import_keys", rows)
            return count

        system.sim.run_process(handover())
        # Any storage nodes attached beneath the leaver re-attach to the heir.
        for storage_id in node.attached_storage:
            storage = system.storage_nodes.get(storage_id)
            if storage is not None:
                storage.index_node_id = heir.node_id
                heir.attached_storage.append(storage_id)
        node.attached_storage.clear()
    system.network.fail_node(node_id)  # stops answering
    system.network.deregister(node_id)
    del system.index_nodes[node_id]
    del system.ring.nodes[node_id]
    system.ring.stabilize(stabilize_rounds)


def fail_index_node(system: HybridSystem, node_id: str, stabilize_rounds: int = 3) -> None:
    """Crash an index node. Its primary rows are lost; queries recover via
    the successor list (routing) and the replicas (data), per III-D."""
    system.network.fail_node(node_id)
    system.ring.stabilize(stabilize_rounds)


def depart_storage_node(system: HybridSystem, node_id: str) -> None:
    """Graceful storage departure: eagerly unpublish from every index node
    (a courtesy the protocol allows; failure relies on timeouts instead)."""
    storage = system.storage_nodes[node_id]

    def goodbye():
        removed = 0
        for index_id in sorted(system.index_nodes):
            index_node = system.index_nodes[index_id]
            if not index_node.alive:
                continue
            removed += yield system.network.call(
                node_id, index_id, "index_remove_storage", {"storage_id": node_id}
            )
        return removed

    system.sim.run_process(goodbye())
    if storage.index_node_id is not None:
        parent = system.index_nodes.get(storage.index_node_id)
        if parent is not None and node_id in parent.attached_storage:
            parent.attached_storage.remove(node_id)
    system.network.fail_node(node_id)
    system.network.deregister(node_id)
    del system.storage_nodes[node_id]


def fail_storage_node(system: HybridSystem, node_id: str) -> None:
    """Crash a storage node: location tables keep stale pointers that are
    cleaned lazily when queries time out against it (III-D)."""
    system.network.fail_node(node_id)
