"""Membership changes: joins, departures, failures (Sect. III-C/D).

These functions drive the protocol-level membership operations of the
paper on a live :class:`~repro.overlay.system.HybridSystem`:

* **index node join** — ring join plus "the transfer of a portion of the
  location table to the new node from its predecessor node" (III-C; the
  transfer actually comes from the *successor*, which held the keys the
  new node now owns — the paper's wording describes the same range).
* **index node graceful departure** — "requires its immediate successor
  node to take over its location table" (III-D).
* **index node failure** — crash without handover; recovery relies on the
  successor list and the replication policy (III-D).
* **storage node departure/failure** — at most stale location-table
  entries remain, removed on query timeout (III-D) or eagerly on a
  graceful goodbye.
"""

from __future__ import annotations

from typing import Optional

from ..chord.hashing import hash_string
from ..trace import NULL_TRACER
from .index_node import IndexNode
from .storage_node import StorageNode
from .system import HybridSystem

__all__ = [
    "join_index_node",
    "depart_index_node",
    "fail_index_node",
    "depart_storage_node",
    "fail_storage_node",
    "restart_index_node",
    "restart_storage_node",
]


def join_index_node(
    system: HybridSystem,
    node_id: str,
    ident: Optional[int] = None,
    stabilize_rounds: int = 2,
) -> IndexNode:
    """Join a new index node through the Chord protocol.

    The joining node locates its successor, imports the location-table
    rows for the key range it now owns, and the ring re-stabilizes.
    """
    if ident is None:
        ident = hash_string(node_id, system.space)
    node = IndexNode(
        node_id,
        ident,
        system.space,
        successor_list_size=system.successor_list_size,
        replication_factor=system.replication_factor,
    )
    system.ring.add_node(node)
    system.index_nodes[node_id] = node
    system.ring.join_via(node)
    system.ring.stabilize(stabilize_rounds)
    return node


def depart_index_node(system: HybridSystem, node_id: str, stabilize_rounds: int = 2) -> None:
    """Graceful departure: hand the location table to the successor, then
    leave the ring."""
    node = system.index_nodes[node_id]
    successor = node.successor
    if successor != node.ref:
        heir = system.index_nodes[successor.node_id]

        def handover():
            rows = {key: row for key, row in node.table.export_range()}
            count = yield node.call(successor.node_id, "import_keys", rows)
            if system.replication_factor > 1 and rows:
                # The rows just changed primary: the copies this node
                # replicated onto *its* successors are now stale (a later
                # takeover could promote outdated frequencies), and the
                # heir's own successors don't hold the moved rows yet.
                # Sweep the old replicas, then have the heir re-replicate.
                keys = sorted(rows)
                swept = [
                    ref.node_id
                    for ref in node.successor_list[: system.replication_factor - 1]
                    if ref != node.ref
                ]
                for third_party in swept:
                    yield node.call(third_party, "replica_drop", {"keys": keys})
                yield node.call(successor.node_id, "rereplicate", {"keys": keys})
            return count

        system.sim.run_process(handover())
        # Any storage nodes attached beneath the leaver re-attach to the heir.
        for storage_id in node.attached_storage:
            storage = system.storage_nodes.get(storage_id)
            if storage is not None:
                storage.index_node_id = heir.node_id
                heir.attached_storage.append(storage_id)
        node.attached_storage.clear()
    system.network.fail_node(node_id)  # stops answering
    system.network.deregister(node_id)
    del system.index_nodes[node_id]
    del system.ring.nodes[node_id]
    system.ring.stabilize(stabilize_rounds)
    system.journal_event("index-depart", node_id)


def fail_index_node(system: HybridSystem, node_id: str, stabilize_rounds: int = 3) -> None:
    """Crash an index node. Its primary rows are lost; queries recover via
    the successor list (routing) and the replicas (data), per III-D."""
    system.network.fail_node(node_id)
    system.ring.stabilize(stabilize_rounds)
    system.journal_event("index-fail", node_id)


def depart_storage_node(system: HybridSystem, node_id: str) -> None:
    """Graceful storage departure: eagerly unpublish from every index node
    (a courtesy the protocol allows; failure relies on timeouts instead)."""
    storage = system.storage_nodes[node_id]

    def goodbye():
        removed = 0
        for index_id in sorted(system.index_nodes):
            index_node = system.index_nodes[index_id]
            if not index_node.alive:
                continue
            removed += yield system.network.call(
                node_id, index_id, "index_remove_storage", {"storage_id": node_id}
            )
        return removed

    system.sim.run_process(goodbye())
    if storage.index_node_id is not None:
        parent = system.index_nodes.get(storage.index_node_id)
        if parent is not None and node_id in parent.attached_storage:
            parent.attached_storage.remove(node_id)
    system.network.fail_node(node_id)
    system.network.deregister(node_id)
    del system.storage_nodes[node_id]
    system.journal_event("storage-depart", node_id)


def fail_storage_node(system: HybridSystem, node_id: str) -> None:
    """Crash a storage node: location tables keep stale pointers that are
    cleaned lazily when queries time out against it (III-D)."""
    system.network.fail_node(node_id)
    system.journal_event("storage-fail", node_id)


# ------------------------------------------------------------- restarts


def restart_storage_node(
    system: HybridSystem,
    node_id: str,
    republish: bool = True,
    tracer=NULL_TRACER,
) -> StorageNode:
    """Bring a crashed storage node back from its on-disk state.

    The node's graph is recovered from its state directory (snapshot +
    WAL replay), the node re-registers on the network, re-attaches to its
    previous index node (or the hash-determined one if that parent is
    gone), and — with *republish* — re-announces its six-key index
    entries. Republication uses the idempotent max-merge row import, so
    entries that survived the crash in the live location tables are not
    double-counted.
    """
    if system.state_dir is None:
        raise RuntimeError("restart requires a system built with state_dir")
    old = system.storage_nodes.get(node_id)
    if old is not None and old.alive:
        raise ValueError(f"storage node {node_id!r} is still alive")
    span = tracer.span("recover", node=node_id) if tracer.enabled else None

    previous_parent = old.index_node_id if old is not None else None
    if node_id in system.network.nodes:
        system.network.deregister(node_id)

    graph = system.durable_graph(node_id)
    node = StorageNode(node_id, graph=graph)
    system.network.register(node)
    system.storage_nodes[node_id] = node

    parent_id = previous_parent
    if parent_id is None or parent_id not in system.index_nodes \
            or not system.index_nodes[parent_id].alive:
        parent_id = system.ring.owner_of(
            hash_string(node_id, system.space)
        ).node_id
    parent = system.index_nodes[parent_id]
    node.index_node_id = parent_id
    if node_id not in parent.attached_storage:
        parent.attached_storage.append(node_id)

    if republish:
        for (kind, key), freq in sorted(
            node.key_counts(system.space).items(),
            key=lambda kv: (kv[0][1], kv[0][0].name),
        ):
            owner = system.ring.owner_of(key)
            owner.table.import_row(key, {node_id: freq})
            for ref in owner.successor_list[: system.replication_factor - 1]:
                if ref == owner.ref:
                    continue
                system.index_nodes[ref.node_id].replicas.import_row(
                    key, {node_id: freq}
                )

    system.durability.recoveries += 1
    system.journal_event("storage-restart", node_id)
    if span is not None:
        span.close(
            triples=len(node.graph),
            records_replayed=graph.recovery_info["records_replayed"],
        )
    return node


def restart_index_node(
    system: HybridSystem,
    node_id: str,
    stabilize_rounds: int = 3,
    tracer=NULL_TRACER,
) -> IndexNode:
    """Bring a crashed index node back from its on-disk state.

    The node's location table is recovered (snapshot + WAL replay), the
    node re-joins the ring under its old identifier — pulling back the
    owned key range its successor took over — and the recovered table is
    reconciled against the live system:

    * rows replicated on ring successors are merged back (max-merge);
    * if the membership epoch moved past the recovered one, cells
      pointing at storage nodes that no longer exist are dropped
      (stale-entry detection, Sect. III-D).
    """
    if system.state_dir is None:
        raise RuntimeError("restart requires a system built with state_dir")
    old = system.index_nodes.get(node_id)
    if old is None:
        raise KeyError(f"unknown index node {node_id!r}")
    if old.alive:
        raise ValueError(f"index node {node_id!r} is still alive")
    span = tracer.span("recover", node=node_id) if tracer.enabled else None

    ident = old.ident
    previously_attached = list(old.attached_storage)
    # Remove the corpse: same id, fresh process.
    if node_id in system.network.nodes:
        system.network.deregister(node_id)
    del system.ring.nodes[node_id]
    del system.index_nodes[node_id]

    table = system.durable_table(node_id)
    node = IndexNode(
        node_id,
        ident,
        system.space,
        successor_list_size=system.successor_list_size,
        replication_factor=system.replication_factor,
        table=table,
    )
    system.ring.add_node(node)
    system.index_nodes[node_id] = node
    system.ring.join_via(node)
    system.ring.stabilize(stabilize_rounds)

    # Merge back rows that were replicated on live successors (they may
    # have moved past what the local log captured before the crash).
    merged = 0
    for other in system.index_nodes.values():
        if other is node or not other.alive:
            continue
        for key, row in list(other.replicas.export_range()):
            if node.owns(key):
                node.table.import_row(key, row)
                merged += 1
    system.durability.replica_rows_reconciled += merged

    # Epoch check: if membership moved while this node was down, its
    # recovered rows may point at storage nodes that no longer exist.
    if table.recovered_epoch != system.network.membership_epoch:
        dropped = 0
        for key in list(node.table.keys()):
            for storage_id in list(node.table.row_dict(key)):
                peer = system.storage_nodes.get(storage_id)
                if peer is None or not peer.alive:
                    node.table.remove(key, storage_id)
                    dropped += 1
        system.durability.stale_entries_dropped += dropped
    table.note_epoch(system.network.membership_epoch)

    # Re-adopt the storage nodes that were attached beneath this node.
    for storage_id in previously_attached:
        storage = system.storage_nodes.get(storage_id)
        if storage is not None and storage.index_node_id == node_id:
            if storage_id not in node.attached_storage:
                node.attached_storage.append(storage_id)

    system.durability.recoveries += 1
    system.journal_event("index-restart", node_id)
    if span is not None:
        span.close(
            keys=len(node.table),
            records_replayed=table.recovery_info["records_replayed"],
            replica_rows=merged,
        )
    return node
