"""Query-peer behaviour shared by index and storage nodes.

The distributed execution model of Sect. IV moves *sets of solution
mappings* between sites and combines them where they meet (join site
selection). This mixin gives every overlay node:

* a **mailbox** of named intermediate results (``corr`` ids), filled by
  one-way ``deliver`` messages — the "data shipping" of the paper;
* local **combine** operations (join / union / left outer join / minus /
  filter) over mailbox entries, so any node can be the join site;
* ``ship`` / ``fetch`` to move a result on, or pull it to the query
  initiator as the final answer;
* orchestration plumbing: an initiator can ``expect()`` a notification
  that some site received its inputs, which is how the executor sequences
  multi-site plans without global knowledge.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from ..net.sim import Event
from ..net.wire import JoinDigest, as_solution_set, encode_solutions
from ..sparql import ast
from ..sparql.expr import filter_passes
from ..sparql.solutions import SolutionMapping, combine_sets

__all__ = ["QueryPeer"]


def _combine(op: str, left, right, condition: Optional[ast.Expression]):
    passes = None
    if condition is not None:
        def passes(mu):
            return filter_passes(condition, mu)
    return combine_sets(op, left, right, passes)


class QueryPeer:
    """Mixin for :class:`~repro.net.transport.Node` subclasses adding the
    mailbox and local solution-set operators.

    Implemented as a pure mixin with lazily-created state so it composes
    with both plain storage nodes and Chord-derived index nodes without
    cooperative ``__init__`` gymnastics.
    """

    # The concrete class provides these (from Node):
    node_id: str
    network: Any
    sim: Any

    @property
    def mailbox(self) -> Dict[str, Set[SolutionMapping]]:
        box = self.__dict__.get("_qp_mailbox")
        if box is None:
            box = self.__dict__["_qp_mailbox"] = {}
        return box

    @property
    def _expected(self) -> Dict[str, Event]:
        pending = self.__dict__.get("_qp_expected")
        if pending is None:
            pending = self.__dict__["_qp_expected"] = {}
        return pending

    @property
    def _delivered_early(self) -> Dict[str, int]:
        early = self.__dict__.get("_qp_delivered_early")
        if early is None:
            early = self.__dict__["_qp_delivered_early"] = {}
        return early

    @property
    def _dead_corrs(self) -> Set[str]:
        """Correlation ids abandoned after a delivery timeout: a late
        ``deliver``/``delivered`` for one of these is dropped on arrival
        instead of parking in the mailbox with no one ever fetching it.

        Tombstones persist until :meth:`purge_corrs` sweeps them (they
        are *not* consumed by the first late arrival): under message
        duplication or a retried send, several late copies can trail in,
        and a tombstone that vanished after copy one would let copy two
        land in a recycled correlation slot of a later query.
        """
        dead = self.__dict__.get("_qp_dead_corrs")
        if dead is None:
            dead = self.__dict__["_qp_dead_corrs"] = set()
        return dead

    # --------------------------------------------------- idempotent receivers

    @property
    def _inflight(self) -> Dict[str, Event]:
        """Corr-keyed idempotency ledger for ``execute_primitive``: the
        first delivery installs an event that settles with the reply; a
        duplicate delivery (message duplication, or a retry whose
        original was merely slow) awaits that event instead of
        re-executing. Populated only while a fault plan is installed."""
        inflight = self.__dict__.get("_qp_inflight")
        if inflight is None:
            inflight = self.__dict__["_qp_inflight"] = {}
        return inflight

    @property
    def _replied(self) -> Dict[str, Dict[str, Any]]:
        """Corr-keyed memo of replies to side-effecting requests
        (``cache_admit``): a duplicate delivery returns the recorded
        reply rather than re-running the admission (which would
        double-count cache bytes). Populated only under a fault plan."""
        replied = self.__dict__.get("_qp_replied")
        if replied is None:
            replied = self.__dict__["_qp_replied"] = {}
        return replied

    @property
    def _chaos_keep(self) -> bool:
        """True while a fault plan is installed: destructive mailbox
        discards (fetch/ship/combine consuming their inputs) are
        suppressed so that a duplicated or retried request re-reads the
        same inputs and recomputes the same answer — set-union data
        semantics make every mailbox operation idempotent once nothing
        is consumed. :meth:`purge_corrs` reclaims the memory at query
        end, exactly as for abandoned entries."""
        network = self.network
        return network is not None and network.faults is not None

    # ------------------------------------------------------ result cache (S13)

    @property
    def result_cache(self):
        """The node's cross-query result cache, or None if no cached
        execution ever reached this node (state stays lazy, like the
        mailbox)."""
        return self.__dict__.get("_qp_result_cache")

    def result_cache_for(self, cfg: Dict[str, int]):
        """The node's result cache, created on first cached request.

        *cfg* rides in the request payload (``{"bytes": .., "admit": ..}``
        from the initiator's ExecutionOptions) so every node serves the
        budget the querying side asked for without any global setup step.
        """
        from ..cache.result_cache import ResultCache

        cache = self.__dict__.get("_qp_result_cache")
        if cache is None:
            cache = self.__dict__["_qp_result_cache"] = ResultCache(
                self.network, cfg["bytes"], cfg["admit"]
            )
        else:
            cache.byte_cap = cfg["bytes"]
            cache.admit_threshold = cfg["admit"]
        return cache

    def rpc_cache_probe(self, payload: Dict[str, Any], src: str) -> Dict[str, Any]:
        """Consult the result cache for a whole BGP sub-result.

        On a hit the cached solutions are installed into this node's
        mailbox under ``corr`` — exactly where the walk they replace
        would have combined them — so downstream steps run unchanged.
        The miss reply also says whether the key has cleared the
        admission gate, steering the initiator's fill decision.
        """
        cache = self.result_cache_for(payload["cfg"])
        entry, admit = cache.probe(payload["ckey"])
        if entry is None:
            return {"hit": False, "admit": admit}
        data = set(entry.value)
        self.mailbox[payload["corr"]] = data
        return {"hit": True, "count": len(data), "vars": entry.vars}

    def rpc_cache_admit(self, payload: Dict[str, Any], src: str) -> Dict[str, Any]:
        """Materialize a finished mailbox entry into the result cache.

        ``stamps``/``membership`` were captured by the initiator *before*
        the walk computed the entry, so a delta that raced the walk makes
        the entry dead on arrival rather than silently stale. Under a
        fault plan the reply is memoized per corr: a duplicated or
        retried admit returns the recorded verdict instead of admitting
        (and charging cache bytes) twice.
        """
        if self._chaos_keep:
            corr = payload["corr"]
            memo = self._replied.setdefault(corr, {})
            reply = memo.get("cache_admit")
            if reply is not None:
                self.network.failover.duplicates_dropped += 1
                return reply
            reply = self._cache_admit(payload, src)
            memo["cache_admit"] = reply
            return reply
        return self._cache_admit(payload, src)

    def _cache_admit(self, payload: Dict[str, Any], src: str) -> Dict[str, Any]:
        data = self.mailbox.get(payload["corr"])
        if data is None:
            # The result never landed here (failover moved the walk).
            return {"admitted": False}
        cache = self.result_cache_for(payload["cfg"])
        admitted = cache.admit(
            payload["ckey"],
            frozenset(data),
            payload.get("vars"),
            payload["stamps"],
            payload["membership"],
        )
        return {"admitted": admitted}

    # ------------------------------------------------------- query namespaces

    @property
    def _query_slots(self) -> Set[int]:
        slots = self.__dict__.get("_qp_query_slots")
        if slots is None:
            slots = self.__dict__["_qp_query_slots"] = set()
        return slots

    def acquire_query_slot(self) -> int:
        """Reserve the smallest free correlation-id namespace slot.

        Every query initiated at this peer holds a slot for its lifetime;
        slot 0 yields the classic ``<node>#<seq>`` correlation ids, later
        slots the ``<node>~<slot>#<seq>`` form — so correlation ids of
        queries running *concurrently* from the same initiator can never
        collide, while a lone query keeps byte-identical wire traffic.
        """
        slots = self._query_slots
        slot = 0
        while slot in slots:
            slot += 1
        slots.add(slot)
        return slot

    def release_query_slot(self, slot: int) -> None:
        self._query_slots.discard(slot)

    # ------------------------------------------------------ lifecycle hygiene

    def abandon_corr(self, corr: str) -> None:
        """Forget all correlation state for *corr* and dead-letter any
        late arrival (the executor calls this on delivery timeout)."""
        self.mailbox.pop(corr, None)
        self._delivered_early.pop(corr, None)
        event = self._expected.pop(corr, None)
        if event is not None:
            event.cancel()
        self._dead_corrs.add(corr)

    def purge_corrs(self, corrs) -> int:
        """Drop every trace of the given correlation ids (mailbox,
        expectations, early notifications, dead-letter marks). Called by
        the executor when a query finishes or fails, so long-running
        systems don't accumulate per-query state. Returns the number of
        entries removed."""
        removed = 0
        state = self.__dict__
        box = state.get("_qp_mailbox")
        expected = state.get("_qp_expected")
        early = state.get("_qp_delivered_early")
        dead = state.get("_qp_dead_corrs")
        inflight = state.get("_qp_inflight")
        replied = state.get("_qp_replied")
        for corr in corrs:
            if box and box.pop(corr, None) is not None:
                removed += 1
            if expected:
                event = expected.pop(corr, None)
                if event is not None:
                    event.cancel()
                    removed += 1
            if early and early.pop(corr, None) is not None:
                removed += 1
            if dead and corr in dead:
                dead.discard(corr)
                removed += 1
            if inflight:
                event = inflight.pop(corr, None)
                if event is not None:
                    if not event.triggered:
                        # Unblock any duplicate still awaiting the first
                        # execution with a benign empty ack.
                        event.succeed({"mode": "direct", "data": []})
                    removed += 1
            if replied and replied.pop(corr, None) is not None:
                removed += 1
        return removed

    # ----------------------------------------------------- orchestrator side

    def expect(self, corr: str) -> Event:
        """Event that succeeds when a ``delivered`` notification for
        *corr* reaches this node (value: the reported solution count).

        Notifications latch: if the delivery raced ahead of ``expect``,
        the event succeeds immediately.
        """
        event = self.sim.event()
        if corr in self._delivered_early:
            event.succeed(self._delivered_early.pop(corr))
            return event
        # Collision-freedom: correlation ids are globally unique among
        # live queries (per-initiator slot namespaces), so two waiters on
        # the same corr can only mean id-minting is broken.
        assert corr not in self._expected, (
            f"correlation id collision at {self.node_id}: {corr!r} already "
            "has a pending expectation"
        )
        self._expected[corr] = event
        return event

    def rpc_delivered(self, payload: Dict[str, Any], src: str) -> None:
        corr = payload["corr"]
        if corr in self._dead_corrs:
            # Late notification for an abandoned delivery (the waiter
            # already timed out and fell back): swallow it. The tombstone
            # stays — further copies may trail in — until purge_corrs
            # sweeps it.
            return
        count = payload.get("count", 0)
        event = self._expected.pop(corr, None)
        if event is not None and not event.triggered:
            event.succeed(count)
        else:
            self._delivered_early[corr] = count

    # ------------------------------------------------------------- mailbox

    def rpc_deliver(self, payload: Dict[str, Any], src: str) -> None:
        """Receive a batch of solutions (one-way data shipping).

        Multiple deliveries to the same corr id accumulate by set union —
        that is what the in-network aggregation chains rely on.
        """
        corr = payload["corr"]
        if corr in self._dead_corrs:
            # The orchestrator gave up on this correlation id (delivery
            # timeout → fallback already re-executed): drop the payload
            # instead of leaking it into the mailbox, and send no
            # notification that could re-latch upstream state. The
            # tombstone persists for any further late copies.
            return
        data = payload.get("data", ())
        box = self.mailbox.setdefault(corr, set())
        box.update(as_solution_set(data))
        notify = payload.get("notify")
        # Under a fault plan the sender stamps each wait epoch with a
        # fresh notification key: a duplicated copy of an *earlier*
        # notification for this mailbox corr then cannot satisfy a later
        # wait (e.g. a chain-completion dup forging a ship's arrival).
        notify_corr = payload.get("notify_corr", corr)
        if notify == self.node_id:
            # The initiator is the final site: resolve locally, no message.
            self.rpc_delivered({"corr": notify_corr, "count": len(box)},
                               self.node_id)
        elif notify is not None:
            assert self.network is not None
            self.network.send(
                self.node_id, notify, "delivered",
                {"corr": notify_corr, "count": len(box)}
            )

    def rpc_fetch(self, payload: Dict[str, Any], src: str):
        """Return (and optionally drop) a mailbox entry — the final result
        transfer to the query initiator, charged as reply traffic."""
        corr = payload["corr"]
        data = self.mailbox.get(corr, set())
        if payload.get("discard", True) and not self._chaos_keep:
            self.mailbox.pop(corr, None)
        return encode_solutions(data, payload.get("encode", False))

    def rpc_discard(self, payload: Dict[str, Any], src: str) -> int:
        dropped = 0
        for corr in payload["corrs"]:
            if self.mailbox.pop(corr, None) is not None:
                dropped += 1
        return dropped

    def rpc_ship(self, payload: Dict[str, Any], src: str):
        """Forward a mailbox entry to another site's mailbox (one-way).

        Shipping optimizations ride in optional payload keys: ``digest``
        (a :class:`~repro.net.wire.JoinDigest` — rows it rejects are
        dropped before transfer), ``project`` (variables to keep), and
        ``encode`` (dictionary-delta wire format). With a digest present
        the reply is a dict carrying the exact pruned-row count;
        otherwise it stays the bare count, byte-identical to before.
        """
        corr = payload["corr"]
        data = self.mailbox.get(corr, set())
        if payload.get("discard", True) and not self._chaos_keep:
            self.mailbox.pop(corr, None)
        digest: Optional[JoinDigest] = payload.get("digest")
        pruned = 0
        if digest is not None:
            kept = digest.filter(data)
            pruned = len(data) - len(kept)
            data = kept
        keep = payload.get("project")
        if keep is not None:
            data = {mu.project(keep) for mu in data}
        assert self.network is not None
        delivery = {
            "corr": payload.get("dst_corr", corr),
            "data": encode_solutions(data, payload.get("encode", False)),
            "notify": payload.get("notify"),
        }
        if "notify_corr" in payload:
            delivery["notify_corr"] = payload["notify_corr"]
        self.network.send(self.node_id, payload["dst"], "deliver", delivery)
        if digest is not None:
            return {"count": len(data), "pruned": pruned}
        return len(data)

    def rpc_digest(self, payload: Dict[str, Any], src: str) -> JoinDigest:
        """Build a semijoin digest over a mailbox entry's join-key values.

        Payload: ``corr``, ``vars`` (the prospective join variables),
        ``exact_threshold``, ``bloom_bits``. The reply's wire size is the
        digest's real cost — the price of the pre-filtering bet.
        """
        data = self.mailbox.get(payload["corr"], set())
        return JoinDigest.build(
            data,
            payload["vars"],
            exact_threshold=payload.get("exact_threshold", 64),
            bloom_bits=payload.get("bloom_bits", 10),
        )

    # ------------------------------------------------------------- operators

    def rpc_combine(self, payload: Dict[str, Any], src: str) -> Dict[str, int]:
        """Combine two mailbox entries at this site.

        Payload: op, left, right, out, condition (optional). Returns the
        result cardinality (a small control reply; the data stays here).
        """
        left = self.mailbox.get(payload["left"], set())
        right = self.mailbox.get(payload["right"], set())
        out = _combine(payload["op"], left, right, payload.get("condition"))
        if payload.get("discard_inputs", True) and not self._chaos_keep:
            self.mailbox.pop(payload["left"], None)
            self.mailbox.pop(payload["right"], None)
        self.mailbox[payload["out"]] = out
        return {"count": len(out)}

    def rpc_filter_box(self, payload: Dict[str, Any], src: str) -> Dict[str, int]:
        """Apply a FILTER condition to a mailbox entry in place."""
        corr = payload["corr"]
        condition: ast.Expression = payload["condition"]
        box = self.mailbox.get(corr, set())
        out = {mu for mu in box if filter_passes(condition, mu)}
        self.mailbox[payload.get("out", corr)] = out
        return {"count": len(out)}


def _mapping_sort_key(mu: SolutionMapping):
    return tuple((v.name, t.n3()) for v, t in mu.items())
