"""Storage nodes: the data providers of the ad-hoc system.

A storage node "stores locally and manipulates data items of its own"
(Sect. I) and attaches to one index node on the ring (Sect. III-A). It
answers sub-queries over its local graph, participates in the chained
in-network aggregation of Sect. IV-C, and can host join/union operations
through the :class:`~repro.overlay.peer.QueryPeer` mailbox — the paper's
join-site flexibility.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..chord.idspace import IdentifierSpace
from ..net.transport import Node
from ..rdf.graph import Graph
from ..rdf.triple import Triple, TriplePattern
from ..sparql.algebra import Algebra, BGP
from ..sparql.eval import evaluate_algebra
from ..sparql.solutions import SolutionMapping, union as omega_union
from .keys import KeyKind, index_keys
from .peer import QueryPeer, _mapping_sort_key

__all__ = ["StorageNode"]


class StorageNode(QueryPeer, Node):
    """A data provider holding its own RDF graph."""

    def __init__(self, node_id: str, triples: Optional[Iterable[Triple]] = None) -> None:
        Node.__init__(self, node_id)
        self.graph = Graph(triples)
        #: The ring node this storage node is attached to (Sect. III-A:
        #: "attach to one of the nodes on the ring").
        self.index_node_id: Optional[str] = None

    # ------------------------------------------------------------- data mgmt

    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Insert triples into the local graph only.

        The distributed index is *not* touched; callers that want the new
        triples discoverable must publish the delta (see
        :meth:`HybridSystem.publish_delta <repro.overlay.system.HybridSystem.publish_delta>`),
        mirroring how a provider first stores data and then announces it.
        """
        return self.graph.update(triples)

    def remove_triples(self, triples: Iterable[Triple]) -> int:
        """Remove triples from the local graph only (see add_triples)."""
        return sum(1 for t in triples if self.graph.discard(t))

    def key_counts_for(self, triples, space: IdentifierSpace) -> Dict[Tuple[KeyKind, int], int]:
        """Aggregate the six index keys over an explicit triple set (the
        delta-publication path)."""
        counts: Counter = Counter()
        for triple in triples:
            for kind, key in index_keys(triple, space):
                counts[(kind, key)] += 1
        return dict(counts)

    def key_counts(self, space: IdentifierSpace) -> Dict[Tuple[KeyKind, int], int]:
        """Aggregate the six index keys over the local graph.

        Returns (kind, ring key) → triple count; the counts become the
        frequency numbers in the location tables (Table I).
        """
        counts: Counter = Counter()
        for triple in self.graph:
            for kind, key in index_keys(triple, space):
                counts[(kind, key)] += 1
        return dict(counts)

    # ------------------------------------------------------------ local eval

    def local_eval(self, algebra: Algebra):
        """⟦P⟧ over the local repository only."""
        return evaluate_algebra(algebra, self.graph)

    # ---------------------------------------------------------- RPC handlers

    def rpc_evaluate(self, payload: Dict[str, Any], src: str) -> List[SolutionMapping]:
        """Evaluate a sub-query and reply with the local solutions
        (the BASIC strategy's storage-node step)."""
        solutions = self.local_eval(payload["algebra"])
        return sorted(solutions, key=_mapping_sort_key)

    def rpc_count(self, payload: Dict[str, Any], src: str) -> int:
        """Local cardinality of a triple pattern (planner statistics)."""
        pattern: TriplePattern = payload["pattern"]
        return self.graph.count(pattern)

    def rpc_chain_step(self, payload: Dict[str, Any], src: str) -> None:
        """One step of in-network aggregation (Sect. IV-C optimization).

        Evaluate the sub-query locally, merge with the accumulated
        solutions from the predecessor node, then either forward the
        (query, merged solutions) to the next node on the sequence list or
        deliver the final result.

        One-way semantics: invoked via ``Network.send``; intermediate
        results never back-track, which is the whole point of the chain.
        """
        assert self.network is not None
        local = self.local_eval(payload["algebra"])
        merged = omega_union(payload.get("acc", ()), local)
        route: List[str] = list(payload.get("route", ()))
        if route:
            next_hop = route[0]
            self.network.send(
                self.node_id,
                next_hop,
                "chain_step",
                {
                    "algebra": payload["algebra"],
                    "acc": sorted(merged, key=_mapping_sort_key),
                    "route": route[1:],
                    "final": payload["final"],
                    "corr": payload["corr"],
                    "notify": payload.get("notify"),
                },
            )
        else:
            delivery = {
                "corr": payload["corr"],
                "data": sorted(merged, key=_mapping_sort_key),
                "notify": payload.get("notify"),
            }
            if payload["final"] == self.node_id:
                # This node *is* the destination site (the shared node the
                # chain was routed to end at): deposit locally, no message.
                self.rpc_deliver(delivery, self.node_id)
            else:
                self.network.send(self.node_id, payload["final"], "deliver", delivery)
