"""Storage nodes: the data providers of the ad-hoc system.

A storage node "stores locally and manipulates data items of its own"
(Sect. I) and attaches to one index node on the ring (Sect. III-A). It
answers sub-queries over its local graph, participates in the chained
in-network aggregation of Sect. IV-C, and can host join/union operations
through the :class:`~repro.overlay.peer.QueryPeer` mailbox — the paper's
join-site flexibility.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..chord.idspace import IdentifierSpace
from ..net.transport import Node
from ..net.wire import FilteredResult, as_solution_set, encode_solutions
from ..rdf.graph import Graph
from ..rdf.triple import Triple, TriplePattern
from ..sparql.algebra import Algebra
from ..sparql.eval import evaluate_algebra
from ..sparql.solutions import union as omega_union
from .keys import KeyKind, index_keys
from .peer import QueryPeer

__all__ = ["StorageNode"]


class StorageNode(QueryPeer, Node):
    """A data provider holding its own RDF graph."""

    def __init__(
        self,
        node_id: str,
        triples: Optional[Iterable[Triple]] = None,
        graph: Optional[Graph] = None,
    ) -> None:
        Node.__init__(self, node_id)
        if graph is not None:
            # An externally built repository — e.g. a
            # :class:`~repro.storage.durable.DurableGraph` recovered from
            # disk; *triples* (if any) are merged on top.
            self.graph = graph
            if triples is not None:
                self.graph.update(triples)
        else:
            self.graph = Graph(triples)
        #: The ring node this storage node is attached to (Sect. III-A:
        #: "attach to one of the nodes on the ring").
        self.index_node_id: Optional[str] = None

    # ------------------------------------------------------------- data mgmt

    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Insert triples into the local graph only.

        The distributed index is *not* touched; callers that want the new
        triples discoverable must publish the delta (see
        :meth:`HybridSystem.publish_delta <repro.overlay.system.HybridSystem.publish_delta>`),
        mirroring how a provider first stores data and then announces it.
        """
        return self.graph.update(triples)

    def remove_triples(self, triples: Iterable[Triple]) -> int:
        """Remove triples from the local graph only (see add_triples)."""
        return sum(1 for t in triples if self.graph.discard(t))

    def key_counts_for(self, triples, space: IdentifierSpace) -> Dict[Tuple[KeyKind, int], int]:
        """Aggregate the six index keys over an explicit triple set (the
        delta-publication path)."""
        counts: Counter = Counter()
        for triple in triples:
            for kind, key in index_keys(triple, space):
                counts[(kind, key)] += 1
        return dict(counts)

    def key_counts(self, space: IdentifierSpace) -> Dict[Tuple[KeyKind, int], int]:
        """Aggregate the six index keys over the local graph.

        Returns (kind, ring key) → triple count; the counts become the
        frequency numbers in the location tables (Table I).
        """
        counts: Counter = Counter()
        for triple in self.graph:
            for kind, key in index_keys(triple, space):
                counts[(kind, key)] += 1
        return dict(counts)

    # ------------------------------------------------------------ local eval

    def local_eval(self, algebra: Algebra):
        """⟦P⟧ over the local repository only."""
        return evaluate_algebra(algebra, self.graph)

    # ---------------------------------------------------------- RPC handlers

    def rpc_evaluate(self, payload: Dict[str, Any], src: str):
        """Evaluate a sub-query and reply with the local solutions
        (the BASIC strategy's storage-node step).

        Optional shipping directives: ``digest`` drops rows that cannot
        join the accumulated result before they ever leave this node
        (the reply then reports the dropped count), ``project`` prunes
        dead variables, ``encode`` switches the reply to the
        dictionary-delta wire format.
        """
        solutions, pruned = self._eval_shippable(payload)
        encoded = encode_solutions(solutions, payload.get("encode", False))
        if pruned is not None:
            return FilteredResult(encoded, pruned)
        return encoded

    def _eval_shippable(self, payload: Dict[str, Any]):
        """Local evaluation with the pre-ship reductions applied.

        Returns (solutions, pruned) — *pruned* is None when no digest was
        supplied, else the number of rows it dropped.
        """
        solutions = self.local_eval(payload["algebra"])
        pruned = None
        digest = payload.get("digest")
        if digest is not None:
            kept = digest.filter(solutions)
            pruned = len(solutions) - len(kept)
            solutions = kept
        keep = payload.get("project")
        if keep is not None:
            solutions = {mu.project(keep) for mu in solutions}
        return solutions, pruned

    def rpc_count(self, payload: Dict[str, Any], src: str) -> int:
        """Local cardinality of a triple pattern (planner statistics)."""
        pattern: TriplePattern = payload["pattern"]
        return self.graph.count(pattern)

    def rpc_chain_step(self, payload: Dict[str, Any], src: str) -> None:
        """One step of in-network aggregation (Sect. IV-C optimization).

        Evaluate the sub-query locally, merge with the accumulated
        solutions from the predecessor node, then either forward the
        (query, merged solutions) to the next node on the sequence list or
        deliver the final result.

        One-way semantics: invoked via ``Network.send``; intermediate
        results never back-track, which is the whole point of the chain.
        """
        assert self.network is not None
        local, _pruned = self._eval_shippable(payload)
        encode = payload.get("encode", False)
        merged = omega_union(as_solution_set(payload.get("acc", ())), local)
        route: List[str] = list(payload.get("route", ()))
        if route:
            next_hop = route[0]
            forward = {
                "algebra": payload["algebra"],
                "acc": encode_solutions(merged, encode),
                "route": route[1:],
                "final": payload["final"],
                "corr": payload["corr"],
                "notify": payload.get("notify"),
            }
            for key in ("digest", "project", "encode", "notify_corr"):
                if key in payload:
                    forward[key] = payload[key]
            self.network.send(self.node_id, next_hop, "chain_step", forward)
        else:
            delivery = {
                "corr": payload["corr"],
                "data": encode_solutions(merged, encode),
                "notify": payload.get("notify"),
            }
            if "notify_corr" in payload:
                delivery["notify_corr"] = payload["notify_corr"]
            if payload["final"] == self.node_id:
                # This node *is* the destination site (the shared node the
                # chain was routed to end at): deposit locally, no message.
                self.rpc_deliver(delivery, self.node_id)
            else:
                self.network.send(self.node_id, payload["final"], "deliver", delivery)
