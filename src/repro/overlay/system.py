"""Assembly of the hybrid two-level P2P system (Sect. III).

:class:`HybridSystem` wires the pieces together: a simulated network, a
Chord ring of index nodes, storage nodes attached beneath them, and the
two-level distributed index built by publishing every storage node's
triples under the six keys of Sect. III-B.

Publication modes:

* ``publish_protocol`` — the faithful message-level process: the storage
  node ships its key batch to its index node, which routes every key to
  its owner with real ``find_successor`` lookups and installs the rows
  with ``index_put``. Used by the experiments that *measure* publication.
* ``publish_fast`` — ground-truth placement without messages (identical
  resulting index). Used to set up large systems whose experiments only
  measure the query phase.

The module also provides :func:`fig1_network`, the paper's example
topology: index nodes N1, N4, N7, N12, N15 and storage nodes D1..D4 in a
4-bit identifier space.
"""

from __future__ import annotations

import pathlib
from collections import Counter
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..chord.hashing import hash_string
from ..chord.idspace import IdentifierSpace
from ..chord.ring import ChordRing
from ..metrics.counters import DurabilityCounters
from ..net.transport import LinkModel, Network
from ..rdf.triple import Triple
from .index_node import IndexNode
from .storage_node import StorageNode

__all__ = ["HybridSystem", "fig1_network", "FIG1_INDEX_IDS", "FIG1_STORAGE_IDS"]


class HybridSystem:
    """A complete ad-hoc Semantic Web data sharing system instance."""

    def __init__(
        self,
        space: Optional[IdentifierSpace] = None,
        network: Optional[Network] = None,
        replication_factor: int = 1,
        successor_list_size: int = 3,
        link: Optional[LinkModel] = None,
        state_dir=None,
        fsync: bool = False,
        snapshot_every: Optional[int] = None,
        _recovering: bool = False,
    ) -> None:
        self.space = space or IdentifierSpace(32)
        self.network = network or Network(link=link)
        self.ring = ChordRing(self.network, self.space)
        self.replication_factor = replication_factor
        self.successor_list_size = successor_list_size
        self.index_nodes: Dict[str, IndexNode] = {}
        self.storage_nodes: Dict[str, StorageNode] = {}
        #: Per-node combine-work counter — the system's simulated QoS
        #: monitor feeding the Third-Site join placement policy.  Lives on
        #: the system (not the executor) so concurrent executors observe
        #: each other's load, and two interleaved execution contexts share
        #: nothing but this system object.
        self.load: Counter = Counter()
        #: Durability subsystem (opt-in): with *state_dir* set, every
        #: node's state (graphs, location tables) and the system's
        #: membership history are write-ahead logged under it, so crashed
        #: nodes — or the whole system — can be brought back from disk
        #: (see :mod:`repro.storage`).
        self.state_dir = pathlib.Path(state_dir) if state_dir is not None else None
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.durability = DurabilityCounters()
        self._recovering = _recovering
        self.journal = None
        if self.state_dir is not None:
            from ..storage.journal import SystemJournal  # local import: layering

            self.state_dir.mkdir(parents=True, exist_ok=True)
            self.journal = SystemJournal(
                self.state_dir, fsync=fsync, counters=self.durability
            )
            if self.journal.is_fresh:
                self.journal.log_system(
                    self.space.bits, replication_factor, successor_list_size
                )
            elif not _recovering:
                raise ValueError(
                    f"state directory {self.state_dir} already holds a system "
                    "journal; use repro.storage.recover_system() to bring it "
                    "back (or point at a fresh directory)"
                )

    # ------------------------------------------------------------- plumbing

    @property
    def sim(self):
        return self.network.sim

    @property
    def stats(self):
        return self.network.stats

    # ------------------------------------------------------------ building

    def add_index_node(self, node_id: str, ident: Optional[int] = None) -> IndexNode:
        """Create an index node; its ring id defaults to Hash(node_id)."""
        if ident is None:
            ident = hash_string(node_id, self.space)
        node = IndexNode(
            node_id,
            ident,
            self.space,
            successor_list_size=self.successor_list_size,
            replication_factor=self.replication_factor,
            table=self.durable_table(node_id),
        )
        self.ring.add_node(node)
        self.index_nodes[node_id] = node
        if self.journal is not None and not self._recovering:
            self.journal.log_index_add(node_id, ident)
        return node

    # ---------------------------------------------------------- durability

    def node_state_dir(self, node_id: str):
        """This node's state directory (None without durability)."""
        if self.state_dir is None:
            return None
        from ..storage.journal import node_state_dir  # local import: layering

        return node_state_dir(self.state_dir, node_id)

    def durable_table(self, node_id: str):
        """A recovered-or-fresh durable location table for *node_id*
        (None without durability)."""
        if self.state_dir is None:
            return None
        from ..storage.durable import DurableLocationTable  # local import

        return DurableLocationTable(
            self.node_state_dir(node_id),
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
            counters=self.durability,
        )

    def durable_graph(self, node_id: str, triples=None):
        """A recovered-or-fresh durable graph for *node_id* (None without
        durability)."""
        if self.state_dir is None:
            return None
        from ..storage.durable import DurableGraph  # local import: layering

        return DurableGraph(
            self.node_state_dir(node_id),
            triples=triples,
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
            counters=self.durability,
        )

    def journal_event(self, kind: str, node_id: str) -> None:
        """Record a node lifecycle event (fail/depart/restart) in the
        membership journal; no-op without durability or during recovery."""
        if self.journal is not None and not self._recovering:
            self.journal.log_event(kind, node_id)

    def checkpoint(self) -> Dict[str, int]:
        """Snapshot every durable component and compact its log.

        Each snapshot is stamped with the current membership epoch, the
        baseline for stale-entry detection on a later restart. Returns
        node id → snapshot LSN.
        """
        if self.state_dir is None:
            raise RuntimeError("checkpoint requires a system with state_dir")
        epoch = self.network.membership_epoch
        done: Dict[str, int] = {}
        for node_id in sorted(self.index_nodes):
            table = self.index_nodes[node_id].table
            if hasattr(table, "checkpoint"):
                done[node_id] = table.checkpoint(epoch=epoch)
        for node_id in sorted(self.storage_nodes):
            graph = self.storage_nodes[node_id].graph
            if hasattr(graph, "checkpoint"):
                done[node_id] = graph.checkpoint(epoch=epoch)
        return done

    def build_ring(self) -> None:
        """Wire the (fully converged) ring; call once after adding index
        nodes, before attaching storage."""
        self.ring.build_static()

    def add_storage_node(
        self,
        node_id: str,
        triples: Iterable[Triple] = (),
        attach_to: Optional[str] = None,
        publish: bool = True,
        protocol: bool = False,
    ) -> StorageNode:
        """Create a storage node, attach it beneath an index node, and
        publish its triples into the distributed index."""
        if not self.index_nodes:
            raise RuntimeError("add index nodes and build the ring first")
        graph = self.durable_graph(node_id, triples=triples)
        if graph is not None:
            node = StorageNode(node_id, graph=graph)
        else:
            node = StorageNode(node_id, triples)
        self.network.register(node)
        self.storage_nodes[node_id] = node
        if attach_to is None:
            # Deterministic attachment: the index node owning Hash(node_id).
            attach_to = self.ring.owner_of(hash_string(node_id, self.space)).node_id
        index_node = self.index_nodes[attach_to]
        node.index_node_id = attach_to
        index_node.attached_storage.append(node_id)
        if self.journal is not None and not self._recovering:
            self.journal.log_storage_add(node_id, attach_to)
        if publish:
            if protocol:
                self.publish_protocol(node)
            else:
                self.publish_fast(node)
        return node

    # ----------------------------------------------------------- publication

    def publish_fast(self, storage: StorageNode) -> int:
        """Install the storage node's six-key index without messages."""
        count = 0
        for (kind, key), freq in sorted(storage.key_counts(self.space).items(),
                                        key=lambda kv: (kv[0][1], kv[0][0].name)):
            owner = self.ring.owner_of(key)
            owner.table.add(key, storage.node_id, freq)
            self.network.data_epochs.advance(key)
            count += 1
            for ref in owner.successor_list[: self.replication_factor - 1]:
                if ref == owner.ref:
                    continue
                replica = self.index_nodes[ref.node_id]
                replica.replicas.import_row(key, {storage.node_id: freq})
        return count

    def publish_protocol(self, storage: StorageNode) -> int:
        """Publish through real messages via the attached index node."""
        assert storage.index_node_id is not None
        entries = [
            (key, freq)
            for (kind, key), freq in sorted(storage.key_counts(self.space).items(),
                                            key=lambda kv: (kv[0][1], kv[0][0].name))
        ]
        for key, _freq in entries:
            self.network.data_epochs.advance(key)

        # Publication is a long-running batch: give it a generous deadline
        # that scales with the batch instead of the per-RPC default.
        deadline = max(60.0, 0.5 * len(entries))

        def proc():
            result = yield self.network.call(
                storage.node_id,
                storage.index_node_id,
                "publish",
                {"storage_id": storage.node_id, "entries": entries},
                timeout=deadline,
            )
            return result

        return self.sim.run_process(proc())

    # ------------------------------------------------------ incremental data

    def publish_delta(
        self, storage: StorageNode, triples, protocol: bool = False
    ) -> int:
        """Make newly added triples discoverable.

        *triples* must already be in the node's graph (``add_triples``).
        Fast mode places the entries directly; protocol mode announces
        them through the attached index node with real messages.
        """
        counts = storage.key_counts_for(triples, self.space)
        if not counts:
            return 0
        if protocol:
            assert storage.index_node_id is not None
            entries = [
                (key, freq)
                for (kind, key), freq in sorted(counts.items(),
                                                key=lambda kv: (kv[0][1], kv[0][0].name))
            ]
            for key, _freq in entries:
                self.network.data_epochs.advance(key)
            deadline = max(60.0, 0.5 * len(entries))

            def proc():
                return (yield self.network.call(
                    storage.node_id,
                    storage.index_node_id,
                    "publish",
                    {"storage_id": storage.node_id, "entries": entries},
                    timeout=deadline,
                ))

            return self.sim.run_process(proc())
        count = 0
        for (kind, key), freq in sorted(counts.items(),
                                        key=lambda kv: (kv[0][1], kv[0][0].name)):
            owner = self.ring.owner_of(key)
            owner.table.add(key, storage.node_id, freq)
            self.network.data_epochs.advance(key)
            count += 1
            for ref in owner.successor_list[: self.replication_factor - 1]:
                if ref == owner.ref:
                    continue
                self.index_nodes[ref.node_id].replicas.import_row(
                    key, {storage.node_id: freq}
                )
        return count

    def unpublish_delta(self, storage: StorageNode, triples) -> int:
        """Withdraw index entries for triples the provider removed.

        Frequencies are decremented; a cell vanishes when it reaches zero,
        so the location tables stay exact. (Fast placement — the paper
        does not specify a wire protocol for unpublication.)
        """
        counts = storage.key_counts_for(triples, self.space)
        removed = 0
        for (kind, key), freq in sorted(counts.items(),
                                        key=lambda kv: (kv[0][1], kv[0][0].name)):
            owner = self.ring.owner_of(key)
            owner.table.remove(key, storage.node_id, freq)
            # A replica row may still sit at the owner itself after a
            # failover promotion; clear it before sweeping the successors.
            owner.replicas.remove(key, storage.node_id, freq)
            self.network.data_epochs.advance(key)
            removed += 1
            # Replicas live only on the owner's successor list — the same
            # placement publish_delta writes to. Sweeping every index node
            # here (the old behaviour) touched O(#nodes) replica tables
            # per key for rows that could not exist off the successors.
            for ref in owner.successor_list[: self.replication_factor - 1]:
                if ref == owner.ref:
                    continue
                self.index_nodes[ref.node_id].replicas.remove(
                    key, storage.node_id, freq
                )
        return removed

    # -------------------------------------------------------------- queries

    def execute(self, query_text: str, initiator: Optional[str] = None,
                tracer=None, **options):
        """Parse and execute a SPARQL query distributedly.

        Convenience wrapper over
        :class:`repro.query.executor.DistributedExecutor`; see there for
        options (strategy, join-site policy, optimization switches).
        Pass a :class:`repro.trace.Tracer` as *tracer* to record the
        query's message flow and per-phase cost.
        """
        from ..query.executor import DistributedExecutor  # local import: layering

        executor = DistributedExecutor(self, tracer=tracer, **options)
        return executor.execute(query_text, initiator=initiator)

    # ------------------------------------------------------------- utilities

    def union_graph(self):
        """The union of all storage-node graphs — the paper's dataset
        semantics for queries without FROM clauses; used as the oracle."""
        from ..rdf.graph import Graph

        union = Graph()
        for node in self.storage_nodes.values():
            union.update(iter(node.graph))
        return union

    def total_triples(self) -> int:
        return sum(len(n.graph) for n in self.storage_nodes.values())

    def any_index_node(self) -> IndexNode:
        return self.index_nodes[min(self.index_nodes)]


# ---------------------------------------------------------------- Fig. 1


#: The identifiers of the paper's Fig. 1: a 9-node network in a 4-bit
#: identifier space.
FIG1_INDEX_IDS: Sequence[Tuple[str, int]] = (
    ("N1", 1), ("N4", 4), ("N7", 7), ("N12", 12), ("N15", 15),
)
FIG1_STORAGE_IDS: Sequence[str] = ("D1", "D2", "D3", "D4")


def fig1_network(
    triples_by_storage: Optional[Dict[str, Iterable[Triple]]] = None,
    replication_factor: int = 1,
) -> HybridSystem:
    """Build the paper's Fig. 1 topology.

    Index nodes N1, N4, N7, N12, N15 form the 4-bit ring; storage nodes
    D1..D4 attach beneath (D1, D3, D4 under N7 and D2 under N15, matching
    the pointers drawn in Fig. 1/2).
    """
    system = HybridSystem(space=IdentifierSpace(4), replication_factor=replication_factor)
    for node_id, ident in FIG1_INDEX_IDS:
        system.add_index_node(node_id, ident)
    system.build_ring()
    attachments = {"D1": "N7", "D2": "N15", "D3": "N7", "D4": "N7"}
    data = triples_by_storage or {}
    for storage_id in FIG1_STORAGE_IDS:
        system.add_storage_node(
            storage_id,
            data.get(storage_id, ()),
            attach_to=attachments[storage_id],
        )
    return system
