"""Distributed SPARQL query processing — the paper's core contribution
(S10): planning over the two-level index, the primitive / conjunction /
optional / union / filter execution schemes of Sect. IV, and join-site
selection."""

from .strategies import (
    ConjunctionMode,
    ExecutionOptions,
    JoinSitePolicy,
    PrimitiveStrategy,
)
from .cost import CostModel, StrategyCosts, annotate_plan, choose_strategy
from .physical import (
    PhysOp,
    compile_distributed,
    compile_local,
    compile_query_plan,
    format_plan,
    interpret_local,
    walk_plan,
)
from .plan import PatternInfo, ResultHandle, choose_shared_site, subquery_algebra
from .executor import (
    DistributedExecutor,
    ExecutionContext,
    ExecutionReport,
    QueryDeadlineExceeded,
    QueryFailed,
)

__all__ = [
    "PhysOp",
    "compile_local",
    "compile_distributed",
    "compile_query_plan",
    "interpret_local",
    "format_plan",
    "walk_plan",
    "annotate_plan",
    "PrimitiveStrategy",
    "ConjunctionMode",
    "JoinSitePolicy",
    "ExecutionOptions",
    "PatternInfo",
    "ResultHandle",
    "choose_shared_site",
    "subquery_algebra",
    "DistributedExecutor",
    "ExecutionContext",
    "ExecutionReport",
    "QueryFailed",
    "QueryDeadlineExceeded",
    "CostModel",
    "StrategyCosts",
    "choose_strategy",
]
