"""Distributed SPARQL query processing — the paper's core contribution
(S10): planning over the two-level index, the primitive / conjunction /
optional / union / filter execution schemes of Sect. IV, and join-site
selection."""

from .strategies import (
    ConjunctionMode,
    ExecutionOptions,
    JoinSitePolicy,
    PrimitiveStrategy,
)
from .adaptive import CostModel, StrategyCosts, choose_strategy
from .plan import PatternInfo, ResultHandle, choose_shared_site, subquery_algebra
from .executor import (
    DistributedExecutor,
    ExecutionContext,
    ExecutionReport,
    QueryDeadlineExceeded,
    QueryFailed,
)

__all__ = [
    "PrimitiveStrategy",
    "ConjunctionMode",
    "JoinSitePolicy",
    "ExecutionOptions",
    "PatternInfo",
    "ResultHandle",
    "choose_shared_site",
    "subquery_algebra",
    "DistributedExecutor",
    "ExecutionContext",
    "ExecutionReport",
    "QueryFailed",
    "QueryDeadlineExceeded",
    "CostModel",
    "StrategyCosts",
    "choose_strategy",
]
