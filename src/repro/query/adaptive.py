"""Compatibility shim — the adaptive strategy model moved to
:mod:`repro.query.cost` when the PR 8 plan layer generalized it from
per-primitive choices to whole-plan annotation. Import from there."""

from __future__ import annotations

from .cost import BYTES_PER_SOLUTION, CostModel, StrategyCosts, choose_strategy

__all__ = ["CostModel", "StrategyCosts", "choose_strategy", "BYTES_PER_SOLUTION"]
