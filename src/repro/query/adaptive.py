"""Cost-based strategy selection — the paper's stated future work.

Sect. V: "We have yet to investigate, in a fully-distributed context, how
to process and optimize SPARQL queries in the face of a mixture of such
objectives [transmission cost vs response time] and come up with 'good'
query plans."

This module implements that investigation's natural first step: an
analytic cost model over the information the initiator already has — the
location-table row (provider frequencies) and the link model — used to
pick, per primitive sub-query, whichever of BASIC / FREQ-chain minimizes a
weighted mixture of the two objectives.

Model (fan-out to n providers with estimated result sizes s_1..s_n bytes,
link latency L, bandwidth B, assembly/initiator transfers included):

* BASIC:  bytes ≈ Σ s_i + U               (each provider → assembly, then
          time  ≈ 4L + (max_i s_i + U)/B   the union U → initiator; the
                                            fan-out legs run in parallel)
* FREQ:   bytes ≈ Σ_k prefix_k + U         (ascending chain: hop k ships
          time  ≈ (n+1)L + that/B           the union of the k smallest)

U, the deduplicated union, is unknowable a priori; it is estimated as
``dedup_ratio x Σ s_i`` with a configurable prior (1.0 = no duplication,
the conservative default).

The mixture knob ``time_weight`` ∈ [0, 1]: 0 minimizes transmission, 1
minimizes response time; intermediate values scalarize the bi-objective
the way Sect. V asks for. Both objectives are normalized by the BASIC
plan's cost so the weight is scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..net.transport import LinkModel
from ..overlay.location_table import LocationEntry
from .strategies import PrimitiveStrategy

__all__ = ["CostModel", "StrategyCosts", "choose_strategy", "BYTES_PER_SOLUTION"]

#: Prior estimate of the wire size of one solution mapping. Only relative
#: costs matter for the decision, but the latency/bandwidth mix depends on
#: absolute scale, so this is calibrated to the FOAF workloads' mean
#: (two IRI bindings plus envelope).
BYTES_PER_SOLUTION = 90


@dataclass(frozen=True, slots=True)
class StrategyCosts:
    """Predicted cost of one strategy for one primitive sub-query."""

    strategy: PrimitiveStrategy
    bytes: float
    time: float

    def scalarized(self, time_weight: float, bytes_norm: float, time_norm: float) -> float:
        wb = (1.0 - time_weight) * (self.bytes / bytes_norm if bytes_norm else 0.0)
        wt = time_weight * (self.time / time_norm if time_norm else 0.0)
        return wb + wt


@dataclass(frozen=True, slots=True)
class CostModel:
    """Analytic cost model over a location-table row."""

    link: LinkModel
    bytes_per_solution: float = BYTES_PER_SOLUTION
    #: Expected |union| / Σ|locals| — 1.0 means no cross-provider
    #: duplication; lower values model shared/replicated data.
    dedup_ratio: float = 1.0

    def _sizes(self, entries: Sequence[LocationEntry]) -> List[float]:
        return sorted(e.frequency * self.bytes_per_solution for e in entries)

    def predict(self, entries: Sequence[LocationEntry]) -> List[StrategyCosts]:
        sizes = self._sizes(entries)
        if not sizes:
            return [StrategyCosts(PrimitiveStrategy.BASIC, 0.0, 0.0)]
        total = sum(sizes)
        union = self.dedup_ratio * total
        latency = self.link.latency
        bandwidth = self.link.bandwidth

        # BASIC: parallel fan-out (request+reply per provider, replies in
        # parallel so the slowest dominates), then assembly -> initiator.
        basic_bytes = total + union
        basic_time = 4 * latency + (max(sizes) + union) / bandwidth

        # FREQ: ascending chain; hop k ships the union of the k smallest
        # local results (dedup applied progressively), the final node
        # sends the full union straight to the initiator.
        raw_prefix = 0.0
        chain_bytes = 0.0
        chain_time = (len(sizes) + 1) * latency
        for size in sizes[:-1]:
            raw_prefix += size
            shipped = min(union, self.dedup_ratio * raw_prefix)
            chain_bytes += shipped
            chain_time += shipped / bandwidth
        chain_bytes += union
        chain_time += union / bandwidth

        return [
            StrategyCosts(PrimitiveStrategy.BASIC, basic_bytes, basic_time),
            StrategyCosts(PrimitiveStrategy.FREQ, chain_bytes, chain_time),
        ]


def choose_strategy(
    entries: Sequence[LocationEntry],
    link: LinkModel,
    time_weight: float,
    dedup_ratio: float = 1.0,
    wire_scale: float = 1.0,
) -> Tuple[PrimitiveStrategy, List[StrategyCosts]]:
    """Pick the strategy minimizing the scalarized objective.

    Returns (choice, predicted costs) — the predictions are surfaced in
    the execution report so experiments can audit the model.

    ``wire_scale`` shrinks the per-solution byte prior when shipping
    optimizations (projection pushdown, dictionary encoding) make each
    solution cheaper on the wire; latency terms are unaffected, so the
    model shifts toward the latency-optimal plan exactly when the
    payloads stop dominating.
    """
    if not 0.0 <= time_weight <= 1.0:
        raise ValueError("time_weight must lie in [0, 1]")
    if wire_scale <= 0.0:
        raise ValueError("wire_scale must be positive")
    model = CostModel(link=link, dedup_ratio=dedup_ratio,
                      bytes_per_solution=BYTES_PER_SOLUTION * wire_scale)
    costs = model.predict(entries)
    if len(costs) == 1:
        return costs[0].strategy, costs
    bytes_norm = costs[0].bytes or 1.0
    time_norm = costs[0].time or 1.0
    best = min(
        costs,
        key=lambda c: (c.scalarized(time_weight, bytes_norm, time_norm),
                       c.strategy.value),
    )
    return best.strategy, costs
