"""Conjunction graph patterns: multi-pattern BGPs (Sect. IV-D).

Two processing modes, as in the paper:

* **BASIC** — patterns resolve one after another at their owning index
  nodes; the accumulated solutions ship index-node to index-node and join
  locally at each step; the last index node sends the result to the
  initiator (the N4 → N15 → N1 walk of the paper's example).
* **OPTIMIZED** — exploit overlap between the patterns' storage-node
  sets: pick a shared storage node, run every pattern's chain in parallel
  with that node as the final stop, join everything there, and have it
  return the ultimate mappings directly to the initiator (the paper's
  S1 = {D1,D3,D4}, S2 = {D1,D2} example, joined at D1).

Join *order* uses the location tables' frequency totals as cardinality
estimates — AND is associative and commutative (Sect. IV-D), so the
planner may reorder freely; smallest-estimate-first shrinks intermediate
results.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..net.sizes import size_of
from ..net.transport import RpcTimeout
from ..net.wire import PRUNED_COUNTER_BYTES
from ..sparql import ast
from .failover import dispatch_primitive
from .join_site import combine_handles, digest_embed_cost, fetch_digest
from .physical import BGPWalk, ChainShip, HashJoin, note_lookup
from .plan import PatternInfo, ResultHandle, choose_shared_site, subquery_algebra
from .primitive import exec_broadcast, exec_pattern_to_site
from .strategies import ConjunctionMode, JoinSitePolicy

__all__ = ["exec_bgp", "exec_join"]

#: One conjunction step: the plan leaf and its located index row.
Step = Tuple[ChainShip, PatternInfo]


def exec_bgp(ctx, walk: BGPWalk):
    """Generator: execute a conjunction walk operator → ResultHandle."""
    span = ctx.tracer.span("conjunction", patterns=len(walk.children),
                           mode=ctx.options.conjunction_mode.value)
    try:
        return (yield from _exec_bgp(ctx, walk))
    finally:
        span.close()


def _locate_leaves(ctx, leaves: List[ChainShip]):
    """Generator: the location-table row for every leaf, in parallel.

    Leaves the cost planner already resolved (``lookup.info``) cost
    nothing; in legacy mode every leaf is consulted here, exactly as the
    pre-plan engine did.
    """
    pending = [leaf for leaf in leaves if leaf.lookup.info is None]
    located = {}
    if pending:
        processes = [
            ctx.sim.process(_locate_one(ctx, leaf)) for leaf in pending
        ]
        infos = yield ctx.sim.all_of(processes)
        for leaf, info in zip(pending, infos):
            if info is not None:
                located[id(leaf)] = info
                note_lookup(leaf.lookup, info)
    return [(leaf, located.get(id(leaf), leaf.lookup.info))
            for leaf in leaves]


def _locate_one(ctx, leaf: ChainShip):
    """Generator: one leaf's location-table row. Under
    ``options.partial_results`` an index row whose owner *and* replicas
    are all unreachable degrades to ``None`` (the pattern is dropped,
    flagged) instead of failing the whole walk."""
    try:
        info = yield from ctx.locate(leaf.lookup.pattern,
                                     leaf.lookup.condition)
    except RpcTimeout:
        if not ctx.options.partial_results:
            raise
        ctx.flag_partial(str(leaf.lookup.pattern), node=leaf)
        return None
    return info


def _empty_walk(ctx, walk: BGPWalk, steps: List[Step]):
    """The degraded (flagged) result of a conjunction walk with a dropped
    pattern: join(x, ∅) = ∅, so the whole walk contributes the empty set
    — a guaranteed subset of the true answer."""
    walk.detail["incomplete"] = True
    vars_ = frozenset()
    for leaf, _info in steps:
        vars_ |= frozenset(leaf.lookup.pattern.variables())
    return ctx.local_deposit(ctx.new_corr(), set(), vars=vars_)


def _exec_bgp(ctx, walk: BGPWalk):
    steps: List[Step] = yield from _locate_leaves(ctx, walk.children)
    post_filter = walk.post_filter
    if any(info is None for _leaf, info in steps):
        # partial_results: a pattern with no reachable index replica was
        # dropped by _locate_one; its contribution is the empty set and
        # the whole conjunction collapses to the (safe) empty subset.
        return _empty_walk(ctx, walk, steps)

    broadcast_steps = [s for s in steps if s[1].owner is None]
    indexed_steps = [s for s in steps if s[1].owner is not None]
    if walk.plan_order is not None:
        # The cost planner pinned the join order at plan time.
        position = {id(leaf): i for i, leaf in enumerate(walk.plan_order)}
        indexed_steps.sort(key=lambda s: position[id(s[0])])
    elif ctx.options.reorder_joins:
        # Smallest estimated cardinality first (frequency statistics).
        indexed_steps.sort(key=lambda s: (s[1].total_frequency,
                                          str(s[1].pattern)))

    if not indexed_steps:
        # Degenerate: every pattern is fully unbound.
        handle = None
        for _leaf, info in broadcast_steps:
            h = yield from exec_broadcast(ctx, subquery_algebra(info))
            handle = h if handle is None else (
                yield from combine_handles(ctx, "join", handle, h)
            )
        return _apply_post_filter_done(ctx, handle, post_filter)

    mode = (ConjunctionMode(walk.plan_mode) if walk.plan_mode is not None
            else ctx.options.conjunction_mode)
    walk.detail["mode"] = mode.value
    if mode is ConjunctionMode.BASIC:
        handle = yield from _exec_basic_mode(ctx, walk, indexed_steps)
    else:
        handle = yield from _exec_optimized_mode(ctx, walk, indexed_steps)
    if handle is None:
        # A pattern on the walk had no reachable replica (flagged by the
        # mode helper): degrade to the empty subset.
        return _empty_walk(ctx, walk, steps)

    for _leaf, info in broadcast_steps:
        h = yield from exec_broadcast(ctx, subquery_algebra(info))
        handle = yield from combine_handles(ctx, "join", handle, h)

    return (yield from _apply_post_filter(ctx, handle, post_filter))


def _exec_basic_mode(ctx, walk: BGPWalk, steps: List[Step]):
    """The paper's basic conjunction walk over index nodes.

    With the shipping optimizations on, each step also (a) pushes the
    query-wide projection down into the storage fan-out, (b) embeds a
    semijoin digest of the accumulated solutions so providers shed
    non-joining rows before their results ever travel, and (c) ships the
    accumulated result onward projected to the variables still needed by
    the remaining patterns (per-edge liveness, tighter than the global
    set for the walk's middle hops).
    """
    opts = ctx.options
    infos = [info for _leaf, info in steps]
    pattern_vars = [frozenset(info.pattern.variables()) for info in infos]
    # suffix[i] = vars appearing in patterns i.. (suffix[len] = empty).
    suffix: List[frozenset] = [frozenset()] * (len(infos) + 1)
    for i in range(len(infos) - 1, -1, -1):
        suffix[i] = suffix[i + 1] | pattern_vars[i]

    handle: Optional[ResultHandle] = None
    for i, (leaf, info) in enumerate(steps):
        corr = ctx.new_corr()
        keep = ctx.keep_vars(pattern_vars[i])
        payload = {
            "algebra": subquery_algebra(info),
            "key": info.key,
            "strategy": "basic",
            "corr": corr,
            "deposit": True,
            "storage_timeout": ctx.options.delivery_timeout,
        }
        if keep is not None:
            payload["project"] = keep
        if opts.dictionary_encoding:
            payload["encode"] = True
        if opts.partial_results:
            payload["partial"] = True
        cache_cfg = ctx.cache_cfg()
        if cache_cfg is not None:
            payload["cache"] = cache_cfg
        if (
            handle is not None
            and opts.semijoin
            and handle.count >= opts.semijoin_min_rows
            and handle.vars
        ):
            shared = handle.vars & pattern_vars[i]
            if shared:
                digest = yield from fetch_digest(ctx, handle, shared)
                if digest is not None:
                    payload["digest"] = digest
                    # The digest rides in the execute_primitive call and
                    # in each of the owner's storage fan-out sub-queries;
                    # each provider reply grows by the pruned counter.
                    ctx.report.digest_bytes += (
                        (1 + len(info.entries)) * digest_embed_cost(digest)
                        + len(info.entries) * PRUNED_COUNTER_BYTES
                    )
        try:
            ack, info, corr = yield from dispatch_primitive(
                ctx, info, payload, corr,
                timeout=ctx.options.delivery_timeout * 4)
        except RpcTimeout:
            if not opts.partial_results:
                raise
            ctx.flag_partial(str(info.pattern), node=leaf)
            return None
        if ack.get("dropped"):
            # Some providers of this pattern timed out of the owner's
            # fan-out: the step's rows are a subset — flag, keep going.
            ctx.flag_partial(
                f"{ack['dropped']} providers of {info.pattern}")
        if "digest" in payload:
            pruned = ack.get("pruned", 0)
            ctx.report.rows_pruned += pruned
            # The ack itself grew by its pruned entry.
            ctx.report.digest_bytes += size_of("pruned") + size_of(pruned) + 2
        hvars = frozenset(keep) if keep is not None else pattern_vars[i]
        mine = ResultHandle(info.owner, corr, ack["count"], hvars)
        leaf.placement = mine.site
        leaf.actual_rows = mine.count
        if handle is None:
            handle = mine
        else:
            # Ship the accumulated solutions to this pattern's index node
            # and join there (N4 forwards its solutions to N15, which
            # carries out a local join). The accumulated side only needs
            # the globally-live vars plus whatever later patterns join on.
            edge_live = (None if ctx.live_vars is None
                         else ctx.live_vars | suffix[i + 1])
            handle = yield from combine_handles(
                ctx, "join", handle, mine, site=mine.site, live=edge_live
            )
    assert handle is not None
    return handle


def _exec_optimized_mode(ctx, walk: BGPWalk, steps: List[Step]):
    """Overlap-aware parallel chains ending at a shared storage node."""
    infos = [info for _leaf, info in steps]
    site = walk.plan_site
    if site is None:
        site = choose_shared_site(infos)
    if site is None:
        site = _fallback_site(ctx, infos)
    ctx.report.merge_note(f"conjunction site {site}")

    processes = [
        ctx.sim.process(_pattern_to_site_guarded(ctx, info, site, leaf))
        for leaf, info in steps
    ]
    handles: List[ResultHandle] = yield ctx.sim.all_of(processes)
    if any(h is None for h in handles):
        return None  # a pattern dropped (flagged in the guard)
    for (leaf, _info), h in zip(steps, handles):
        leaf.placement = h.site
        leaf.actual_rows = h.count

    # Pairwise joins at the site, smallest first to keep intermediates low.
    handles.sort(key=lambda h: (h.count, h.corr))
    handle = handles[0]
    for nxt in handles[1:]:
        handle = yield from combine_handles(ctx, "join", handle, nxt, site=site)
    return handle


def _pattern_to_site_guarded(ctx, info: PatternInfo, site: str,
                             leaf: ChainShip):
    """Generator: :func:`exec_pattern_to_site`, degrading an unreachable
    pattern to ``None`` under ``options.partial_results``."""
    if not ctx.options.partial_results:
        return (yield from exec_pattern_to_site(ctx, info, site, leaf=leaf))
    try:
        return (yield from exec_pattern_to_site(ctx, info, site, leaf=leaf))
    except RpcTimeout:
        ctx.flag_partial(str(info.pattern), node=leaf)
        return None


def _fallback_site(ctx, infos: List[PatternInfo]) -> str:
    """No shared provider: place assembly per the join-site policy."""
    policy = ctx.options.join_site_policy
    if policy is JoinSitePolicy.QUERY_SITE:
        return ctx.initiator
    if policy is JoinSitePolicy.THIRD_SITE:
        alive = [
            s for s in sorted(ctx.system.storage_nodes)
            if ctx.system.network.nodes[s].alive
        ]
        if alive:
            return min(alive, key=lambda node: (ctx.load[node], node))
        return ctx.initiator
    # MOVE_SMALL: bring the small sides to the largest pattern's biggest
    # provider, so the bulkiest data moves least.
    biggest = max(infos, key=lambda i: i.total_frequency)
    if biggest.entries:
        best = max(biggest.entries, key=lambda e: (e.frequency, e.storage_id))
        return best.storage_id
    return ctx.initiator


def _apply_post_filter(ctx, handle: ResultHandle,
                       post_filter: Optional[ast.Expression]):
    """Generator: apply a non-pushable filter where the data sits."""
    if post_filter is None:
        return handle
    out = ctx.new_corr()
    payload = {"corr": handle.corr, "out": out, "condition": post_filter}
    if handle.site == ctx.initiator:
        summary = ctx.initiator_peer.rpc_filter_box(payload, ctx.initiator)
    else:
        summary = yield ctx.call(handle.site, "filter_box", payload)
    return ResultHandle(handle.site, out, summary["count"], handle.vars)


def _apply_post_filter_done(ctx, handle, post_filter):
    """Non-generator shim for the degenerate all-broadcast path."""
    if post_filter is None:
        return handle
    data = ctx.initiator_peer.mailbox.pop(handle.corr, set())
    from ..sparql.expr import filter_passes

    filtered = {mu for mu in data if filter_passes(post_filter, mu)}
    return ctx.local_deposit(ctx.new_corr(), filtered, vars=handle.vars)


def exec_join(ctx, node: HashJoin):
    """Generator: a general Join of two sub-plans (produced e.g. by the
    optimizer splitting a filtered BGP)."""
    from .executor import exec_subtrees_parallel

    span = ctx.tracer.span("join")
    try:
        left, right = yield from exec_subtrees_parallel(
            ctx, [node.left, node.right])
        return (yield from combine_handles(ctx, "join", left, right,
                                           edges=node.edges))
    finally:
        span.close()
