"""Frequency-driven cost model and plan-time optimization.

Sect. V: "We have yet to investigate, in a fully-distributed context, how
to process and optimize SPARQL queries in the face of a mixture of such
objectives [transmission cost vs response time] and come up with 'good'
query plans."

Two layers live here:

1. The **per-primitive strategy model** (:class:`CostModel`,
   :func:`choose_strategy`) — an analytic model over the information the
   initiator already has (the location-table row's provider frequencies
   and the link model) picking whichever of BASIC / FREQ-chain minimizes
   a weighted mixture of transmission and response time. This is the
   model the ``adaptive`` primitive strategy has used per sub-query since
   E11; :mod:`repro.query.adaptive` re-exports it for compatibility.

2. The **whole-plan annotator** (:func:`annotate_plan`) — the
   ``--plan cost`` mode. It consults the two-level index once for every
   leaf pattern of the physical plan (a real, parallel round of lookups,
   charged to the query's byte ledger like any other traffic), then runs
   a pure bottom-up estimation pass over the operator tree: triple
   frequencies seed leaf cardinalities, joins/optionals/unions/filters
   propagate them upward, and the estimates drive join order (greedy
   connected smallest-first, reusing the optimizer's reorder), the
   conjunction walk mode (basic chain vs shared-site), the per-leaf
   chain strategy, and byte-weighted combine-site choice
   (:func:`choose_combine_site`).

Model for one primitive (fan-out to n providers with estimated result
sizes s_1..s_n bytes, link latency L, bandwidth B, assembly/initiator
transfers included):

* BASIC:  bytes ≈ Σ s_i + U               (each provider → assembly, then
          time  ≈ 4L + (max_i s_i + U)/B   the union U → initiator; the
                                            fan-out legs run in parallel)
* FREQ:   bytes ≈ Σ_k prefix_k + U         (ascending chain: hop k ships
          time  ≈ (n+1)L + that/B           the union of the k smallest)

U, the deduplicated union, is unknowable a priori; it is estimated as
``dedup_ratio x Σ s_i`` with a configurable prior (1.0 = no duplication,
the conservative default).

The mixture knob ``time_weight`` ∈ [0, 1]: 0 minimizes transmission, 1
minimizes response time; intermediate values scalarize the bi-objective
the way Sect. V asks for. Both objectives are normalized by the BASIC
plan's cost so the weight is scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..net.transport import LinkModel
from ..overlay.location_table import LocationEntry
from ..sparql.algebra import BGP
from ..sparql.optimizer import reorder_bgp
from .physical import (
    BGPWalk, CachedScan, CacheProbe, ChainShip, EmptyScan, FilterOp,
    GraphScope, HashJoin, IndexLookup, LeftJoinOp, LocalBGPScan, PhysOp,
    Ship, UnionOp, note_lookup, walk_plan,
)
from .strategies import PrimitiveStrategy

__all__ = [
    "CostModel", "StrategyCosts", "choose_strategy", "BYTES_PER_SOLUTION",
    "est_row_bytes", "estimate_join_rows", "FILTER_SELECTIVITY",
    "annotate_plan", "choose_combine_site",
]

#: Prior estimate of the wire size of one solution mapping. Only relative
#: costs matter for the decision, but the latency/bandwidth mix depends on
#: absolute scale, so this is calibrated to the FOAF workloads' mean
#: (two IRI bindings plus envelope).
BYTES_PER_SOLUTION = 90

#: Prior selectivity of a FILTER whose effect the planner cannot see
#: (regex/arithmetic over unbound data). One-third keeps filtered branches
#: cheaper than their inputs without pretending they vanish.
FILTER_SELECTIVITY = 1.0 / 3.0


def est_row_bytes(n_vars: int) -> float:
    """Wire-size prior for a solution row with *n_vars* bindings.

    Calibrated so the 2-variable FOAF mean lands on
    :data:`BYTES_PER_SOLUTION` (30-byte envelope + ~30 bytes/binding).
    """
    return 30.0 + 30.0 * max(n_vars, 1)


@dataclass(frozen=True, slots=True)
class StrategyCosts:
    """Predicted cost of one strategy for one primitive sub-query."""

    strategy: PrimitiveStrategy
    bytes: float
    time: float

    def scalarized(self, time_weight: float, bytes_norm: float, time_norm: float) -> float:
        wb = (1.0 - time_weight) * (self.bytes / bytes_norm if bytes_norm else 0.0)
        wt = time_weight * (self.time / time_norm if time_norm else 0.0)
        return wb + wt


@dataclass(frozen=True, slots=True)
class CostModel:
    """Analytic cost model over a location-table row."""

    link: LinkModel
    bytes_per_solution: float = BYTES_PER_SOLUTION
    #: Expected |union| / Σ|locals| — 1.0 means no cross-provider
    #: duplication; lower values model shared/replicated data.
    dedup_ratio: float = 1.0

    def _sizes(self, entries: Sequence[LocationEntry]) -> List[float]:
        return sorted(e.frequency * self.bytes_per_solution for e in entries)

    def predict(self, entries: Sequence[LocationEntry]) -> List[StrategyCosts]:
        sizes = self._sizes(entries)
        if not sizes:
            return [StrategyCosts(PrimitiveStrategy.BASIC, 0.0, 0.0)]
        total = sum(sizes)
        union = self.dedup_ratio * total
        latency = self.link.latency
        bandwidth = self.link.bandwidth

        # BASIC: parallel fan-out (request+reply per provider, replies in
        # parallel so the slowest dominates), then assembly -> initiator.
        basic_bytes = total + union
        basic_time = 4 * latency + (max(sizes) + union) / bandwidth

        # FREQ: ascending chain; hop k ships the union of the k smallest
        # local results (dedup applied progressively), the final node
        # sends the full union straight to the initiator.
        raw_prefix = 0.0
        chain_bytes = 0.0
        chain_time = (len(sizes) + 1) * latency
        for size in sizes[:-1]:
            raw_prefix += size
            shipped = min(union, self.dedup_ratio * raw_prefix)
            chain_bytes += shipped
            chain_time += shipped / bandwidth
        chain_bytes += union
        chain_time += union / bandwidth

        return [
            StrategyCosts(PrimitiveStrategy.BASIC, basic_bytes, basic_time),
            StrategyCosts(PrimitiveStrategy.FREQ, chain_bytes, chain_time),
        ]


def choose_strategy(
    entries: Sequence[LocationEntry],
    link: LinkModel,
    time_weight: float,
    dedup_ratio: float = 1.0,
    wire_scale: float = 1.0,
) -> Tuple[PrimitiveStrategy, List[StrategyCosts]]:
    """Pick the strategy minimizing the scalarized objective.

    Returns (choice, predicted costs) — the predictions are surfaced in
    the execution report so experiments can audit the model.

    ``wire_scale`` shrinks the per-solution byte prior when shipping
    optimizations (projection pushdown, dictionary encoding) make each
    solution cheaper on the wire; latency terms are unaffected, so the
    model shifts toward the latency-optimal plan exactly when the
    payloads stop dominating.
    """
    if not 0.0 <= time_weight <= 1.0:
        raise ValueError("time_weight must lie in [0, 1]")
    if wire_scale <= 0.0:
        raise ValueError("wire_scale must be positive")
    model = CostModel(link=link, dedup_ratio=dedup_ratio,
                      bytes_per_solution=BYTES_PER_SOLUTION * wire_scale)
    costs = model.predict(entries)
    if len(costs) == 1:
        return costs[0].strategy, costs
    bytes_norm = costs[0].bytes or 1.0
    time_norm = costs[0].time or 1.0
    best = min(
        costs,
        key=lambda c: (c.scalarized(time_weight, bytes_norm, time_norm),
                       c.strategy.value),
    )
    return best.strategy, costs


# ------------------------------------------------- cardinality propagation


def estimate_join_rows(left_rows: float, right_rows: float,
                       shared_vars: bool) -> float:
    """|Ω1 ⋈ Ω2| prior: with a shared variable the smaller side bounds
    the match count (foreign-key-style prior); without one the join is a
    Cartesian product."""
    if shared_vars:
        return min(left_rows, right_rows)
    return left_rows * right_rows


def _leaf_vars(leaf: ChainShip) -> frozenset:
    return frozenset(leaf.lookup.pattern.variables())


def _op_vars(node: PhysOp) -> frozenset:
    """Certain variables produced by a sub-plan (for sharing tests)."""
    if isinstance(node, ChainShip):
        return _leaf_vars(node)
    if isinstance(node, BGPWalk):
        out: frozenset = frozenset()
        for leaf in node.children:
            out |= _leaf_vars(leaf)
        return out
    if isinstance(node, (HashJoin, UnionOp, LeftJoinOp)):
        left, right = node.left, node.right
        if isinstance(node, UnionOp):
            return _op_vars(left) & _op_vars(right)
        if isinstance(node, LeftJoinOp):
            return _op_vars(left)
        return _op_vars(left) | _op_vars(right)
    if isinstance(node, (FilterOp, GraphScope, Ship)):
        return _op_vars(node.children[0])
    if isinstance(node, LocalBGPScan):
        out = frozenset()
        for p in node.bgp.patterns:
            out |= frozenset(p.variables())
        return out
    return frozenset()


# ------------------------------------------------------ walk-level choices


def order_walk_leaves(walk: BGPWalk) -> List[ChainShip]:
    """Frequency-driven join order for a conjunction walk.

    Reuses the optimizer's greedy connected smallest-first reorder
    (start from the rarest pattern, always extend through a shared
    variable to avoid Cartesian products) with the location-table
    frequencies as the estimator, then maps the reordered patterns back
    to their leaves.
    """
    frequency = {id(leaf): leaf.lookup.info.total_frequency
                 for leaf in walk.children}
    by_pattern: Dict[object, List[ChainShip]] = {}
    for leaf in walk.children:
        by_pattern.setdefault(leaf.lookup.pattern, []).append(leaf)

    def estimate(pattern) -> tuple:
        candidates = by_pattern[pattern]
        return (min(frequency[id(leaf)] for leaf in candidates), str(pattern))

    bgp = BGP(tuple(leaf.lookup.pattern for leaf in walk.children))
    reordered = reorder_bgp(bgp, estimate)
    ordered: List[ChainShip] = []
    for pattern in reordered.patterns:
        ordered.append(by_pattern[pattern].pop(0))
    return ordered


def _walk_mode(ordered: List[ChainShip],
               row_bytes: float) -> Tuple[str, float]:
    """Choose basic-chain vs shared-site for a conjunction walk by
    estimated shipped bytes; returns (mode, estimated result rows).

    * basic: each step ships the accumulated intermediate to the next
      pattern's site, plus every pattern's own provider fan-in;
    * optimized: every pattern's chain lands once at a shared site (the
      heaviest pattern's rows stay resident), then pairwise combines are
      local and only the final result travels home.
    """
    sizes = []
    bound: frozenset = frozenset()
    inter: Optional[float] = None
    basic_bytes = 0.0
    for leaf in ordered:
        rows = float(leaf.lookup.info.total_frequency)
        sizes.append(rows)
        basic_bytes += rows * row_bytes  # providers -> the step's site
        if inter is None:
            inter = rows
        else:
            shared = bool(bound & _leaf_vars(leaf))
            inter = estimate_join_rows(inter, rows, shared)
            basic_bytes += inter * row_bytes  # step result travels onward
        bound |= _leaf_vars(leaf)
    result_rows = inter if inter is not None else 0.0
    basic_bytes += result_rows * row_bytes  # final -> initiator

    resident = max(sizes) if sizes else 0.0
    optimized_bytes = (sum(sizes) - resident + result_rows) * row_bytes

    mode = "optimized" if optimized_bytes < basic_bytes else "basic"
    return mode, result_rows


# ----------------------------------------------------------- the annotator


def annotate_plan(ctx, plan: PhysOp):
    """Plan-time optimization pass for ``--plan cost`` (a sim process).

    Phase 1 — **statistics**: locate every :class:`IndexLookup` leaf in
    parallel through the two-level index. These are real lookups, charged
    to the query's byte/message ledger; their results are pinned on the
    leaves so execution never has to re-locate.

    Phase 2 — **pure estimation & decisions**: bottom-up cardinality and
    wire-cost estimates over the tree; conjunction walks get a
    frequency-driven join order, a mode, and per-leaf chain strategies;
    combine edges get byte estimates that :func:`choose_combine_site`
    reads at execution time.
    """
    lookups = [op for op in walk_plan(plan) if isinstance(op, IndexLookup)]
    processes = [
        ctx.sim.process(_locate_leaf(ctx, lookup)) for lookup in lookups
    ]
    if processes:
        yield ctx.sim.all_of(processes)
    ctx.report.merge_note(f"cost plan: {len(lookups)} statistics lookups")
    _estimate(ctx, plan)


def _locate_leaf(ctx, lookup: IndexLookup):
    info = yield from ctx.locate(lookup.pattern, lookup.condition)
    lookup.info = info
    note_lookup(lookup, info)


def _pin_leaf_strategy(ctx, leaf: ChainShip) -> None:
    """Freeze the BASIC/FREQ choice for one leaf from the statistics.

    Plan-time has no per-edge liveness, so the model runs at wire scale
    1.0 — the deterministic, audit-friendly choice the explain output
    shows before execution starts.
    """
    info = leaf.lookup.info
    if info.owner is None or not info.entries:
        leaf.plan_strategy = PrimitiveStrategy.BASIC
        return
    strategy, _costs = choose_strategy(
        info.entries, ctx.network.link,
        ctx.options.time_weight, ctx.options.dedup_prior,
    )
    leaf.plan_strategy = strategy


def _estimate(ctx, node: PhysOp) -> float:
    """Bottom-up row estimation; writes est_rows/est_bytes and the plan
    decisions as a side effect. Returns the node's estimated rows."""
    row_bytes = est_row_bytes(len(_op_vars(node)))

    if isinstance(node, EmptyScan):
        node.est_rows, node.est_bytes = 1.0, 0.0
        return 1.0

    if isinstance(node, ChainShip):
        info = node.lookup.info
        rows = float(info.total_frequency)
        _pin_leaf_strategy(ctx, node)
        node.est_rows = rows
        node.est_bytes = rows * row_bytes
        if isinstance(node, CachedScan):
            # An expected hit serves the rows from the owner's cache and
            # ships nothing from the providers; the system-wide observed
            # hit ratio is the prior for how often that happens.
            node.est_bytes *= 1.0 - ctx.network.cache.hit_ratio()
        return rows

    if isinstance(node, BGPWalk):
        for leaf in node.children:
            _estimate(ctx, leaf)
        ordered = order_walk_leaves(node)
        mode, rows = _walk_mode(ordered, row_bytes)
        node.plan_order = ordered
        node.plan_mode = mode
        node.est_rows = rows
        node.est_bytes = rows * row_bytes
        if node.post_filter is not None:
            node.est_rows = rows = rows * FILTER_SELECTIVITY
            node.est_bytes = rows * row_bytes
        if isinstance(node, CacheProbe):
            # A combine-site hit skips every chain and join of the walk.
            node.est_bytes *= 1.0 - ctx.network.cache.hit_ratio()
        return rows

    if isinstance(node, (HashJoin, UnionOp, LeftJoinOp)):
        edges = node.edges
        left_rows = _estimate(ctx, node.left)
        right_rows = _estimate(ctx, node.right)
        shared = bool(_op_vars(node.left) & _op_vars(node.right))
        if isinstance(node, UnionOp):
            rows = left_rows + right_rows
        elif isinstance(node, LeftJoinOp):
            matched = estimate_join_rows(left_rows, right_rows, shared)
            rows = max(left_rows, matched)  # unmatched rows survive
        else:
            rows = estimate_join_rows(left_rows, right_rows, shared)
        if edges is not None:
            for edge, operand_rows, operand in (
                (edges[0], left_rows, node.left),
                (edges[1], right_rows, node.right),
            ):
                edge.est_rows = operand_rows
                edge.est_bytes = operand_rows * est_row_bytes(
                    len(_op_vars(operand)))
        node.est_rows = rows
        node.est_bytes = rows * row_bytes
        return rows

    if isinstance(node, FilterOp):
        rows = _estimate(ctx, node.operand) * FILTER_SELECTIVITY
        node.est_rows = rows
        node.est_bytes = rows * row_bytes
        return rows

    if isinstance(node, GraphScope):
        rows = _estimate(ctx, node.operand)
        node.est_rows = rows
        node.est_bytes = rows * row_bytes
        return rows

    # Post-processing wrappers and anything unestimated: pass through.
    rows = 0.0
    for child in node.children:
        rows = _estimate(ctx, child)
    node.est_rows = rows if node.children else None
    return rows


# -------------------------------------------------------- combine placement


def choose_combine_site(left, right) -> str:
    """Byte-weighted move-small: keep the side that is more expensive to
    move resident, ship the other. Costs come from the handles' actual
    counts and their schemas' wire prior; ties keep the left operand
    resident (the deterministic choice)."""
    left_bytes = left.count * est_row_bytes(len(left.vars or ()))
    right_bytes = right.count * est_row_bytes(len(right.vars or ()))
    return left.site if left_bytes >= right_bytes else right.site
