"""The distributed query executor — the paper's Fig. 3 workflow, live.

``DistributedExecutor.execute`` runs a SPARQL query end to end on a
:class:`~repro.overlay.system.HybridSystem`:

1. **Query Parsing** — :func:`repro.sparql.parse_query`;
2. **Query Transformation** — :func:`repro.sparql.translate_pattern`;
3. **Global Query Optimization** — algebraic rewriting (filter pushing)
   plus frequency-statistics join reordering, producing a distributed
   plan;
4. **Local Query Execution** — sub-queries shipped to index and storage
   nodes, evaluated there, with intermediate results moving site-to-site
   per the chosen strategies;
5. **Post-Processing** — solution sequence modifiers applied at the
   initiator, which returns the final result.

Every run yields an :class:`ExecutionReport` with the simulated response
time and exact transmission totals — the quantities the paper's
optimization study trades against each other.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..net.sim import Event
from ..net.transport import RpcError, RpcTimeout
from ..net.wire import as_solution_set
from ..trace.tracer import (
    NULL_TRACER, PHASE_FINALIZE, PHASE_LOOKUP, PhaseStats, Tracer,
)
from ..overlay.keys import key_for_pattern
from ..overlay.peer import QueryPeer
from ..overlay.system import HybridSystem
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Variable
from ..rdf.triple import TriplePattern
from ..sparql import ast
from ..sparql.algebra import Algebra, translate_pattern
from ..sparql.errors import SparqlError
from ..sparql.eval import QueryResult, apply_modifiers
from ..sparql.optimizer import optimize as optimize_algebra
from ..sparql.parser import parse_query
from ..sparql.solutions import EMPTY_MAPPING, SolutionMapping
from ..rdf.namespaces import COMMON_PREFIXES
from .physical import (
    BGPWalk, CacheProbe, ChainShip, EmptyScan, FilterOp, GraphScope,
    HashJoin, LeftJoinOp, PhysOp, UnionOp, compile_query_plan,
    execution_root, pattern_leaf, record_postprocess,
)
from .plan import PatternInfo, ResultHandle, compute_live_vars
from .strategies import ExecutionOptions

__all__ = ["DistributedExecutor", "ExecutionReport", "ExecutionContext",
           "QueryFailed", "QueryDeadlineExceeded"]


class QueryFailed(SparqlError):
    """Distributed execution could not complete (e.g. unreachable sites)."""


class DeliveryTimeout(QueryFailed):
    """An expected one-way delivery never arrived (broken chain)."""


class QueryDeadlineExceeded(QueryFailed):
    """The query's wall-clock budget ran out before completion."""


@dataclass
class ExecutionReport:
    """What one distributed query execution cost."""

    response_time: float = 0.0
    messages: int = 0
    bytes_total: int = 0
    #: DHT hops spent consulting the two-level index.
    lookup_hops: int = 0
    #: Chain fall-backs after a delivery timeout (failure handling).
    retries: int = 0
    result_count: int = 0
    #: Per-query lookup-cache effectiveness (the executor's LRU over
    #: two-level index consultations; see ExecutionOptions.lookup_cache_size).
    lookup_cache_hits: int = 0
    lookup_cache_misses: int = 0
    #: Cross-query result-cache effectiveness during this execution's
    #: stats window (system-wide counters; see ExecutionOptions.result_cache).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Rows dropped by semijoin digests before they could cross a link.
    rows_pruned: int = 0
    #: Exact overhead the semijoin technique added: digest round trips
    #: plus digest embeds in ship/evaluate payloads. The documented bound:
    #: enabling semijoin never costs more than this many extra bytes.
    digest_bytes: int = 0
    #: Degraded-mode flag (``ExecutionOptions.partial_results``): True
    #: when some sub-pattern's contribution was dropped because its owner
    #: and replicas were all unreachable — the answer is then a verified
    #: *subset* of the true answer, never wrong or extra rows.
    incomplete: bool = False
    #: Which patterns were dropped (human-readable, for reports/explain).
    dropped_patterns: List[str] = field(default_factory=list)
    #: Name of the plan shape actually executed (diagnostics).
    notes: List[str] = field(default_factory=list)
    #: Per-workflow-phase cost breakdown (lookup / ship / join / finalize),
    #: populated only when the query ran with a tracer; the phases' byte
    #: totals partition ``bytes_total`` exactly.
    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    #: The tracer that recorded this execution (None when tracing is off).
    trace: Optional[Tracer] = None
    #: The physical operator plan the query compiled to, annotated with
    #: placements, estimates (cost mode), and per-operator actuals after
    #: execution — what ``repro explain`` renders.
    plan: Optional[Any] = None

    def merge_note(self, note: str) -> None:
        self.notes.append(note)

    def phase_bytes(self, phase: str) -> int:
        stats = self.phases.get(phase)
        return stats.bytes if stats is not None else 0


class ExecutionContext:
    """Per-query state shared by the operator modules."""

    def __init__(
        self,
        system: HybridSystem,
        initiator: str,
        options: ExecutionOptions,
        report: ExecutionReport,
        load: Counter,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.system = system
        self.initiator = initiator
        self.options = options
        self.report = report
        #: Absolute simulation time the whole query must finish by
        #: (None = unbounded). Every RPC — and the retry schedule — is
        #: clamped to the remaining budget, and the deadline travels with
        #: dispatched sub-queries so remote fan-outs honor it too.
        self.deadline_at: Optional[float] = (
            system.sim.now + options.query_deadline
            if options.query_deadline is not None else None
        )
        self._retry = options.retry_policy()
        if options.breaker and system.network.health is None:
            # First breaker-enabled query installs the network-wide
            # ledger; later queries (and the transport) share it, so
            # health observed during one query protects the next.
            from ..net.health import HealthLedger

            system.network.health = HealthLedger(
                system.sim,
                system.network.failover,
                failure_threshold=options.breaker_failures,
                reset_after=options.breaker_reset,
                latency_threshold=options.breaker_latency,
            )
        #: Observability hook shared by the operator modules; the no-op
        #: tracer by default, so untraced spans cost one method call.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Cross-query per-node load counter (the executor's simulated QoS
        #: monitor, feeding the Third-Site policy).
        self.load = load
        self._corr_seq = itertools.count()
        self._slot: Optional[int] = None
        #: Correlation ids abandoned after a delivery timeout: a late
        #: message may still be in flight for these, so their dead-letter
        #: tombstones outlive the query (swept by a delayed timer).
        self._abandoned: Set[str] = set()
        #: Every correlation id this query minted, so ``release()`` can
        #: sweep stragglers out of peer mailboxes when the query ends.
        self._corrs: List[str] = []
        #: Global keep-set for projection pushdown (None = pruning off or
        #: unsound for this query form); set by the executor after plan
        #: analysis (:func:`repro.query.plan.compute_live_vars`).
        self.live_vars: Optional[FrozenSet] = None
        #: Per-query LRU over (key kind, ring key) → (owner, entries).
        self._lookup_cache: "OrderedDict" = OrderedDict()
        self._lookup_epoch = system.network.membership_epoch
        node = system.network.node(initiator)
        if not isinstance(node, QueryPeer):
            raise QueryFailed(f"initiator {initiator!r} is not a query peer")
        self.initiator_peer: QueryPeer = node
        #: Ring entry point: the initiator itself if it is an index node,
        #: otherwise the index node it is attached to (Sect. III-A).
        if initiator in system.index_nodes:
            self.entry_index = initiator
        else:
            storage = system.storage_nodes.get(initiator)
            if storage is None or storage.index_node_id is None:
                raise QueryFailed(f"initiator {initiator!r} has no ring entry point")
            entry = storage.index_node_id
            parent = system.index_nodes.get(entry)
            if parent is None or not parent.alive:
                # The attachment point died (Sect. III-D): re-attach to a
                # live index node, like a storage node re-joining the system
                # (same placement rule as the original attachment).
                entry = self._reattach(storage)
            self.entry_index = entry
        # Globally unique query id among live executions: per-initiator
        # namespace slots.  A lone (or serial) query always holds slot 0
        # and keeps the classic `<initiator>#<seq>` correlation ids —
        # byte-identical wire traffic — while concurrent queries from the
        # same initiator mint from disjoint `<initiator>~<slot>` spaces.
        # The slot doubles as the query's flow id for the network's
        # contention model.  Acquired last, so a failed __init__ never
        # holds a slot.
        self._slot = self.initiator_peer.acquire_query_slot()
        self.query_id = (
            initiator if self._slot == 0 else f"{initiator}~{self._slot}"
        )

    def _reattach(self, storage) -> str:
        from ..chord.hashing import hash_string

        try:
            new_parent = self.system.ring.owner_of(
                hash_string(storage.node_id, self.system.space)
            )
        except LookupError as exc:
            raise QueryFailed("no live index nodes remain") from exc
        old = storage.index_node_id
        storage.index_node_id = new_parent.node_id
        if storage.node_id not in new_parent.attached_storage:
            new_parent.attached_storage.append(storage.node_id)
        self.system.network.failover.entry_failovers += 1
        self.report.merge_note(
            f"re-attached {storage.node_id}: {old} -> {new_parent.node_id}"
        )
        return new_parent.node_id

    # ------------------------------------------------------------- plumbing

    @property
    def sim(self):
        return self.system.sim

    @property
    def network(self):
        return self.system.network

    def new_corr(self) -> str:
        corr = f"{self.query_id}#{next(self._corr_seq)}"
        self._corrs.append(corr)
        return corr

    def call(self, dst: str, method: str, payload: Any = None,
             timeout: Optional[float] = None) -> Event:
        if self.deadline_at is None and self._retry is None:
            # The classic fail-fast path, byte-identical to before.
            return self.network.call(self.initiator, dst, method, payload,
                                     timeout, flow=self.query_id)
        if self.deadline_at is not None and self.sim.now >= self.deadline_at:
            self.network.failover.deadline_exhausted += 1
            raise QueryDeadlineExceeded(
                f"query deadline exceeded before calling {dst}.{method}")
        return self.network.call(self.initiator, dst, method, payload, timeout,
                                 flow=self.query_id, retry=self._retry,
                                 deadline=self.deadline_at)

    def abandon(self, corr: str, site: Optional[str] = None) -> None:
        """Tombstone *corr* at the initiator (and at *site*, the intended
        delivery destination) so any late in-flight message under it is
        dropped on arrival instead of leaking into an unread mailbox."""
        self.initiator_peer.abandon_corr(corr)
        if site is not None and site != self.initiator:
            target = self.network.nodes.get(site)
            if isinstance(target, QueryPeer):
                target.abandon_corr(corr)
        self._abandoned.add(corr)

    def flag_partial(self, what: str, node=None) -> None:
        """Record that *what* (a sub-pattern / branch) contributed nothing
        because every replica was unreachable: the query's answer is now a
        flagged *subset* of the truth (``options.partial_results``)."""
        self.report.incomplete = True
        self.report.dropped_patterns.append(what)
        self.network.failover.partial_patterns_dropped += 1
        self.report.merge_note(f"partial: dropped {what}")
        if node is not None:
            node.detail["dropped"] = True
            node.actual_rows = 0

    def delivery_tag(self, corr: str) -> Optional[str]:
        """A fresh notification key for one delivery-wait epoch of *corr*.

        ``None`` without a fault plan: the mailbox corr itself doubles as
        the notification key, byte-identical to previous releases. Under
        chaos the same mailbox corr can be waited on more than once (a
        chain completes into it, then a ship lands in it), and message
        duplication means a trailing copy of the *first* epoch's
        notification could forge the second epoch's acknowledgement —
        so each epoch gets its own key (swept with the query's other
        corrs at release).
        """
        if self.network.faults is None:
            return None
        return self.new_corr()

    def wait_delivery(self, corr: str, site: Optional[str] = None,
                      notify_corr: Optional[str] = None):
        """Generator: wait for a `delivered` notification with a timeout.

        Returns the delivered solution count; raises DeliveryTimeout when
        the chain broke (e.g. a storage node on the route crashed). The
        loser of the race never lingers: a won delivery cancels the timer;
        a timeout abandons the correlation id here and at *site* (the
        delivery destination, when given), so a late arrival is dropped
        instead of leaking into a mailbox no one reads. *notify_corr* (a
        :meth:`delivery_tag`) keys the wait on this epoch's notification
        instead of the shared mailbox corr.
        """
        wait = self.options.delivery_timeout
        if self.deadline_at is not None:
            wait = min(wait, max(self.deadline_at - self.sim.now, 0.0))
        expected = self.initiator_peer.expect(notify_corr or corr)
        timer = self.sim.timeout(wait)
        index, value = yield self.sim.any_of([expected, timer])
        if index == 1:
            self.abandon(corr, site=site)
            if notify_corr is not None:
                self.initiator_peer.abandon_corr(notify_corr)
                self._abandoned.add(notify_corr)
            if (self.deadline_at is not None
                    and self.sim.now >= self.deadline_at):
                self.network.failover.deadline_exhausted += 1
                raise QueryDeadlineExceeded(
                    f"delivery {corr}: query deadline exceeded")
            raise DeliveryTimeout(f"delivery {corr} timed out")
        timer.cancel()
        return value

    def unexpect(self, corr: str) -> None:
        """Withdraw a pending delivery expectation (no dead-lettering)."""
        event = self.initiator_peer._expected.pop(corr, None)
        if event is not None:
            event.cancel()
        self.initiator_peer._delivered_early.pop(corr, None)

    def release(self) -> int:
        """Sweep every correlation id this query minted out of all query
        peers and free the initiator's namespace slot — run when the
        query completes or fails, so long-running multi-query systems
        accumulate no mailbox/expectation state.

        Correlation ids abandoned after a delivery timeout keep their
        dead-letter tombstones for one more ``delivery_timeout``: a late
        one-way message may still be in flight, and the tombstone is what
        drops it on arrival.  A delayed sweep removes the tombstones —
        and only then frees the initiator's namespace slot, so a recycled
        slot can never mint a correlation id that a still-in-flight late
        reply would land in.

        With a fault plan installed *every* minted corr is quarantined
        this way (not just the explicitly abandoned ones): message-level
        duplication means any corr may have a trailing copy in flight.
        """
        network = self.network
        slot, self._slot = self._slot, None
        if not self._corrs:
            if slot is not None:
                self.initiator_peer.release_query_slot(slot)
            return 0
        if network.faults is not None:
            late = sorted(self._corrs)
            prompt: List[str] = []
            # Tombstone everywhere: a duplicated one-way may trail in at
            # any peer, not just the sites abandon() knew about.
            for node in network.nodes.values():
                if isinstance(node, QueryPeer):
                    node._dead_corrs.update(late)
        else:
            late = sorted(self._abandoned)
            prompt = [c for c in self._corrs if c not in self._abandoned]
        removed = 0
        for node in network.nodes.values():
            if isinstance(node, QueryPeer):
                removed += node.purge_corrs(prompt)
        if late:
            peer = self.initiator_peer

            def sweep(_event) -> None:
                for node in network.nodes.values():
                    if isinstance(node, QueryPeer):
                        node.purge_corrs(late)
                if slot is not None:
                    peer.release_query_slot(slot)

            self.sim.timeout(self.options.delivery_timeout).callbacks.append(sweep)
            self._abandoned = set()
        elif slot is not None:
            self.initiator_peer.release_query_slot(slot)
        self._corrs.clear()
        return removed

    def local_deposit(self, corr: str, solutions, vars=None) -> ResultHandle:
        """Materialize solutions at the initiator without any message."""
        self.initiator_peer.mailbox[corr] = set(solutions)
        return ResultHandle(self.initiator, corr,
                            len(self.initiator_peer.mailbox[corr]), vars)

    def cache_cfg(self) -> Optional[Dict[str, int]]:
        """Result-cache config to ride with dispatched sub-queries, or
        None when the cache is off (keeping payloads byte-identical)."""
        if not self.options.result_cache:
            return None
        return {"bytes": self.options.cache_bytes,
                "admit": self.options.cache_admit_threshold}

    def keep_vars(self, pattern_vars) -> Optional[List]:
        """Projection keep-list for a pattern's provider-side results, or
        None when pruning is off or nothing would be dropped."""
        if self.live_vars is None:
            return None
        kept = [v for v in pattern_vars if v in self.live_vars]
        if len(kept) == len(pattern_vars):
            return None
        return sorted(kept, key=lambda v: v.name)

    # --------------------------------------------------------------- lookup

    def locate(self, pattern: TriplePattern,
               condition: Optional[ast.Expression] = None):
        """Generator: consult the two-level index for *pattern* (Fig. 2).

        Step 1: find the index node owning Hash(attributes) via the ring
        (free if the initiator's entry node already owns the key).
        Step 2: read that node's location-table row.
        """
        located = key_for_pattern(pattern, self.system.space)
        if located is None:
            return PatternInfo(pattern, None, None, None, (), 0, condition)
        kind, key = located
        cache_size = self.options.lookup_cache_size
        pending: Optional[Event] = None
        while cache_size > 0:
            # Churn invalidation: any membership change since the last
            # consultation voids every cached row (a departed node may
            # have owned any key; a joiner may have split any range).
            epoch = self.network.membership_epoch
            if epoch != self._lookup_epoch:
                self._lookup_cache.clear()
                self._lookup_epoch = epoch
            cached = self._lookup_cache.get((kind, key))
            if cached is None:
                pending = self.sim.event()
                self._lookup_cache[(kind, key)] = ("pending", pending)
                break
            if cached[0] == "pending":
                # Another process of this query is resolving the same
                # key right now (patterns locate in parallel): wait
                # for it instead of issuing a duplicate consultation.
                try:
                    owner_id, entries, fill_epoch, fill_depoch = yield cached[1]
                except RpcError:
                    # The filler died (its sentinel is already evicted):
                    # resolve for ourselves instead of inheriting a loss
                    # that a retry or failover might still fix.
                    continue
                if fill_epoch != self.network.membership_epoch:
                    # Membership moved while we slept: the row we were
                    # handed was resolved under the old view; re-resolve
                    # rather than consume a possibly-stale owner.
                    continue
                if fill_depoch != self.network.data_epochs.get(key):
                    # A publish/unpublish delta touched this key between
                    # the fill and this waiter waking: the row's entries
                    # or frequencies may have changed. Re-consult.
                    continue
            else:
                owner_id, entries = cached[1], cached[2]
                if cached[3] != self.network.data_epochs.get(key):
                    # The cached row predates a delta on this key: evict
                    # it and consult the index again (key-scoped, unlike
                    # the membership epoch's whole-cache clear).
                    self._lookup_cache.pop((kind, key), None)
                    continue
            if (kind, key) in self._lookup_cache:
                self._lookup_cache.move_to_end((kind, key))
            self.report.lookup_cache_hits += 1
            cached_span = self.tracer.span(
                "lookup", phase=PHASE_LOOKUP, pattern=str(pattern),
                cached=True)
            cached_span.close(hops=0)
            return PatternInfo(pattern, kind, key, owner_id, entries,
                               0, condition)
        # The data-epoch stamp is read *before* the consultation goes out:
        # a delta racing the resolve then keeps the row out of the cache
        # instead of installing a silently stale one.
        data_epoch = self.network.data_epochs.get(key)
        span = self.tracer.span("lookup", phase=PHASE_LOOKUP, pattern=str(pattern))
        hops = 0
        try:
            owner_id, entries, hops = yield from self._resolve(key)
            self.report.lookup_hops += hops
        except BaseException as exc:
            if pending is not None:
                if self._lookup_cache.get((kind, key)) == ("pending", pending):
                    del self._lookup_cache[(kind, key)]
                pending.fail(exc)
            raise
        finally:
            span.close(hops=hops)
        if pending is not None:
            self.report.lookup_cache_misses += 1
            fill_epoch = self.network.membership_epoch
            if (fill_epoch == self._lookup_epoch
                    and data_epoch == self.network.data_epochs.get(key)):
                self._lookup_cache[(kind, key)] = ("done", owner_id,
                                                   tuple(entries), data_epoch)
            elif self._lookup_cache.get((kind, key)) == ("pending", pending):
                # Membership or data changed mid-flight: don't install a
                # stale row.
                del self._lookup_cache[(kind, key)]
            # Waiters get the fill-time epochs so they can re-validate
            # against the membership and data versions they wake under.
            pending.succeed((owner_id, tuple(entries), fill_epoch, data_epoch))
            while len(self._lookup_cache) > cache_size:
                self._lookup_cache.popitem(last=False)
        return PatternInfo(pattern, kind, key, owner_id, tuple(entries), hops, condition)

    def ring_resolve(self, payload: Dict[str, Any]):
        """Generator: a ``find_successor`` through the ring entry point,
        failing over to a fresh entry when the current one is dead
        (``options.failover`` and a storage-node initiator only)."""
        try:
            result = yield self.call(self.entry_index, "find_successor",
                                     payload)
        except RpcTimeout:
            storage = self.system.storage_nodes.get(self.initiator)
            if not self.options.failover or storage is None:
                raise
            # The ring entry point died mid-query: re-enter elsewhere,
            # like a storage node re-joining the system.
            self.entry_index = self._reattach(storage)
            result = yield self.call(self.entry_index, "find_successor",
                                     payload)
        return result

    def _resolve(self, key: int):
        """Generator: resolve *key* → ``(owner_id, entries, hops)`` via
        the two-level index, failing over to the promoted replica row
        when the owner is dead (``options.failover``)."""
        entry_node = self.system.index_nodes[self.entry_index]
        if self.initiator == self.entry_index and entry_node.owns(key):
            return self.entry_index, entry_node.locate(key), 0
        result = yield from self.ring_resolve({"key": key})
        owner_id = result.ref.node_id
        hops = result.hops
        if owner_id == self.initiator and owner_id in self.system.index_nodes:
            return owner_id, self.system.index_nodes[owner_id].locate(key), hops
        try:
            entries = yield from self._read_row(owner_id, key)
            return owner_id, entries, hops
        except RpcTimeout as exc:
            if not self.options.failover:
                raise
            alt_id, alt_hops = yield from self._failover_lookup(key, owner_id,
                                                                exc)
            entries = yield self.call(alt_id, "index_lookup", {"key": key})
            self.network.failover.lookup_failovers += 1
            return alt_id, entries, hops + alt_hops

    def _failover_lookup(self, key: int, dead: str, exc: Exception):
        """Generator: find *key*'s replica holder via an avoid-hint ring
        lookup — the dead owner's first live successor (Sect. III-D), whose
        :meth:`IndexNode.locate` promotes the replica row on read."""
        span = self.tracer.span("failover", phase=PHASE_LOOKUP, dead=dead,
                                key=key)
        try:
            result = yield from self.ring_resolve(
                {"key": key, "avoid": [dead]})
            if result.ref.node_id == dead:
                raise exc  # the ring knows no live alternative
            return result.ref.node_id, result.hops
        finally:
            span.close()

    def _read_row(self, owner_id: str, key: int):
        """Generator: read the owner's location-table row; with hedging
        enabled, race a duplicate (non-promoting) replica read once the
        primary is slower than the hedge threshold."""
        if self.options.hedge_delay is None:
            entries = yield self.call(owner_id, "index_lookup", {"key": key})
            return entries
        from .failover import guarded

        start = self.sim.now
        delay = self.options.hedge_delay or self._auto_hedge_delay()
        primary = guarded(self.sim,
                          self.call(owner_id, "index_lookup", {"key": key}))
        timer = self.sim.timeout(delay)
        index, value = yield self.sim.any_of([primary, timer])
        if index == 0:
            timer.cancel()
            ok, payload = value
            if not ok:
                raise payload
            self.network.failover.lookup_rtts.append(self.sim.now - start)
            return payload
        # Primary slower than the threshold: hedge against the replica
        # holder. The duplicate must not promote the replica row — the
        # primary may be merely slow, not dead — so it reads via
        # ``replica_lookup``.
        self.network.failover.hedges_launched += 1
        hedge = guarded(self.sim,
                        self.sim.process(self._hedge_read(owner_id, key)))
        index, (ok, payload) = yield self.sim.any_of([primary, hedge])
        if not ok:
            # The first finisher failed; fall back to the survivor.
            other = hedge if index == 0 else primary
            _i, (ok, payload) = yield self.sim.any_of([other])
            if not ok:
                raise payload
            won = other is hedge
        else:
            won = index == 1
        if won:
            self.network.failover.hedges_won += 1
        self.network.failover.lookup_rtts.append(self.sim.now - start)
        return payload

    def _hedge_read(self, owner_id: str, key: int):
        """Generator: the hedged duplicate — resolve the replica holder
        and read its copy of the row without promoting it."""
        result = yield from self.ring_resolve(
            {"key": key, "avoid": [owner_id]})
        alt = result.ref.node_id
        if alt == owner_id:
            raise QueryFailed(f"no replica holder for key {key}")
        entries = yield self.call(alt, "replica_lookup", {"key": key})
        return tuple(entries)

    def _auto_hedge_delay(self) -> float:
        """p95 of observed lookup RTTs, floored at four link latencies
        (the cold-start default before enough samples accumulate)."""
        rtts = self.network.failover.lookup_rtts
        floor = 4 * self.network.link.latency
        if len(rtts) < 8:
            return floor
        data = sorted(rtts[-256:])
        p95 = data[min(len(data) - 1, math.ceil(0.95 * len(data)) - 1)]
        return max(p95, floor)

    # ------------------------------------------------------------ finishing

    def finalize(self, handle: ResultHandle):
        """Generator: bring the final solutions to the initiator."""
        span = self.tracer.span("finalize", phase=PHASE_FINALIZE,
                                site=handle.site, corr=handle.corr)
        try:
            if handle.site == self.initiator:
                data = self.initiator_peer.mailbox.pop(handle.corr, set())
                return data
            payload: Dict[str, Any] = {"corr": handle.corr}
            if self.options.dictionary_encoding:
                payload["encode"] = True
            data = yield self.call(handle.site, "fetch", payload)
            return as_solution_set(data)
        finally:
            span.close()


def exec_plan(ctx: ExecutionContext, node: PhysOp, at_home: bool = False):
    """Generator: execute a physical operator distributedly → ResultHandle.

    Dispatches to the per-operator modules; subtrees of binary operators
    run as parallel simulation processes (the paper's "in parallel" for
    union branches and conjunction chains). ``at_home`` asks primitive
    leaves to leave their results at a data site rather than dragging them
    to the initiator — see :func:`repro.query.primitive.exec_primitive`.

    Every dispatch records the operator's observations — where its result
    landed, how many rows it produced, and the network-stats byte delta
    across its execution window — onto the plan node for explain renders.
    The recording is pure reads of existing counters: zero effect on the
    simulated metrics.
    """
    from . import conjunction, filter as filter_mod, optional, primitive, union

    before = ctx.system.stats.checkpoint()
    if isinstance(node, EmptyScan):
        handle = ctx.local_deposit(ctx.new_corr(), {EMPTY_MAPPING},
                                   vars=frozenset())
    elif isinstance(node, ChainShip):
        handle = yield from primitive.exec_primitive(ctx, node, at_home=at_home)
    elif isinstance(node, CacheProbe):
        from ..cache.runtime import exec_cache_probe  # deferred: PR 9 layer

        handle = yield from exec_cache_probe(ctx, node)
    elif isinstance(node, BGPWalk):
        handle = yield from conjunction.exec_bgp(ctx, node)
    elif isinstance(node, FilterOp):
        handle = yield from filter_mod.exec_filter(ctx, node, at_home=at_home)
    elif isinstance(node, HashJoin):
        handle = yield from conjunction.exec_join(ctx, node)
    elif isinstance(node, UnionOp):
        handle = yield from union.exec_union(ctx, node)
    elif isinstance(node, LeftJoinOp):
        handle = yield from optional.exec_leftjoin(ctx, node)
    elif isinstance(node, GraphScope):
        raise QueryFailed(
            "GRAPH patterns address named graphs; the ad-hoc system's dataset "
            "is the union of all providers (Sect. IV-A) and has no named graphs"
        )
    else:
        raise QueryFailed(
            f"cannot execute physical operator {type(node).__name__}")
    node.placement = handle.site
    node.actual_rows = handle.count
    node.actual_bytes = ctx.system.stats.delta(before).bytes
    return handle


def exec_subtrees_parallel(ctx: ExecutionContext, nodes: List[PhysOp]):
    """Generator: run several sub-plans as concurrent processes.

    Subtree results stay at their home sites (``at_home=True``) so that
    the caller's join-site policy decides what moves where.
    """
    processes = [ctx.sim.process(exec_plan(ctx, n, at_home=True)) for n in nodes]
    handles = yield ctx.sim.all_of(processes)
    return handles


class DistributedExecutor:
    """Facade: execute SPARQL queries against a hybrid system.

    Pass a :class:`~repro.trace.Tracer` to record a structured per-query
    trace (message flow, operator spans, per-phase cost); with the
    default ``tracer=None`` the execution path is byte-for-byte the
    untraced one.
    """

    def __init__(self, system: HybridSystem, options: Optional[ExecutionOptions] = None,
                 tracer: Optional[Tracer] = None, **option_overrides) -> None:
        self.system = system
        if options is None:
            options = ExecutionOptions(**option_overrides)
        elif option_overrides:
            raise ValueError("pass either options or overrides, not both")
        self.options = options
        self.tracer = tracer

    @property
    def load(self) -> Counter:
        """The system-wide per-node load counter (Third-Site QoS input).

        Delegates to :attr:`HybridSystem.load` so that concurrent
        executors — and concurrent execution contexts — observe one
        another through the shared system only, never through executor
        instance state.
        """
        return self.system.load

    # ----------------------------------------------------------------- API

    def execute(
        self, query_text: str, initiator: Optional[str] = None
    ) -> Tuple[QueryResult, ExecutionReport]:
        """Run *query_text* from *initiator* (default: first storage node).

        Returns (result, report). The result is bit-equal to the local
        oracle evaluation over the union of all provider graphs.
        """
        query = parse_query(query_text, COMMON_PREFIXES)
        return self.execute_parsed(query, initiator)

    def execute_parsed(
        self, query: ast.Query, initiator: Optional[str] = None
    ) -> Tuple[QueryResult, ExecutionReport]:
        """Run one parsed query alone: spawn :meth:`execute_process` as a
        simulation process and drive the simulator to completion.

        This is the classic single-tenant entry point; the coroutine it
        wraps is the multi-tenant one (a workload harness spawns many of
        them against one simulator).
        """
        sim = self.system.sim
        tracer = self.tracer
        prev_tracer = sim.tracer
        if tracer is not None:
            tracer.attach(sim)
            sim.tracer = tracer
        try:
            return sim.run_process(
                self.execute_process(query, initiator, tracer=tracer)
            )
        finally:
            if tracer is not None:
                sim.tracer = prev_tracer

    def execute_process(
        self,
        query: ast.Query,
        initiator: Optional[str] = None,
        report: Optional[ExecutionReport] = None,
        tracer: Optional[Tracer] = None,
    ):
        """Generator: execute one query as an ordinary sim process.

        Returns ``(result, report)``.  Re-entrant: any number of these
        coroutines may run interleaved in one simulation — every piece of
        per-query mutable state (correlation ids, mailbox expectations,
        lookup cache, report, spans) lives in this invocation's
        :class:`ExecutionContext`, keyed by a query id that is unique
        among live executions.  Distributed failures surface as
        :class:`QueryFailed`, and the context is always swept on the way
        out, so one failing query never corrupts its neighbours.
        """
        if initiator is None:
            if not self.system.storage_nodes:
                raise QueryFailed("system has no storage nodes to initiate from")
            initiator = min(self.system.storage_nodes)
        if not query.dataset.is_union_of_all:
            # Sect. IV-A: in the ad-hoc system, data "is maintained by
            # individual data providers instead of at a source that can be
            # easily identified by some reference already known" — there
            # are no addressable graph IRIs, so FROM / FROM NAMED cannot
            # be honored. Refuse loudly rather than silently mis-scope.
            raise QueryFailed(
                "FROM / FROM NAMED datasets are not addressable in the "
                "ad-hoc system; the dataset is always the union of all "
                "storage nodes (paper Sect. IV-A)"
            )
        if report is None:
            report = ExecutionReport()
        ctx = ExecutionContext(self.system, initiator, self.options, report,
                               self.load, tracer=tracer)

        algebra = translate_pattern(query.where)
        if self.options.optimize:
            algebra = optimize_algebra(algebra, estimate=None, reorder=False)
            report.merge_note("optimized")
        if self.options.projection_pushdown:
            ctx.live_vars = compute_live_vars(query, algebra)

        # Both engines now run off the compiled physical plan: this walk
        # is a pure 1:1 image of the algebra under the legacy flags, and
        # the surface `repro explain` renders after execution.
        plan = compile_query_plan(query, algebra, self.options)
        report.plan = plan
        root = execution_root(plan)

        checkpoint = self.system.stats.checkpoint()
        cache_before = self.system.network.cache.checkpoint()
        t0 = self.sim_now()
        trace_checkpoint = tracer.checkpoint() if tracer is not None else None
        query_span = ctx.tracer.span("query", initiator=initiator,
                                     form=type(query).__name__)
        try:
            try:
                if self.options.plan_mode == "cost":
                    # Frequency-driven planning: fetch leaf statistics
                    # (real lookups, inside the measured window) and pin
                    # join order / walk modes / strategies / sites.
                    from .cost import annotate_plan

                    yield from annotate_plan(ctx, root)
                handle = yield from exec_plan(ctx, root)
                solutions = yield from ctx.finalize(handle)
                t_done = self.sim_now()
                delta = self.system.stats.delta(checkpoint)
                report.response_time = t_done - t0
                report.messages = delta.messages
                report.bytes_total = delta.bytes
                cache_delta = self.system.network.cache.delta(cache_before)
                report.cache_hits = cache_delta["hits"]
                report.cache_misses = cache_delta["misses"]
                if tracer is not None:
                    # Snapshot here so the phase totals cover exactly the
                    # same window as the stats delta (they partition
                    # bytes_total); DESCRIBE post-processing traffic is
                    # traced as events but, like the stats delta, stays
                    # out of the report scalars.  Under concurrency the
                    # delta window also carries neighbouring queries'
                    # traffic — per-query attribution needs the tracer.
                    report.phases = tracer.phase_breakdown(since=trace_checkpoint)
                    report.trace = tracer
                result = yield from self._postprocess(query, algebra, solutions, ctx)
            except RpcError as exc:
                # A site died under us mid-execution: surface the loss as
                # a clean per-query failure, never a raw transport error.
                raise QueryFailed(f"distributed execution failed: {exc}") from exc
        finally:
            query_span.close()
            # Whether the query succeeded or failed mid-flight, sweep its
            # correlation state out of every peer (mailboxes, pending
            # expectations, dead-letter marks) and free its id-namespace
            # slot — see the leak regression tests in
            # tests/test_lifecycle_leaks.py.
            ctx.release()
        report.result_count = self._count_results(query, result)
        record_postprocess(plan, root.actual_rows, report.result_count,
                           initiator)
        if report.incomplete:
            # Counted only for queries that *returned* (flagged) answers;
            # a query that degrades and then fails anyway is not a
            # partial result.
            self.system.network.failover.partial_results += 1
        return result, report

    @staticmethod
    def _count_results(query: ast.Query, result: QueryResult) -> int:
        """Per-query-form result cardinality.

        Explicit by form: SELECT counts solution rows (0 for an empty
        sequence), ASK counts its boolean (False → 0), CONSTRUCT and
        DESCRIBE count triples in the output graph.
        """
        if isinstance(query, ast.AskQuery):
            return int(bool(result.boolean))
        if isinstance(query, (ast.ConstructQuery, ast.DescribeQuery)):
            return len(result.graph) if result.graph is not None else 0
        return len(result.rows)

    def sim_now(self) -> float:
        return self.system.sim.now

    # ------------------------------------------------------ post-processing

    def _postprocess(
        self,
        query: ast.Query,
        algebra: Algebra,
        solutions: Set[SolutionMapping],
        ctx: ExecutionContext,
    ):
        """Generator: the paper's Post-Processing stage, at the initiator.

        A generator because DESCRIBE issues follow-up distributed
        primitives, which must run inside the calling query's process
        (``yield from``), not through a nested simulator run.
        """
        if isinstance(query, ast.AskQuery):
            return QueryResult(boolean=bool(solutions))

        if isinstance(query, ast.SelectQuery):
            projection = list(query.projection)
            if not projection:
                projection = sorted(algebra.in_scope_vars(), key=lambda v: v.name)
            rows = apply_modifiers(solutions, query.modifiers, projection)
            return QueryResult(rows=rows, variables=projection)

        if isinstance(query, ast.ConstructQuery):
            out = Graph()
            for mu in solutions:
                for template in query.template:
                    bound = template.substitute(mu.as_dict())
                    if bound.is_concrete():
                        try:
                            out.add(bound.as_triple())
                        except TypeError:
                            continue
                    # else: leave unbound template rows out, per spec
            return QueryResult(graph=out)

        if isinstance(query, ast.DescribeQuery):
            return (yield from self._describe(query, solutions, ctx))

        raise QueryFailed(f"unknown query form {type(query).__name__}")

    def _describe(
        self, query: ast.DescribeQuery, solutions: Set[SolutionMapping], ctx: ExecutionContext
    ):
        """Generator: DESCRIBE fetches the outgoing edges of every target
        via further primitive distributed queries, inside this query's
        own process."""
        from .primitive import exec_primitive

        # The follow-up primitives bind fresh variables (__dp/__do) that
        # the main plan's keep-set knows nothing about — pruning them
        # would erase the descriptions.
        ctx.live_vars = None
        targets = []
        for subject in query.subjects:
            if isinstance(subject, IRI):
                targets.append(subject)
            else:
                for mu in sorted(solutions, key=lambda m: len(m)):
                    term = mu.get(subject)
                    if term is not None and term not in targets:
                        targets.append(term)
        out = Graph()
        var_p, var_o = Variable("__dp"), Variable("__do")
        for target in targets:
            if not isinstance(target, IRI):
                continue
            pattern = TriplePattern(target, var_p, var_o)
            handle = yield from exec_primitive(ctx, pattern_leaf(pattern))
            data = yield from ctx.finalize(handle)
            for mu in data:
                p, o = mu.get(var_p), mu.get(var_o)
                if p is not None and o is not None:
                    try:
                        out.add(TriplePattern(target, p, o).as_triple())
                    except TypeError:
                        continue
        return QueryResult(graph=out)
