"""Failover in the distributed query path (PR 6).

Sect. III-D replicates each index node's location table across its
successor list so the system "can eventually recover" from failure. These
helpers make in-flight queries exploit that replication *now*: when an
RPC to a key's owner times out, the key is re-resolved with an ``avoid``
hint — Chord answers with the first non-avoided successor, which is
exactly the replica holder taking over the dead owner's keys — and the
timed-out step is re-dispatched there instead of abandoning the query.

Everything here is gated on ``ExecutionOptions.failover``; the default
configuration never reaches this module.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..net.transport import RpcTimeout
from ..trace.tracer import PHASE_LOOKUP

__all__ = ["guarded", "resolve_avoiding", "dispatch_primitive"]


def guarded(sim, event):
    """Wrap *event* so it always succeeds with ``(ok, value_or_failure)``.

    ``AnyOf`` fails fast when any child fails; racing a fallible RPC
    against a timer or a sibling therefore needs this adapter — the race
    sees a clean success either way and the loser stays inert.
    """
    out = sim.event()

    def settle(e):
        if e.failure is None:
            out.succeed((True, e.value))
        else:
            out.succeed((False, e.failure))

    event.callbacks.append(settle)
    return out


def resolve_avoiding(ctx, key: int, avoid):
    """Generator: re-resolve *key*'s owner routing around *avoid*.

    Returns ``(owner_id, hops)``. Under successor-list replication the
    first non-avoided successor IS the replica holder about to take over
    the avoided (dead) owner's keys.
    """
    payload = {"key": key, "avoid": sorted(avoid)}
    result = yield from ctx.ring_resolve(payload)
    return result.ref.node_id, result.hops


def dispatch_primitive(ctx, info, payload: dict, corr: str,
                       timeout: Optional[float] = None):
    """Generator: dispatch ``execute_primitive`` to *info.owner*, failing
    over to the replica holder if the owner times out.

    Returns ``(ack, info, corr)`` — *info* updated to the node that
    actually served the step, *corr* re-minted on failover so a late
    reply from a half-dead owner can never collide with the replica's
    answer (the original id is tombstoned here and at the final site).
    Without ``options.failover`` this is exactly one plain call.

    With a health ledger installed (``options.breaker``) an owner whose
    circuit is currently open is routed around *before* being dialed:
    the step goes straight to the replica holder, with no timeout burned
    from the query deadline on a peer recent history already condemned.
    """
    if ctx.deadline_at is not None:
        payload = dict(payload, deadline=ctx.deadline_at)
    health = ctx.network.health
    if (health is not None and ctx.options.failover and info.key is not None
            and health.open_now(info.owner)):
        result = yield from _failover_dispatch(
            ctx, info, payload, corr, timeout,
            RpcTimeout(f"{info.owner}.execute_primitive: circuit open"))
        return result
    try:
        ack = yield ctx.call(info.owner, "execute_primitive", payload,
                             timeout=timeout)
        return ack, info, corr
    except RpcTimeout as exc:
        if not ctx.options.failover or info.key is None:
            raise
        result = yield from _failover_dispatch(ctx, info, payload, corr,
                                               timeout, exc)
        return result


def _failover_dispatch(ctx, info, payload: dict, corr: str,
                       timeout: Optional[float], exc: RpcTimeout):
    """Generator: re-resolve around ``info.owner`` and re-dispatch there
    under a fresh corr (shared by the timeout and open-circuit paths)."""
    dead = info.owner
    span = ctx.tracer.span("failover", phase=PHASE_LOOKUP, dead=dead,
                           key=info.key, corr=corr)
    try:
        # The dead owner may have started the fan-out before dying: a
        # late delivery under the old id must be dropped on arrival.
        ctx.abandon(corr, site=payload.get("final"))
        owner_id, _hops = yield from resolve_avoiding(ctx, info.key, [dead])
        if owner_id == dead:
            raise exc
        corr = ctx.new_corr()
        retry_payload = dict(payload, corr=corr)
        ack = yield ctx.call(owner_id, "execute_primitive", retry_payload,
                             timeout=timeout)
    finally:
        span.close()
    ctx.network.failover.dispatch_failovers += 1
    ctx.report.merge_note(f"dispatch failover {dead} -> {owner_id}")
    return ack, replace(info, owner=owner_id), corr
