"""Filter graph patterns (Sect. IV-G).

After the algebraic optimizer has pushed what can be pushed (a filter
whose variables are covered by a single pattern travels *with that
pattern's sub-query* and runs at the storage nodes), whatever Filter
nodes remain must run where their operand's solutions are collected:

* ``Filter(C, BGP(single))`` — the condition ships inside the primitive
  sub-query; providers filter before transmitting (maximum saving).
* ``Filter(C, BGP(multi))`` — the conjunction evaluates first; C runs at
  the join site before the result moves to the initiator.
* ``Filter(C, anything else)`` — evaluate the operand, then filter at the
  site holding the result.
"""

from __future__ import annotations

from ..sparql.algebra import BGP, Filter
from .conjunction import exec_bgp, _apply_post_filter
from .primitive import exec_primitive

__all__ = ["exec_filter"]


def exec_filter(ctx, node: Filter, at_home: bool = False):
    """Generator: execute Filter(condition, pattern) → ResultHandle."""
    from .executor import exec_algebra

    span = ctx.tracer.span("filter")
    try:
        target = node.pattern
        if isinstance(target, BGP) and len(target.patterns) == 1:
            # The filter travels with the sub-query to the providers.
            return (yield from exec_primitive(
                ctx, target.patterns[0], node.condition, at_home=at_home))
        if isinstance(target, BGP) and target.patterns:
            return (yield from exec_bgp(ctx, target.patterns, node.condition))
        handle = yield from exec_algebra(ctx, target, at_home=at_home)
        return (yield from _apply_post_filter(ctx, handle, node.condition))
    finally:
        span.close()
