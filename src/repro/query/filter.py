"""Filter operators (Sect. IV-G).

Filter placement happens at compile time now
(:func:`repro.query.physical.compile_distributed`): a condition covered
by a single pattern travels *with that pattern's sub-query* and runs at
the storage nodes (a :class:`~repro.query.physical.ChainShip` leaf with a
condition); one covering a multi-pattern BGP rides the conjunction walk
as its ``post_filter``. What reaches this module is the residual case — a
:class:`~repro.query.physical.FilterOp` over an arbitrary sub-plan —
which evaluates its operand and then filters at the site holding the
result.
"""

from __future__ import annotations

from .conjunction import _apply_post_filter
from .physical import FilterOp

__all__ = ["exec_filter"]


def exec_filter(ctx, node: FilterOp, at_home: bool = False):
    """Generator: execute FilterOp(condition, operand) → ResultHandle."""
    from .executor import exec_plan

    span = ctx.tracer.span("filter")
    try:
        handle = yield from exec_plan(ctx, node.operand, at_home=at_home)
        return (yield from _apply_post_filter(ctx, handle, node.condition))
    finally:
        span.close()
