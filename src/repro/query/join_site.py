"""Join site selection and inter-site combination (Sect. II, IV-D/E).

Given two materialized intermediate results (mailbox handles), decide
*where* to combine them — Move-Small, Query-Site, or Third-Site — ship
what must move, and run the combine operation at the chosen site. This is
the distributed-database machinery the paper imports into SPARQL
processing.
"""

from __future__ import annotations

from typing import Optional

from ..sparql import ast
from ..trace.tracer import PHASE_JOIN, PHASE_SHIP
from .plan import ResultHandle
from .strategies import JoinSitePolicy

__all__ = ["pick_join_site", "combine_handles", "ship_handle"]


def pick_join_site(ctx, left: ResultHandle, right: ResultHandle) -> str:
    """Choose the combine site under the executor's policy."""
    policy = ctx.options.join_site_policy
    if policy is JoinSitePolicy.QUERY_SITE:
        return ctx.initiator
    if policy is JoinSitePolicy.MOVE_SMALL:
        # The smaller operand travels to the site of the larger one; with
        # equal sizes prefer keeping the left side still (deterministic).
        if left.count >= right.count:
            return left.site
        return right.site
    if policy is JoinSitePolicy.THIRD_SITE:
        # Simulated QoS: the executor tracks how many combine operations
        # each node has served and picks the least-loaded storage node
        # (falling back to the operand sites when the system has none).
        candidates = sorted(ctx.system.storage_nodes) or [left.site, right.site]
        alive = [
            c for c in candidates if ctx.system.network.nodes[c].alive
        ]
        if not alive:
            return ctx.initiator
        return min(alive, key=lambda node: (ctx.load[node], node))
    raise ValueError(f"unknown join-site policy {policy!r}")


def ship_handle(ctx, handle: ResultHandle, site: str):
    """Generator: move *handle*'s data into *site*'s mailbox.

    No-op when already there. Shipping from the initiator is a plain
    one-way deliver; shipping between two remote sites is a small control
    message to the holder followed by its one-way transfer (the
    "data shipping" of Fig. 3), acknowledged to the initiator.
    """
    if handle.site == site:
        return handle
    span = ctx.tracer.span("ship", phase=PHASE_SHIP,
                           src=handle.site, dst=site, corr=handle.corr)
    try:
        if handle.site == ctx.initiator:
            data = ctx.initiator_peer.mailbox.pop(handle.corr, set())
            corr = handle.corr
            yield ctx.call(site, "deliver", {"corr": corr, "data": sorted(data, key=_key)})
            return ResultHandle(site, corr, len(data))
        count = yield ctx.call(
            handle.site,
            "ship",
            {"corr": handle.corr, "dst": site, "dst_corr": handle.corr,
             "notify": ctx.initiator},
        )
        yield from ctx.wait_delivery(handle.corr, site=site)
        return ResultHandle(site, handle.corr, count)
    finally:
        span.close()


def combine_handles(
    ctx,
    op: str,
    left: ResultHandle,
    right: ResultHandle,
    condition: Optional[ast.Expression] = None,
    site: Optional[str] = None,
):
    """Generator: bring both operands to one site and combine them there.

    Returns the ResultHandle of the combined result. ``op`` is one of
    join / union / leftjoin / minus (the operations on solution-mapping
    sets of Sect. IV-A).
    """
    if site is None:
        site = pick_join_site(ctx, left, right)
    span = ctx.tracer.span("combine", phase=PHASE_JOIN, op=op, site=site)
    try:
        left = yield from ship_handle(ctx, left, site)
        right = yield from ship_handle(ctx, right, site)
        out_corr = ctx.new_corr()
        ctx.load[site] += 1
        payload = {
            "op": op,
            "left": left.corr,
            "right": right.corr,
            "out": out_corr,
            "condition": condition,
        }
        if site == ctx.initiator:
            summary = ctx.initiator_peer.rpc_combine(payload, ctx.initiator)
        else:
            summary = yield ctx.call(site, "combine", payload)
        return ResultHandle(site, out_corr, summary["count"])
    finally:
        span.close()


def _key(mu):
    return tuple((v.name, t.n3()) for v, t in mu.items())
