"""Join site selection and inter-site combination (Sect. II, IV-D/E).

Given two materialized intermediate results (mailbox handles), decide
*where* to combine them — Move-Small, Query-Site, or Third-Site — ship
what must move, and run the combine operation at the chosen site. This is
the distributed-database machinery the paper imports into SPARQL
processing.

This module is also the choke point for the transmission-minimizing
shipping optimizations (all off by default, toggled per-technique via
:class:`~repro.query.strategies.ExecutionOptions`):

* **projection pushdown** — every ship projects the moving rows onto the
  plan's live variables (``ctx.live_vars``, or a tighter per-edge set
  passed by the caller);
* **semijoin pre-filtering** — before a join/leftjoin operand moves, the
  resident side's digest (:class:`~repro.net.wire.JoinDigest`) is fetched
  and shipped to the holder, which drops rows that cannot join. The
  digest round-trip and its embeds are charged to
  ``report.digest_bytes`` — the technique's exact overhead bound;
* **dictionary encoding** — moving rows travel as
  :class:`~repro.net.wire.SolutionBatch` payloads.
"""

from __future__ import annotations

from typing import Optional

from ..net.sizes import HEADER_BYTES, size_of
from ..net.transport import RpcTimeout
from ..net.wire import JoinDigest, encode_solutions
from ..sparql import ast
from ..trace.tracer import PHASE_JOIN, PHASE_SHIP
from .plan import ResultHandle, combine_vars
from .strategies import JoinSitePolicy

__all__ = ["pick_join_site", "combine_handles", "ship_handle", "fetch_digest",
           "digest_embed_cost"]

_PER_ITEM_OVERHEAD = 2


def pick_join_site(ctx, left: ResultHandle, right: ResultHandle) -> str:
    """Choose the combine site under the executor's policy."""
    if ctx.options.plan_mode == "cost":
        # Byte-weighted move-small: the operand that is cheaper to move
        # (by the cost model's wire prior) is the one that travels.
        from .cost import choose_combine_site

        return choose_combine_site(left, right)
    policy = ctx.options.join_site_policy
    if policy is JoinSitePolicy.QUERY_SITE:
        return ctx.initiator
    if policy is JoinSitePolicy.MOVE_SMALL:
        # The smaller operand travels to the site of the larger one; with
        # equal sizes prefer keeping the left side still (deterministic).
        if left.count >= right.count:
            return left.site
        return right.site
    if policy is JoinSitePolicy.THIRD_SITE:
        # Simulated QoS: the executor tracks how many combine operations
        # each node has served and picks the least-loaded storage node
        # (falling back to the operand sites when the system has none).
        candidates = sorted(ctx.system.storage_nodes) or [left.site, right.site]
        alive = [
            c for c in candidates if ctx.system.network.nodes[c].alive
        ]
        if not alive:
            return ctx.initiator
        return min(alive, key=lambda node: (ctx.load[node], node))
    raise ValueError(f"unknown join-site policy {policy!r}")


def digest_embed_cost(digest: JoinDigest) -> int:
    """Extra bytes one payload grows by when a digest rides inside it."""
    return size_of("digest") + size_of(digest) + _PER_ITEM_OVERHEAD


def fetch_digest(ctx, handle: ResultHandle, shared_vars):
    """Generator: fetch a semijoin digest over *handle*'s join-key values.

    Returns the digest, or None when pruning with it would be unsound
    (some resident row does not bind every key variable). The round
    trip's full cost — request, payload, and digest reply — is charged to
    ``report.digest_bytes``; a local build at the initiator is free, like
    every other local mailbox operation.
    """
    opts = ctx.options
    payload = {
        "corr": handle.corr,
        "vars": sorted(shared_vars, key=lambda v: v.name),
        "exact_threshold": opts.semijoin_exact_threshold,
        "bloom_bits": opts.semijoin_bloom_bits,
    }
    span = ctx.tracer.span("digest", phase=PHASE_SHIP,
                           site=handle.site, corr=handle.corr)
    try:
        if handle.site == ctx.initiator:
            digest = ctx.initiator_peer.rpc_digest(payload, ctx.initiator)
        else:
            try:
                digest = yield ctx.call(handle.site, "digest", payload)
            except RpcTimeout:
                if not ctx.options.failover:
                    raise
                # The digest is an optimization, not a correctness
                # requirement: with failover on, a dead digest site just
                # means the operand ships unpruned.
                ctx.report.merge_note(f"digest skipped ({handle.corr})")
                return None
            ctx.report.digest_bytes += (
                2 * HEADER_BYTES + size_of("digest") + size_of(payload)
                + size_of(digest)
            )
    finally:
        span.close()
    return digest if digest.prunable else None


def _projection_for(ctx, handle: ResultHandle, live):
    """The keep-list for shipping *handle*, or None when projection is a
    no-op (pushdown off, vars unknown, or nothing to drop)."""
    if live is None:
        live = ctx.live_vars
    if live is None or handle.vars is None:
        return None
    kept = [v for v in handle.vars if v in live]
    if len(kept) == len(handle.vars):
        return None
    return sorted(kept, key=lambda v: v.name)


def ship_handle(ctx, handle: ResultHandle, site: str, live=None,
                digest: Optional[JoinDigest] = None):
    """Generator: move *handle*'s data into *site*'s mailbox.

    No-op when already there. Shipping from the initiator is a plain
    one-way deliver; shipping between two remote sites is a small control
    message to the holder followed by its one-way transfer (the
    "data shipping" of Fig. 3), acknowledged to the initiator.

    *live* (optional) overrides ``ctx.live_vars`` as the projection
    target; *digest* (optional) pre-filters the moving rows.
    """
    from .executor import DeliveryTimeout

    if handle.site == site:
        return handle
    opts = ctx.options
    keep = _projection_for(ctx, handle, live)
    shipped_vars = frozenset(keep) if keep is not None else handle.vars
    span = ctx.tracer.span("ship", phase=PHASE_SHIP,
                           src=handle.site, dst=site, corr=handle.corr)
    try:
        if handle.site == ctx.initiator:
            data = ctx.initiator_peer.mailbox.pop(handle.corr, set())
            if digest is not None:
                kept_rows = digest.filter(data)
                ctx.report.rows_pruned += len(data) - len(kept_rows)
                data = kept_rows
            if keep is not None:
                data = {mu.project(keep) for mu in data}
            corr = handle.corr
            yield ctx.call(site, "deliver", {
                "corr": corr,
                "data": encode_solutions(data, opts.dictionary_encoding),
            })
            return ResultHandle(site, corr, len(data), shipped_vars)
        payload = {"corr": handle.corr, "dst": site, "dst_corr": handle.corr,
                   "notify": ctx.initiator}
        if keep is not None:
            payload["project"] = keep
        if digest is not None:
            payload["digest"] = digest
            ctx.report.digest_bytes += digest_embed_cost(digest)
        if opts.dictionary_encoding:
            payload["encode"] = True
        # Under a fault plan the holder keeps its mailbox copy, so a
        # transfer whose one-way deliver vanished can be re-shipped into
        # a fresh landing corr (the timed-out one is tombstoned).
        attempts = 1 if ctx.network.faults is None else 2
        corr = handle.corr
        for attempt in range(attempts):
            payload["dst_corr"] = corr
            tag = ctx.delivery_tag(handle.corr)
            if tag is not None:
                payload["notify_corr"] = tag
            ack = yield ctx.call(handle.site, "ship", payload)
            if isinstance(ack, dict):
                count = ack["count"]
                ctx.report.rows_pruned += ack.get("pruned", 0)
            else:
                count = ack
            try:
                yield from ctx.wait_delivery(corr, site=site, notify_corr=tag)
                break
            except DeliveryTimeout:
                if attempt + 1 >= attempts:
                    raise
                ctx.report.merge_note(f"ship retry for {handle.corr}")
                corr = ctx.new_corr()
        return ResultHandle(site, corr, count, shipped_vars)
    finally:
        span.close()


def _digest_may_prune(op: str, role: str) -> bool:
    """May the *role* operand of *op* be semijoin-pruned?

    Join is symmetric: either side. LeftJoin keeps every unmatched left
    row, so only the right operand may be filtered (a right row whose
    join keys match no left row can neither extend a left row nor make
    one incompatible). Union and minus ship everything.
    """
    if op == "join":
        return True
    return op == "leftjoin" and role == "right"


def _record_edge(edge, before: ResultHandle, after: ResultHandle,
                 site: str, pruned: Optional[int] = None) -> None:
    """Annotate a plan Ship/SemijoinShip edge with what the transfer did
    (display only — pure attribute writes on the plan tree)."""
    if edge is None:
        return
    edge.placement = site
    edge.actual_rows = after.count
    if before.site == site:
        edge.detail["resident"] = True
    else:
        edge.detail["shipped_from"] = before.site
    if pruned is not None:
        edge.detail["pruned"] = pruned


def combine_handles(
    ctx,
    op: str,
    left: ResultHandle,
    right: ResultHandle,
    condition: Optional[ast.Expression] = None,
    site: Optional[str] = None,
    live=None,
    edges=None,
):
    """Generator: bring both operands to one site and combine them there.

    Returns the ResultHandle of the combined result. ``op`` is one of
    join / union / leftjoin / minus (the operations on solution-mapping
    sets of Sect. IV-A). With the semijoin option on, the operand that is
    (or arrives) resident at the join site digests its join keys so the
    other side can shed non-joining rows before it moves.

    ``edges`` (optional) is the plan's ``(left_edge, right_edge)`` pair
    of Ship operators; each gets annotated with where its operand moved
    from and how many rows crossed the wire.
    """
    if site is None:
        site = pick_join_site(ctx, left, right)
    span = ctx.tracer.span("combine", phase=PHASE_JOIN, op=op, site=site)
    try:
        opts = ctx.options
        edge_for = {"left": edges[0], "right": edges[1]} if edges else {}
        order = [("left", left), ("right", right)]
        use_semijoin = opts.semijoin and op in ("join", "leftjoin")
        if use_semijoin:
            # Land an anchor first — prefer the operand already at the
            # site (free), else the smaller one — so its digest can
            # pre-filter the other side's transfer.
            order.sort(key=lambda item: (
                0 if item[1].site == site else 1, item[1].count, item[0]))
        first_role, first = order[0]
        second_role, second = order[1]
        first_before, second_before = first, second

        first = yield from ship_handle(ctx, first, site, live=live)
        _record_edge(edge_for.get(first_role), first_before, first, site)
        digest = None
        if (
            use_semijoin
            and _digest_may_prune(op, second_role)
            and second.site != site
            and second.count >= opts.semijoin_min_rows
            and first.vars is not None
            and second.vars is not None
        ):
            shared = first.vars & second.vars
            if shared:
                digest = yield from fetch_digest(ctx, first, shared)
        second = yield from ship_handle(ctx, second, site, live=live,
                                        digest=digest)
        _record_edge(edge_for.get(second_role), second_before, second, site,
                     pruned=(second_before.count - second.count
                             if digest is not None else None))

        left, right = ((first, second) if first_role == "left"
                       else (second, first))
        out_corr = ctx.new_corr()
        ctx.load[site] += 1
        payload = {
            "op": op,
            "left": left.corr,
            "right": right.corr,
            "out": out_corr,
            "condition": condition,
        }
        if site == ctx.initiator:
            summary = ctx.initiator_peer.rpc_combine(payload, ctx.initiator)
        else:
            summary = yield ctx.call(site, "combine", payload)
        return ResultHandle(site, out_corr, summary["count"],
                            combine_vars(op, left.vars, right.vars))
    finally:
        span.close()
