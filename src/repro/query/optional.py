"""Optional graph patterns: distributed left outer join (Sect. IV-E).

Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 − Ω2). The paper prescribes the *move-small*
strategy: ship the smaller solution set to the node holding the other,
compute both the join and the difference there, and return the union of
the two directly to the query initiator. OPTIONAL is left-associative but
not commutative, so only the *site sequence* is optimized, never the
operator order — chains of OPTIONALs evaluate left to right.
"""

from __future__ import annotations

from .join_site import combine_handles, pick_join_site
from .physical import LeftJoinOp

__all__ = ["exec_leftjoin"]


def exec_leftjoin(ctx, node: LeftJoinOp):
    """Generator: execute LeftJoinOp(P1, P2, condition) → ResultHandle."""
    from .executor import exec_subtrees_parallel

    span = ctx.tracer.span("optional")
    try:
        left, right = yield from exec_subtrees_parallel(
            ctx, [node.left, node.right])
        # Move-small is the paper's stated choice for OPTIONAL; other policies
        # remain available for the join-site experiment (E3/E4).
        site = pick_join_site(ctx, left, right)
        handle = yield from combine_handles(
            ctx, "leftjoin", left, right, condition=node.condition, site=site,
            edges=node.edges,
        )
        return handle
    finally:
        span.close()
