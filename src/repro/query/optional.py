"""Optional graph patterns: distributed left outer join (Sect. IV-E).

Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 − Ω2). The paper prescribes the *move-small*
strategy: ship the smaller solution set to the node holding the other,
compute both the join and the difference there, and return the union of
the two directly to the query initiator. OPTIONAL is left-associative but
not commutative, so only the *site sequence* is optimized, never the
operator order — chains of OPTIONALs evaluate left to right.
"""

from __future__ import annotations

from ..net.transport import RpcTimeout
from .join_site import combine_handles, pick_join_site
from .physical import LeftJoinOp

__all__ = ["exec_leftjoin"]


def exec_leftjoin(ctx, node: LeftJoinOp):
    """Generator: execute LeftJoinOp(P1, P2, condition) → ResultHandle."""
    from .executor import exec_subtrees_parallel

    span = ctx.tracer.span("optional")
    try:
        partial = ctx.options.partial_results
        mark = len(ctx.report.dropped_patterns) if partial else 0
        try:
            left, right = yield from exec_subtrees_parallel(
                ctx, [node.left, node.right])
        except RpcTimeout:
            if not partial:
                raise
            left = right = None
        if partial and (left is None
                        or len(ctx.report.dropped_patterns) > mark):
            # The left join is NOT monotone: a degraded (subset) operand
            # on either side could manufacture unextended rows that are
            # not in the true answer. The only always-safe subset when
            # anything below this operator degraded is the empty set.
            ctx.flag_partial("optional", node=node)
            return ctx.local_deposit(ctx.new_corr(), set())
        # Move-small is the paper's stated choice for OPTIONAL; other policies
        # remain available for the join-site experiment (E3/E4).
        site = pick_join_site(ctx, left, right)
        handle = yield from combine_handles(
            ctx, "leftjoin", left, right, condition=node.condition, site=site,
            edges=node.edges,
        )
        return handle
    finally:
        span.close()
