"""The physical-operator plan: one explainable DAG for both engines.

The paper's workflow (Fig. 3) compiles a query into SPARQL algebra and
then *executes the algebra directly* — locally at storage nodes, and
distributedly at the initiator. This module inserts the layer every
database engine has between the two: an explicit tree of **physical
operators**, each carrying its placement and its estimated and actual
cardinality/wire cost.

Both execution paths interpret the same node classes:

* :func:`compile_local` + :func:`interpret_local` — the single-graph
  evaluation ⟦P⟧_D of Sect. IV-B (what every storage node runs on an
  arriving sub-query, and what the test oracle runs on the union graph);
* :func:`compile_distributed` — the distributed plan the executor's
  ``exec_plan`` walks: :class:`IndexLookup` leaves under
  :class:`ChainShip` primitives, multi-pattern :class:`BGPWalk`
  composites, and :class:`HashJoin` / :class:`LeftJoinOp` /
  :class:`UnionOp` combines whose operands hang off explicit
  :class:`Ship` / :class:`SemijoinShip` edges.

Compilation is **pure** — no messages, no correlation ids — so the
legacy strategy flags stay bit-identical: the compiled tree is a 1:1
structural image of the old per-operator dispatch, and the runtime
modules execute the same calls in the same order. The ``cost`` plan
mode (:mod:`repro.query.cost`) then *annotates* this tree — join order,
walk mode, chain strategy, combine sites — before execution instead of
re-deciding per step.

``repro explain`` renders the tree via :func:`format_plan` with the
estimate-vs-actual columns filled in after execution.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..rdf.graph import Graph
from ..rdf.terms import IRI
from ..rdf.triple import TriplePattern
from ..sparql import ast
from ..sparql.algebra import (
    Algebra, BGP, Filter, GraphNode, Join, LeftJoin, Union,
)
from ..sparql.errors import SparqlError
from ..sparql.expr import filter_passes
from ..sparql.solutions import (
    SolutionMapping,
    SolutionSet,
    conditional_left_outer_join,
    join as omega_join,
    left_outer_join,
    union as omega_union,
)

__all__ = [
    "PhysOp",
    "IndexLookup", "ChainShip", "BGPWalk", "EmptyScan",
    "CachedScan", "CacheProbe",
    "Ship", "SemijoinShip",
    "HashJoin", "UnionOp", "LeftJoinOp", "FilterOp",
    "LocalBGPScan", "GraphScope",
    "OrderBy", "Project", "Distinct", "Slice", "FormOp",
    "compile_local", "interpret_local",
    "compile_distributed", "compile_query_plan",
    "pattern_leaf", "note_lookup",
    "walk_plan", "count_ops", "format_plan",
]


# ------------------------------------------------------------- node classes


class PhysOp:
    """Base physical operator.

    Mutable on purpose: the planner writes estimates (``est_rows`` /
    ``est_bytes``) before execution and the runtime writes observations
    (``placement``, ``actual_rows``, ``actual_bytes``, ``detail``)
    during it — one compiled tree is executed exactly once per query.
    ``actual_bytes`` is the network-stats delta observed across the
    operator's execution window; sibling operators run as parallel
    simulation processes, so overlapping windows may attribute the same
    message to more than one operator (per-operator attribution, not a
    partition of the query total).
    """

    __slots__ = ("op_id", "children", "placement", "est_rows", "est_bytes",
                 "actual_rows", "actual_bytes", "detail")

    kind = "Op"

    def __init__(self, children: Sequence["PhysOp"] = ()) -> None:
        self.op_id = -1
        self.children: List[PhysOp] = list(children)
        self.placement: Optional[str] = None
        self.est_rows: Optional[float] = None
        self.est_bytes: Optional[float] = None
        self.actual_rows: Optional[int] = None
        self.actual_bytes: Optional[int] = None
        self.detail: Dict[str, object] = {}

    def describe(self) -> str:
        """Operator-specific annotation appended to the kind in renders."""
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = self.describe()
        return f"<{self.kind}#{self.op_id}{' ' + extra if extra else ''}>"


def _pattern_text(pattern: TriplePattern) -> str:
    return pattern.n3().rstrip(" .")


class IndexLookup(PhysOp):
    """Consult the two-level index for one triple pattern (Fig. 2).

    ``info`` is filled by the cost planner's once-per-query prefetch
    (:func:`repro.query.cost.annotate_plan`); when present, execution
    reuses it instead of re-consulting the index. In legacy mode it
    stays None and the runtime locates exactly as before.
    """

    __slots__ = ("pattern", "condition", "info")
    kind = "IndexLookup"

    def __init__(self, pattern: TriplePattern,
                 condition: Optional[ast.Expression] = None) -> None:
        super().__init__()
        self.pattern = pattern
        self.condition = condition
        self.info = None

    def describe(self) -> str:
        text = _pattern_text(self.pattern)
        if self.condition is not None:
            text += " +filter"
        return text


class ChainShip(PhysOp):
    """Resolve one primitive pattern and ship its solutions to a site.

    The operator behind Sect. IV-C's basic / chained / freq schemes: the
    owner index node either fans out (basic) or threads the sub-query
    along the provider chain, and the union lands where the plan needs
    it. ``plan_strategy`` (cost mode) pins the scheme per leaf.
    """

    __slots__ = ("lookup", "plan_strategy")
    kind = "ChainShip"

    def __init__(self, lookup: IndexLookup) -> None:
        super().__init__((lookup,))
        self.lookup = lookup
        self.plan_strategy = None

    def describe(self) -> str:
        strategy = self.detail.get("strategy")
        if strategy is None and self.plan_strategy is not None:
            strategy = self.plan_strategy.value
        return f"[{strategy}]" if strategy else ""


class BGPWalk(PhysOp):
    """A multi-pattern conjunction walk (Sect. IV-D).

    Children are the per-pattern :class:`ChainShip` leaves. The walk is
    a composite operator: the BASIC mode ships accumulated solutions
    index-node to index-node; the OPTIMIZED mode routes every pattern's
    chain to one shared site. ``plan_mode`` / ``plan_site`` /
    ``plan_order`` are the cost planner's pinned decisions (None =
    decide at runtime from the live options, the legacy behaviour).
    """

    __slots__ = ("post_filter", "plan_mode", "plan_site", "plan_order")
    kind = "BGPWalk"

    def __init__(self, leaves: Sequence[ChainShip],
                 post_filter: Optional[ast.Expression] = None) -> None:
        super().__init__(leaves)
        self.post_filter = post_filter
        self.plan_mode: Optional[str] = None
        self.plan_site: Optional[str] = None
        self.plan_order: Optional[List[ChainShip]] = None

    def describe(self) -> str:
        mode = self.detail.get("mode") or self.plan_mode
        text = f"[{mode}]" if mode else ""
        if self.post_filter is not None:
            text += " +filter"
        return text


class CachedScan(ChainShip):
    """A primitive leaf served through the per-site result cache (PR 9).

    Runtime-compatible with :class:`ChainShip` — the owner index node
    intercepts the primitive when the payload carries a cache config, so
    the initiator-side execution path is untouched. The distinct kind
    makes explain renders show where the cache may engage, and lets the
    cost planner price the expected hit discount.
    """

    __slots__ = ()
    kind = "CachedScan"


class EmptyScan(PhysOp):
    """The unit solution set {µ∅} (an empty BGP)."""

    kind = "EmptyScan"


class CacheProbe(BGPWalk):
    """A BGP walk fronted by a combine-site sub-result cache (PR 9).

    Before running the walk, the runtime probes the planned combine
    site's cache for the whole BGP's solution set; a hit skips every
    chain and join. Structurally a :class:`BGPWalk`, so planner
    annotation (join order, site, modes) applies unchanged on a miss.
    """

    __slots__ = ()
    kind = "CacheProbe"


class Ship(PhysOp):
    """Edge operator: move one combine operand to the join site.

    A no-op at runtime when the operand is already resident; otherwise
    the one-way data shipping of Fig. 3. The combine layer records what
    actually moved (or that the operand stayed put) on this node.
    """

    __slots__ = ()
    kind = "Ship"

    def __init__(self, child: PhysOp) -> None:
        super().__init__((child,))

    @property
    def operand(self) -> PhysOp:
        return self.children[0]

    def describe(self) -> str:
        if self.detail.get("resident"):
            return "(resident)"
        src = self.detail.get("shipped_from")
        return f"from {src}" if src else ""


class SemijoinShip(Ship):
    """A ship edge that may be pre-filtered by the resident side's
    semijoin digest before the rows travel (PR 2's technique, now a
    first-class plan operator)."""

    __slots__ = ()
    kind = "SemijoinShip"

    def describe(self) -> str:
        text = super().describe()
        pruned = self.detail.get("pruned")
        if pruned is not None:
            text = (text + f" pruned={pruned}").strip()
        return text


class _Binary(PhysOp):
    """Shared shape of the two-operand combines.

    Distributed compilation wraps each operand in a :class:`Ship` edge
    (``children`` are the edges); local compilation holds the operands
    directly. ``left`` / ``right`` always reference the operand plans.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: PhysOp, right: PhysOp,
                 edges: Optional[Sequence[Ship]] = None) -> None:
        super().__init__(edges if edges is not None else (left, right))
        self.left = left
        self.right = right

    @property
    def edges(self):
        """(left_edge, right_edge) when operands hang off ship edges."""
        if self.children and isinstance(self.children[0], Ship):
            return self.children[0], self.children[1]
        return None


class HashJoin(_Binary):
    """Ω1 ⋈ Ω2 — locally a schema-grouped hash join, distributedly a
    combine at the join site the policy (or cost model) picks."""

    __slots__ = ()
    kind = "HashJoin"


class UnionOp(_Binary):
    """Ω1 ∪ Ω2 (Sect. IV-F)."""

    __slots__ = ()
    kind = "Union"


class LeftJoinOp(_Binary):
    """Ω1 ⟕ Ω2 — OPTIONAL (Sect. IV-E), with an optional embedded
    condition (paper footnote 16)."""

    __slots__ = ("condition",)
    kind = "LeftJoin"

    def __init__(self, left: PhysOp, right: PhysOp,
                 condition: Optional[ast.Expression] = None,
                 edges: Optional[Sequence[Ship]] = None) -> None:
        super().__init__(left, right, edges)
        self.condition = condition

    def describe(self) -> str:
        return "+cond" if self.condition is not None else ""


class FilterOp(PhysOp):
    """σ_C over a sub-plan whose condition could not be pushed into a
    leaf; runs where the operand's solutions sit."""

    __slots__ = ("condition",)
    kind = "Filter"

    def __init__(self, condition: ast.Expression, child: PhysOp) -> None:
        super().__init__((child,))
        self.condition = condition

    @property
    def operand(self) -> PhysOp:
        return self.children[0]


class LocalBGPScan(PhysOp):
    """Index nested-loop scan of a BGP over one local graph — the leaf
    of the local interpreter (what a storage node's sub-query runs)."""

    __slots__ = ("bgp",)
    kind = "LocalBGPScan"

    def __init__(self, bgp: BGP) -> None:
        super().__init__()
        self.bgp = bgp

    def describe(self) -> str:
        return ". ".join(_pattern_text(p) for p in self.bgp.patterns)


class GraphScope(PhysOp):
    """GRAPH <g> { P } — local evaluation against a named graph. The
    distributed engine refuses it (the ad-hoc dataset has no named
    graphs, Sect. IV-A)."""

    __slots__ = ("graph",)
    kind = "Graph"

    def __init__(self, graph, child: PhysOp) -> None:
        super().__init__((child,))
        self.graph = graph

    @property
    def operand(self) -> PhysOp:
        return self.children[0]


class OrderBy(PhysOp):
    """ORDER BY at the initiator (post-processing stage)."""

    __slots__ = ("conditions",)
    kind = "OrderBy"

    def __init__(self, conditions, child: PhysOp) -> None:
        super().__init__((child,))
        self.conditions = tuple(conditions)

    def describe(self) -> str:
        return f"({len(self.conditions)} keys)"


class Project(PhysOp):
    """Projection at the initiator."""

    __slots__ = ("variables",)
    kind = "Project"

    def __init__(self, variables, child: PhysOp) -> None:
        super().__init__((child,))
        self.variables = tuple(variables)

    def describe(self) -> str:
        return "(" + ", ".join(f"?{v.name}" for v in self.variables) + ")"


class Distinct(PhysOp):
    """DISTINCT / REDUCED dedup at the initiator."""

    __slots__ = ()
    kind = "Distinct"

    def __init__(self, child: PhysOp) -> None:
        super().__init__((child,))


class Slice(PhysOp):
    """OFFSET / LIMIT at the initiator."""

    __slots__ = ("offset", "limit")
    kind = "Slice"

    def __init__(self, offset: int, limit: Optional[int], child: PhysOp) -> None:
        super().__init__((child,))
        self.offset = offset
        self.limit = limit

    def describe(self) -> str:
        parts = []
        if self.offset:
            parts.append(f"offset={self.offset}")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return " ".join(parts)


class FormOp(PhysOp):
    """Non-SELECT result forms (ASK / CONSTRUCT / DESCRIBE) applied at
    the initiator over the final solution set."""

    __slots__ = ("form",)
    kind = "Form"

    def __init__(self, form: str, child: PhysOp) -> None:
        super().__init__((child,))
        self.form = form

    def describe(self) -> str:
        return self.form


# --------------------------------------------------------------- utilities


def pattern_leaf(pattern: TriplePattern,
                 condition: Optional[ast.Expression] = None) -> ChainShip:
    """A standalone primitive leaf (used e.g. by DESCRIBE's follow-ups)."""
    return ChainShip(IndexLookup(pattern, condition))


def note_lookup(lookup: IndexLookup, info) -> None:
    """Record what the index said about a leaf (display annotations only;
    never feeds back into execution decisions)."""
    lookup.est_rows = info.total_frequency
    lookup.placement = info.owner
    lookup.detail["providers"] = len(info.entries)
    if info.key_kind is not None:
        lookup.detail["key"] = info.key_kind.value


def walk_plan(node: PhysOp) -> Iterator[PhysOp]:
    """Pre-order walk over every operator in the tree."""
    yield node
    for child in node.children:
        yield from walk_plan(child)


def number_plan(node: PhysOp) -> int:
    """Assign pre-order op ids; returns the operator count."""
    count = 0
    for op in walk_plan(node):
        op.op_id = count
        count += 1
    return count


def count_ops(node: PhysOp) -> int:
    return sum(1 for _ in walk_plan(node))


# ------------------------------------------------------- local compilation


def compile_local(node: Algebra) -> PhysOp:
    """Compile an algebra tree for single-graph interpretation.

    A 1:1 structural mapping — the physical tree *is* the algebra tree,
    with BGPs as scan leaves — so :func:`interpret_local` replaces the
    old isinstance walk of ``sparql.eval`` without changing semantics.
    """
    if isinstance(node, BGP):
        return LocalBGPScan(node)
    if isinstance(node, Join):
        return HashJoin(compile_local(node.left), compile_local(node.right))
    if isinstance(node, Union):
        return UnionOp(compile_local(node.left), compile_local(node.right))
    if isinstance(node, LeftJoin):
        return LeftJoinOp(compile_local(node.left), compile_local(node.right),
                          node.condition)
    if isinstance(node, Filter):
        return FilterOp(node.condition, compile_local(node.pattern))
    if isinstance(node, GraphNode):
        return GraphScope(node.graph, compile_local(node.pattern))
    raise SparqlError(f"cannot compile algebra node {type(node).__name__}")


def interpret_local(
    node: PhysOp,
    graph: Graph,
    named_graphs: Optional[Dict[IRI, Graph]] = None,
) -> SolutionSet:
    """⟦P⟧_D by interpreting the physical tree over one graph.

    Implements exactly the Sect. IV-B semantics the old algebra walk
    implemented; additionally records each operator's output cardinality
    (``actual_rows``) for explain renders of local plans.
    """
    from ..sparql.eval import evaluate_bgp  # deferred: eval imports us lazily

    out = _interpret_local(node, graph, named_graphs or {}, evaluate_bgp)
    return out


def _interpret_local(node, graph, named_graphs, evaluate_bgp) -> SolutionSet:
    def rec(child: PhysOp, g: Graph = graph) -> SolutionSet:
        return _interpret_local(child, g, named_graphs, evaluate_bgp)

    if isinstance(node, LocalBGPScan):
        out = evaluate_bgp(node.bgp, graph)
    elif isinstance(node, HashJoin):
        out = omega_join(rec(node.left), rec(node.right))
    elif isinstance(node, UnionOp):
        out = omega_union(rec(node.left), rec(node.right))
    elif isinstance(node, LeftJoinOp):
        left, right = rec(node.left), rec(node.right)
        if node.condition is None:
            out = left_outer_join(left, right)
        else:
            condition = node.condition
            out = conditional_left_outer_join(
                left, right, lambda nu: filter_passes(condition, nu)
            )
    elif isinstance(node, FilterOp):
        out = {mu for mu in rec(node.operand)
               if filter_passes(node.condition, mu)}
    elif isinstance(node, GraphScope):
        out = _interpret_graph_scope(node, named_graphs, rec)
    else:
        raise SparqlError(
            f"cannot interpret physical operator {type(node).__name__} locally"
        )
    node.actual_rows = len(out)
    return out


def _interpret_graph_scope(node: GraphScope, named_graphs, rec) -> SolutionSet:
    if isinstance(node.graph, IRI):
        target = named_graphs.get(node.graph)
        if target is None:
            return set()
        return rec(node.operand, target)
    # Variable: union over all named graphs, binding the variable.
    out: SolutionSet = set()
    var = node.graph
    for name, g in named_graphs.items():
        binding = SolutionMapping({var: name})
        for mu in rec(node.operand, g):
            out.update(omega_join([binding], [mu]))
    return out


# -------------------------------------------------- distributed compilation


def _may_prune(op: str, role: str) -> bool:
    """May the *role* operand of *op* ship behind a semijoin digest?
    Mirrors the combine layer's soundness rule (join: either side;
    leftjoin: right only; union: neither)."""
    if op == "join":
        return True
    return op == "leftjoin" and role == "right"


def _edge(op: str, role: str, child: PhysOp, options) -> Ship:
    if options.semijoin and _may_prune(op, role):
        return SemijoinShip(child)
    return Ship(child)


def _binary(cls, op: str, node, options,
            condition: Optional[ast.Expression] = None) -> PhysOp:
    left = compile_distributed(node.left, options)
    right = compile_distributed(node.right, options)
    edges = (_edge(op, "left", left, options), _edge(op, "right", right, options))
    if condition is not None:
        return cls(left, right, condition, edges=edges)
    return cls(left, right, edges=edges)


def compile_distributed(node: Algebra, options) -> PhysOp:
    """Compile an algebra tree into the distributed physical plan.

    The case analysis is exactly the one the executor and the filter
    module used to perform at runtime — moved to compile time, where it
    is pure — so legacy execution visits the same operator functions
    with the same arguments in the same order (the golden-metrics grid
    pins this bit-for-bit).
    """
    cached = getattr(options, "result_cache", False)

    if isinstance(node, BGP):
        if not node.patterns:
            return EmptyScan()
        if len(node.patterns) == 1:
            if cached:
                return CachedScan(IndexLookup(node.patterns[0]))
            return pattern_leaf(node.patterns[0])
        leaves = [pattern_leaf(p) for p in node.patterns]
        return CacheProbe(leaves) if cached else BGPWalk(leaves)

    if isinstance(node, Filter):
        target = node.pattern
        if isinstance(target, BGP) and len(target.patterns) == 1:
            # The condition travels with the sub-query to the providers.
            return pattern_leaf(target.patterns[0], node.condition)
        if isinstance(target, BGP) and target.patterns:
            return BGPWalk([pattern_leaf(p) for p in target.patterns],
                           post_filter=node.condition)
        return FilterOp(node.condition, compile_distributed(target, options))

    if isinstance(node, Join):
        return _binary(HashJoin, "join", node, options)

    if isinstance(node, Union):
        return _binary(UnionOp, "union", node, options)

    if isinstance(node, LeftJoin):
        return _binary(LeftJoinOp, "leftjoin", node, options,
                       condition=node.condition)

    if isinstance(node, GraphNode):
        return GraphScope(node.graph, compile_distributed(node.pattern, options))

    raise SparqlError(f"cannot compile algebra node {type(node).__name__}")


def compile_query_plan(query: ast.Query, algebra: Algebra, options) -> PhysOp:
    """The full per-query plan: the distributed root wrapped in the
    initiator's post-processing operators (Order → Project → Distinct →
    Slice, the spec's modifier order), numbered for explain renders.

    Returns the wrapper tree; :func:`execution_root` recovers the node
    the distributed engine actually runs.
    """
    plan = compile_distributed(algebra, options)

    if isinstance(query, ast.SelectQuery):
        modifiers = query.modifiers
        if modifiers.order:
            plan = OrderBy(modifiers.order, plan)
        projection = list(query.projection)
        if not projection:
            projection = sorted(algebra.in_scope_vars(), key=lambda v: v.name)
        plan = Project(projection, plan)
        if modifiers.distinct or modifiers.reduced:
            plan = Distinct(plan)
        if modifiers.offset or modifiers.limit is not None:
            plan = Slice(modifiers.offset, modifiers.limit, plan)
    elif isinstance(query, ast.AskQuery):
        plan = FormOp("Ask", plan)
    elif isinstance(query, ast.ConstructQuery):
        plan = FormOp("Construct", plan)
    elif isinstance(query, ast.DescribeQuery):
        plan = FormOp("Describe", plan)

    number_plan(plan)
    return plan


_POST_OPS = (OrderBy, Project, Distinct, Slice, FormOp)


def execution_root(plan: PhysOp) -> PhysOp:
    """Strip the initiator post-processing wrappers off a query plan."""
    while isinstance(plan, _POST_OPS):
        plan = plan.children[0]
    return plan


def record_postprocess(plan: PhysOp, root_rows: Optional[int],
                       final_rows: int, initiator: str) -> None:
    """Fill the post-processing wrappers' observations after execution.

    Order/Project preserve cardinality (they see the root's row count);
    Distinct/Slice/Form report the final result count.
    """
    node = plan
    while isinstance(node, _POST_OPS):
        node.placement = initiator
        if isinstance(node, (OrderBy, Project)):
            node.actual_rows = root_rows
        else:
            node.actual_rows = final_rows
        node = node.children[0]


# --------------------------------------------------------------- rendering


_COLUMNS = ("site", "est rows", "actual rows", "est bytes", "actual bytes")


def _fmt_num(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.0f}"
    return str(value)


def format_plan(plan: PhysOp) -> str:
    """Render the annotated operator tree as an aligned table.

    One row per operator: the tree-drawn label, the placement actually
    observed, and the estimate-vs-actual row/byte columns (``-`` where a
    quantity does not apply or was never estimated, e.g. legacy mode
    plans estimate nothing).
    """
    rows: List[tuple] = []

    def emit(node: PhysOp, prefix: str, tail: str) -> None:
        extra = node.describe()
        label = f"{prefix}{tail}{node.kind}" + (f" {extra}" if extra else "")
        rows.append((
            label,
            node.placement if node.placement is not None else "-",
            _fmt_num(node.est_rows),
            _fmt_num(node.actual_rows),
            _fmt_num(node.est_bytes),
            _fmt_num(node.actual_bytes),
        ))
        child_prefix = prefix
        if tail:
            child_prefix += "   " if tail == "└─ " else "│  "
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            emit(child, child_prefix, "└─ " if last else "├─ ")

    emit(plan, "", "")
    header = ("operator",) + _COLUMNS
    widths = [max(len(str(row[i])) for row in rows + [header])
              for i in range(len(header))]
    lines = [f"# physical plan: {count_ops(plan)} operators"]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        lines.append("  ".join(str(row[i]).ljust(widths[i])
                               for i in range(len(header))).rstrip())
    return "\n".join(lines)
