"""Planning data structures and the index-consultation step.

``PatternInfo`` captures what the planner learns about one triple pattern
from the two-level index: which key serves it, which index node owns that
key, and the location-table row (storage nodes + frequencies). Frequency
totals order chains, drive move-small, and feed join reordering — the
three uses the paper assigns to the frequency numbers of Table I.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from ..overlay.keys import KeyKind
from ..overlay.location_table import LocationEntry
from ..rdf.terms import Variable
from ..rdf.triple import TriplePattern
from ..sparql import ast
from ..sparql.algebra import Algebra, BGP, Filter, GraphNode, Join, LeftJoin, Union

__all__ = [
    "PatternInfo",
    "ResultHandle",
    "subquery_algebra",
    "choose_shared_site",
    "combine_vars",
    "compute_live_vars",
]


@dataclass(frozen=True, slots=True)
class PatternInfo:
    """Everything the planner knows about one triple pattern."""

    pattern: TriplePattern
    #: The index key serving the pattern; None for (?s, ?p, ?o).
    key_kind: Optional[KeyKind]
    key: Optional[int]
    #: Index node owning the key (None for the broadcast case).
    owner: Optional[str]
    #: The location-table row.
    entries: Tuple[LocationEntry, ...]
    #: DHT hops spent locating the owner.
    lookup_hops: int = 0
    #: FILTER condition pushed into this pattern's sub-query, if any.
    condition: Optional[ast.Expression] = None

    @property
    def storage_ids(self) -> Set[str]:
        return {e.storage_id for e in self.entries}

    @property
    def total_frequency(self) -> int:
        """Upper bound on matching triples across all providers — the
        planner's cardinality estimate for this pattern."""
        return sum(e.frequency for e in self.entries)

    def frequency_of(self, storage_id: str) -> int:
        for entry in self.entries:
            if entry.storage_id == storage_id:
                return entry.frequency
        return 0


@dataclass(frozen=True, slots=True)
class ResultHandle:
    """A materialized intermediate result: *count* solutions sitting in
    the mailbox of node *site* under correlation id *corr*.

    ``vars``, when known, is the set of variables *certainly* bound in
    every solution of the box (the planner's static knowledge) — what the
    shipping layer uses to size semijoin digests and projection lists.
    ``None`` means unknown; the shipping optimizations then stay off for
    this handle rather than guess.
    """

    site: str
    corr: str
    count: int
    vars: Optional[FrozenSet[Variable]] = None


def combine_vars(
    op: str,
    left: Optional[FrozenSet[Variable]],
    right: Optional[FrozenSet[Variable]],
) -> Optional[FrozenSet[Variable]]:
    """Certain variables of a combined result (None = unknown).

    join: both sides' certain variables survive in every merged row;
    union: only variables certain on *both* branches stay certain;
    leftjoin/minus: the left side's certain variables (OPTIONAL bindings
    are exactly the uncertain ones).
    """
    if op == "join":
        if left is None or right is None:
            return None
        return left | right
    if op == "union":
        if left is None or right is None:
            return None
        return left & right
    if op in ("leftjoin", "minus"):
        return left
    return None


def subquery_algebra(info: PatternInfo) -> Algebra:
    """The sub-query shipped to storage nodes for this pattern: its BGP,
    wrapped in the pushed-down filter when one travelled with it."""
    bgp = BGP((info.pattern,))
    if info.condition is not None:
        return Filter(info.condition, bgp)
    return bgp


def choose_shared_site(infos: Sequence[PatternInfo]) -> Optional[str]:
    """The overlap heuristic of Sect. IV-D.

    Prefer the storage node present in the most patterns' provider sets
    (so the most chains can end there without extra shipping); break ties
    toward the node holding the most matching triples (its own data never
    crosses the network), then by node id for determinism. Returns None
    when no node serves at least two patterns — no useful overlap.
    """
    if not infos:
        return None
    presence: Dict[str, int] = {}
    weight: Dict[str, int] = {}
    for info in infos:
        for entry in info.entries:
            presence[entry.storage_id] = presence.get(entry.storage_id, 0) + 1
            weight[entry.storage_id] = weight.get(entry.storage_id, 0) + entry.frequency
    if not presence:
        return None
    best = max(
        presence,
        key=lambda node: (presence[node], weight[node], node),
    )
    if len(infos) > 1 and presence[best] < 2:
        return None
    return best


# ----------------------------------------------------- projection pushdown


def _walk_algebra(node: Algebra):
    yield node
    if isinstance(node, BGP):
        return
    if isinstance(node, (Join, LeftJoin, Union)):
        yield from _walk_algebra(node.left)
        yield from _walk_algebra(node.right)
    elif isinstance(node, (Filter, GraphNode)):
        yield from _walk_algebra(node.pattern)


def _condition_vars(algebra: Algebra) -> Set[Variable]:
    """Variables referenced by any FILTER / OPTIONAL condition anywhere in
    the tree — these must survive every ship, wherever the condition ends
    up running (pushed to providers, at a join site, or post-hoc)."""
    out: Set[Variable] = set()
    for node in _walk_algebra(algebra):
        if isinstance(node, Filter):
            out |= node.condition.variables()
        elif isinstance(node, LeftJoin) and node.condition is not None:
            out |= node.condition.variables()
    return out


def _join_vars(algebra: Algebra) -> Set[Variable]:
    """Variables occurring in ≥ 2 triple-pattern leaves: potential join
    keys between some pair of operands, so never prunable mid-plan."""
    counts: Counter = Counter()
    for node in _walk_algebra(algebra):
        if isinstance(node, BGP):
            for pattern in node.patterns:
                counts.update(pattern.variables())
    return {v for v, n in counts.items() if n >= 2}


def _output_vars(query: ast.Query, algebra: Algebra) -> Optional[Set[Variable]]:
    """Variables the post-processing stage needs, or None when pruning is
    unsound for this query form.

    Plain (non-DISTINCT) SELECT returns None: the final row sequence
    keeps duplicate projected rows that stem from distinct pre-projection
    mappings, so dropping columns early would collapse multiplicities.
    """
    if isinstance(query, ast.AskQuery):
        return set()
    if isinstance(query, ast.SelectQuery):
        if not (query.modifiers.distinct or query.modifiers.reduced):
            return None
        projection = set(query.projection)
        if not projection:  # SELECT *
            projection = set(algebra.in_scope_vars())
        return projection
    if isinstance(query, ast.ConstructQuery):
        out: Set[Variable] = set()
        for template in query.template:
            out |= template.variables()
        return out
    if isinstance(query, ast.DescribeQuery):
        return {v for v in query.subjects if isinstance(v, Variable)}
    return None


def compute_live_vars(
    query: ast.Query, algebra: Algebra
) -> Optional[FrozenSet[Variable]]:
    """The global keep-set K for projection pushdown, or None (no pruning).

    A variable may be dropped from a shipped solution set iff it is not
    in K. K = output vars ∪ all condition vars ∪ ORDER BY vars ∪ every
    variable shared between two triple-pattern leaves. Because any
    dropped variable occurs in exactly one leaf, it is never a shared
    variable of any downstream join/minus compatibility check, so
    dropping it commutes with every algebra operation under set
    semantics; K's output component keeps the final answer intact.
    """
    output = _output_vars(query, algebra)
    if output is None:
        return None
    live: Set[Variable] = set(output)
    for cond in query.modifiers.order:
        live |= cond.expression.variables()
    live |= _condition_vars(algebra)
    live |= _join_vars(algebra)
    return frozenset(live)
