"""Planning data structures and the index-consultation step.

``PatternInfo`` captures what the planner learns about one triple pattern
from the two-level index: which key serves it, which index node owns that
key, and the location-table row (storage nodes + frequencies). Frequency
totals order chains, drive move-small, and feed join reordering — the
three uses the paper assigns to the frequency numbers of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..overlay.keys import KeyKind
from ..overlay.location_table import LocationEntry
from ..rdf.triple import TriplePattern
from ..sparql import ast
from ..sparql.algebra import Algebra, BGP, Filter

__all__ = ["PatternInfo", "ResultHandle", "subquery_algebra", "choose_shared_site"]


@dataclass(frozen=True, slots=True)
class PatternInfo:
    """Everything the planner knows about one triple pattern."""

    pattern: TriplePattern
    #: The index key serving the pattern; None for (?s, ?p, ?o).
    key_kind: Optional[KeyKind]
    key: Optional[int]
    #: Index node owning the key (None for the broadcast case).
    owner: Optional[str]
    #: The location-table row.
    entries: Tuple[LocationEntry, ...]
    #: DHT hops spent locating the owner.
    lookup_hops: int = 0
    #: FILTER condition pushed into this pattern's sub-query, if any.
    condition: Optional[ast.Expression] = None

    @property
    def storage_ids(self) -> Set[str]:
        return {e.storage_id for e in self.entries}

    @property
    def total_frequency(self) -> int:
        """Upper bound on matching triples across all providers — the
        planner's cardinality estimate for this pattern."""
        return sum(e.frequency for e in self.entries)

    def frequency_of(self, storage_id: str) -> int:
        for entry in self.entries:
            if entry.storage_id == storage_id:
                return entry.frequency
        return 0


@dataclass(frozen=True, slots=True)
class ResultHandle:
    """A materialized intermediate result: *count* solutions sitting in
    the mailbox of node *site* under correlation id *corr*."""

    site: str
    corr: str
    count: int


def subquery_algebra(info: PatternInfo) -> Algebra:
    """The sub-query shipped to storage nodes for this pattern: its BGP,
    wrapped in the pushed-down filter when one travelled with it."""
    bgp = BGP((info.pattern,))
    if info.condition is not None:
        return Filter(info.condition, bgp)
    return bgp


def choose_shared_site(infos: Sequence[PatternInfo]) -> Optional[str]:
    """The overlap heuristic of Sect. IV-D.

    Prefer the storage node present in the most patterns' provider sets
    (so the most chains can end there without extra shipping); break ties
    toward the node holding the most matching triples (its own data never
    crosses the network), then by node id for determinism. Returns None
    when no node serves at least two patterns — no useful overlap.
    """
    if not infos:
        return None
    presence: Dict[str, int] = {}
    weight: Dict[str, int] = {}
    for info in infos:
        for entry in info.entries:
            presence[entry.storage_id] = presence.get(entry.storage_id, 0) + 1
            weight[entry.storage_id] = weight.get(entry.storage_id, 0) + entry.frequency
    if not presence:
        return None
    best = max(
        presence,
        key=lambda node: (presence[node], weight[node], node),
    )
    if len(infos) > 1 and presence[best] < 2:
        return None
    return best
