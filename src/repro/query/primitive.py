"""Primitive SPARQL queries: one triple pattern (Sect. IV-C).

Implements the three processing schemes of the paper:

* **basic** — the owner index node fans the sub-query out to every target
  storage node in parallel, assembles the union, and sends it to the
  initiator. "Parallelism is exploited, but ... high transmission
  overhead may be incurred."
* **chained** — the index node forwards the query with a sequence of
  target nodes; each node merges its matches into the accumulated
  solutions and passes them on; the last node returns the final mappings
  to the initiator. In-network aggregation trades response time for
  transmission.
* **freq** — as chained, but the sequence is "arranged in the increasing
  order of the frequency information", so the node with the most matching
  triples is last and its (largest) contribution travels only once,
  directly to the initiator.

The fully-unbound pattern (?s, ?p, ?o) has no index key: the dataset is
the union of all triples at all storage nodes (Sect. IV-A), resolved by a
ring walk over the index nodes followed by a fan-out to every attached
storage node.
"""

from __future__ import annotations

from typing import List, Optional

from ..net.transport import RpcTimeout
from ..net.wire import DICT_WIRE_SCALE, as_solution_set
from ..sparql.solutions import union as omega_union
from .failover import dispatch_primitive
from .physical import ChainShip, note_lookup
from .plan import PatternInfo, ResultHandle, subquery_algebra
from .strategies import PrimitiveStrategy

__all__ = ["exec_primitive", "exec_pattern_to_site", "exec_broadcast", "discover_all_storage"]


def exec_primitive(ctx, leaf: ChainShip, at_home: bool = False):
    """Generator: resolve a primitive leaf operator. Returns a ResultHandle.

    The leaf's :class:`~repro.query.physical.IndexLookup` carries the
    pattern and any pushed-down condition; when the cost planner already
    fetched its location-table row (``lookup.info``), the consultation is
    skipped — otherwise the index is consulted here, exactly as before.

    ``at_home=False`` materializes at the initiator (the right choice for
    a top-level primitive query). ``at_home=True`` leaves the result at
    its *home site* — the provider holding the most matching triples — so
    that a downstream join/union/left-join's site selection has a real
    decision to make (otherwise everything would already sit at the query
    site and every policy would degenerate to Query-Site).
    """
    lookup = leaf.lookup
    span = ctx.tracer.span("primitive", pattern=str(lookup.pattern))
    try:
        info = lookup.info
        if info is None:
            info = yield from ctx.locate(lookup.pattern, lookup.condition)
            note_lookup(lookup, info)
        if info.owner is None:
            return (yield from exec_broadcast(ctx, subquery_algebra(info)))
        site = ctx.initiator
        if at_home and info.entries:
            heaviest = max(info.entries, key=lambda e: (e.frequency, e.storage_id))
            site = heaviest.storage_id
        return (yield from exec_pattern_to_site(ctx, info, site, leaf=leaf))
    except RpcTimeout:
        # partial_results: a pattern whose owner and replicas are all
        # unreachable contributes the empty set (a safe subset), flagged
        # on the report and the plan, instead of failing the query.
        if not ctx.options.partial_results:
            raise
        ctx.flag_partial(str(lookup.pattern), node=leaf)
        return ctx.local_deposit(
            ctx.new_corr(), set(),
            vars=frozenset(lookup.pattern.variables()))
    finally:
        span.close()


def exec_pattern_to_site(ctx, info: PatternInfo, site: str,
                         leaf: Optional[ChainShip] = None):
    """Generator: evaluate one located pattern, delivering the union of
    provider matches into *site*'s mailbox. Returns a ResultHandle.

    Applies the executor's primitive strategy; falls back to BASIC when a
    chain breaks (delivery timeout), which also triggers the stale-entry
    cleanup of Sect. III-D at the owner index node.
    """
    from .executor import DeliveryTimeout  # local import: avoid cycle

    corr = ctx.new_corr()
    pattern_vars = frozenset(info.pattern.variables())
    keep = ctx.keep_vars(pattern_vars)
    result_vars = frozenset(keep) if keep is not None else pattern_vars
    if not info.entries:
        if site == ctx.initiator:
            return ctx.local_deposit(corr, set(), vars=result_vars)
        # Install an empty box remotely so downstream combines find it.
        yield ctx.call(site, "deliver", {"corr": corr, "data": []})
        return ResultHandle(site, corr, 0, result_vars)

    algebra = subquery_algebra(info)
    strategy = ctx.options.primitive_strategy
    encode = ctx.options.dictionary_encoding

    if leaf is not None and leaf.plan_strategy is not None:
        # The cost planner pinned this leaf's scheme at plan time.
        strategy = leaf.plan_strategy
    elif strategy is PrimitiveStrategy.ADAPTIVE:
        # Sect. V future work: pick per sub-query from the frequency
        # statistics, under the executor's objective mixture. The wire
        # scale folds the active shipping optimizations into the model's
        # per-solution byte prior, so the choice sees the real costs.
        from .cost import choose_strategy

        wire_scale = 1.0
        if encode:
            wire_scale *= DICT_WIRE_SCALE
        if keep is not None and pattern_vars:
            wire_scale *= max(len(keep), 1) / len(pattern_vars)
        strategy, _costs = choose_strategy(
            info.entries,
            ctx.network.link,
            ctx.options.time_weight,
            ctx.options.dedup_prior,
            wire_scale=wire_scale,
        )
        ctx.report.merge_note(f"adaptive -> {strategy.value} ({corr})")

    if leaf is not None:
        leaf.detail["strategy"] = strategy.wire_name

    if strategy is PrimitiveStrategy.BASIC:
        return (yield from _basic(ctx, info, algebra, site, corr,
                                  keep=keep, result_vars=result_vars))

    tag = ctx.delivery_tag(corr)
    payload = {
        "algebra": algebra,
        "key": info.key,
        "strategy": strategy.wire_name,
        "final": site,
        "end_at": site,
        "corr": corr,
        "notify": ctx.initiator,
    }
    if tag is not None:
        payload["notify_corr"] = tag
    if keep is not None:
        payload["project"] = keep
    if encode:
        payload["encode"] = True
    if ctx.options.partial_results:
        payload["partial"] = True
    cache_cfg = ctx.cache_cfg()
    if cache_cfg is not None:
        payload["cache"] = cache_cfg
    ack, info, corr = yield from dispatch_primitive(ctx, info, payload, corr)
    if ack["mode"] == "direct":
        # Empty route: no providers left; materialize the empty result.
        ctx.unexpect(tag or corr)
        data = as_solution_set(ack["data"])
        if site == ctx.initiator:
            return ctx.local_deposit(corr, data, vars=result_vars)
        yield ctx.call(site, "deliver", {"corr": corr, "data": ack["data"]})
        return ResultHandle(site, corr, len(data), result_vars)
    try:
        count = yield from ctx.wait_delivery(corr, site=site, notify_corr=tag)
    except DeliveryTimeout:
        # A storage node on the route died mid-chain. Re-execute with the
        # BASIC strategy: its per-node timeouts clean the stale entries.
        ctx.report.retries += 1
        ctx.report.merge_note(f"chain fallback for {corr}")
        corr = ctx.new_corr()
        return (yield from _basic(ctx, info, algebra, site, corr,
                                  keep=keep, result_vars=result_vars))
    return ResultHandle(site, corr, count, result_vars)


def _basic(ctx, info: PatternInfo, algebra, site: str, corr: str,
           keep=None, result_vars=None):
    payload = {
        "algebra": algebra,
        "key": info.key,
        "strategy": "basic",
        "corr": corr,
        # Bound the owner's per-provider wait so the whole fan-out always
        # finishes inside our own call deadline below.
        "storage_timeout": ctx.options.delivery_timeout,
    }
    if keep is not None:
        payload["project"] = keep
    if ctx.options.dictionary_encoding:
        payload["encode"] = True
    if ctx.options.partial_results:
        payload["partial"] = True
    cache_cfg = ctx.cache_cfg()
    if cache_cfg is not None:
        payload["cache"] = cache_cfg
    if site != ctx.initiator:
        payload["final"] = site
        payload["notify"] = ctx.initiator
        tag = ctx.delivery_tag(corr)
        if tag is not None:
            payload["notify_corr"] = tag
        ack, info, corr = yield from dispatch_primitive(
            ctx, info, payload, corr, timeout=ctx.options.delivery_timeout * 4)
        _note_dropped(ctx, ack, info)
        if ack["mode"] == "direct":
            yield ctx.call(site, "deliver", {"corr": corr, "data": ack["data"]})
            return ResultHandle(site, corr, len(as_solution_set(ack["data"])),
                                result_vars)
        yield from ctx.wait_delivery(corr, site=site, notify_corr=tag)
        return ResultHandle(site, corr, ack["count"], result_vars)
    response, info, corr = yield from dispatch_primitive(
        ctx, info, payload, corr, timeout=ctx.options.delivery_timeout * 4)
    _note_dropped(ctx, response, info)
    return ctx.local_deposit(corr, as_solution_set(response["data"]),
                             vars=result_vars)


def _note_dropped(ctx, ack, info: PatternInfo) -> None:
    """The gray-failure hint: the owner's fan-out silently timed some
    providers out (exact under crash-stop, a subset under message loss),
    and — because the payload opted in with ``partial`` — said so in the
    ack. Flag the report; the rows we did get remain a safe subset."""
    if ack.get("dropped"):
        ctx.flag_partial(f"{ack['dropped']} providers of {info.pattern}")


# --------------------------------------------------------------- broadcast


def discover_all_storage(ctx):
    """Generator: walk the ring collecting every attached storage node.

    Starts at the initiator's entry index node and follows successor
    pointers until the walk closes — O(#index nodes) messages.
    """
    storages: List[str] = []
    start = ctx.entry_index
    current = start
    visited = set()
    while current not in visited:
        visited.add(current)
        attached = yield ctx.call(current, "get_attached")
        storages.extend(attached)
        succ_list = yield ctx.call(current, "get_successor_list")
        nxt = None
        for ref in succ_list:
            node = ctx.network.nodes.get(ref.node_id)
            if node is not None and node.alive:
                nxt = ref.node_id
                break
        if nxt is None:
            break
        current = nxt
    return storages


def exec_broadcast(ctx, algebra):
    """Generator: evaluate a sub-query at *every* storage node (the
    union-of-all-providers dataset semantics for (?s, ?p, ?o))."""
    if not ctx.options.allow_broadcast:
        from .executor import QueryFailed

        raise QueryFailed("broadcast disabled but pattern has no index key")
    span = ctx.tracer.span("broadcast")
    try:
        storages = yield from discover_all_storage(ctx)
        ctx.report.merge_note(f"broadcast to {len(storages)} storage nodes")
        corr = ctx.new_corr()
        events = [
            ctx.call(storage_id, "evaluate", {"algebra": algebra})
            for storage_id in sorted(set(storages))
        ]
        solutions = set()
        if events:
            results = yield ctx.sim.all_of(events)
            for batch in results:
                solutions = omega_union(solutions, batch)
        return ctx.local_deposit(corr, solutions)
    except RpcTimeout:
        # partial_results: an unreachable node on the ring walk or in the
        # fan-out degrades the broadcast to the empty (safe) subset.
        if not ctx.options.partial_results:
            raise
        ctx.flag_partial("broadcast (?s ?p ?o)")
        return ctx.local_deposit(ctx.new_corr(), set())
    finally:
        span.close()
