"""Execution strategies and options (Sect. IV, Sect. II).

The paper describes, for each query family, a *basic* processing scheme
and one or more *optimizations*; and for join placement the classic
Move-Small / Query-Site / Third-Site policies. These enums name them; the
benchmark harness sweeps them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..net.transport import RetryPolicy

__all__ = [
    "PrimitiveStrategy",
    "ConjunctionMode",
    "JoinSitePolicy",
    "ExecutionOptions",
]


class PrimitiveStrategy(enum.Enum):
    """How a single-triple-pattern sub-query is resolved (Sect. IV-C)."""

    #: Parallel fan-out from the index node; union at the index node
    #: (assembly site); result forwarded to the initiator. Lowest response
    #: time, highest transmission.
    BASIC = "basic"
    #: In-network aggregation: the query visits the target storage nodes
    #: in sequence, merging results along the way; the last node returns
    #: the final mappings to the initiator.
    CHAINED = "chained"
    #: Chained, with nodes "arranged in the increasing order of the
    #: frequency information", so the largest contributor is last and its
    #: (biggest) local result set never transits an extra hop.
    FREQ = "freq"
    #: Cost-based per-query choice between BASIC and FREQ using the
    #: location-table statistics and the executor's objective mixture —
    #: the Sect. V future-work planner (see :mod:`repro.query.adaptive`).
    ADAPTIVE = "adaptive"

    @property
    def wire_name(self) -> str:
        return self.value


class ConjunctionMode(enum.Enum):
    """How a multi-pattern BGP is processed (Sect. IV-D)."""

    #: The paper's basic scheme: resolve P1 at its index node, ship the
    #: solutions (with the query) to P2's index node, join there, and so
    #: on; the last index node returns the result to the initiator.
    BASIC = "basic"
    #: The paper's optimization: exploit overlap between the storage-node
    #: sets — chain each pattern's evaluation to a shared storage node and
    #: join there, with chains running in parallel.
    OPTIMIZED = "optimized"


class JoinSitePolicy(enum.Enum):
    """Join site selection (Sect. II / Du et al., Cornell & Yu, Ye et al.)."""

    #: Ship the smaller operand to the site of the larger one.
    MOVE_SMALL = "move-small"
    #: Perform the join at the site where the query was submitted.
    QUERY_SITE = "query-site"
    #: Choose a third site based on (simulated) QoS information — here the
    #: least-loaded storage node.
    THIRD_SITE = "third-site"


@dataclass(frozen=True, slots=True)
class ExecutionOptions:
    """Knobs of the distributed executor; defaults are the paper's
    most-optimized configuration."""

    primitive_strategy: PrimitiveStrategy = PrimitiveStrategy.FREQ
    conjunction_mode: ConjunctionMode = ConjunctionMode.OPTIMIZED
    join_site_policy: JoinSitePolicy = JoinSitePolicy.MOVE_SMALL
    #: Run the algebraic optimizer (filter pushing etc., Sect. IV-G).
    optimize: bool = True
    #: Reorder BGP patterns by location-table frequency statistics.
    reorder_joins: bool = True
    #: Allow (?s, ?p, ?o) broadcasts over all storage nodes.
    allow_broadcast: bool = True
    #: Seconds to wait for a one-way delivery before declaring the chain
    #: broken and falling back to the BASIC strategy.
    delivery_timeout: float = 5.0
    #: Objective mixture for the ADAPTIVE strategy: 0.0 = minimize total
    #: transmission, 1.0 = minimize response time (Sect. V's conflicting
    #: optimization criteria, scalarized).
    time_weight: float = 0.5
    #: Prior on cross-provider duplication for the adaptive cost model
    #: (expected |union| / Σ|local results|; 1.0 = no duplication).
    dedup_prior: float = 1.0
    #: Physical-plan mode. ``legacy`` executes the compiled operator tree
    #: exactly as the per-step strategy flags above dictate (bit-identical
    #: to previous releases); ``cost`` lets the frequency-driven planner
    #: (:mod:`repro.query.cost`) pre-fetch leaf statistics and pin join
    #: order, walk mode, chain strategies, and combine sites at plan time.
    plan_mode: str = "legacy"

    # --- transmission-minimizing shipping optimizations ------------------
    # Each technique is independently toggleable so benchmarks can
    # attribute savings; all default off, keeping the paper-faithful wire
    # behaviour byte-identical to previous releases.

    #: Semijoin pre-filtering: before a join operand ships, the receiver
    #: sends a digest of its join-key values (exact set or Bloom filter)
    #: and the sender drops rows that cannot join.
    semijoin: bool = False
    #: Projection pushdown: prune variables that no downstream operator,
    #: filter, or output needs before every ship.
    projection_pushdown: bool = False
    #: Dictionary-delta wire encoding (:class:`repro.net.wire.SolutionBatch`)
    #: for every shipped solution set.
    dictionary_encoding: bool = False
    #: Digest mode switch: at most this many distinct join keys ship as an
    #: exact key set; above it, a counting-free Bloom filter.
    semijoin_exact_threshold: int = 64
    #: Bloom digest density (bits per key).
    semijoin_bloom_bits: int = 10
    #: Skip the digest round-trip when the candidate operand has fewer
    #: rows than this (the digest would cost more than it saves).
    semijoin_min_rows: int = 4
    #: Per-query LRU cache of index lookups (0 disables). Invalidated on
    #: membership churn; hit/miss counts land in the ExecutionReport.
    lookup_cache_size: int = 128

    # --- fault tolerance (PR 6) ------------------------------------------
    # All default off/None: a no-fault run with the defaults is
    # byte-identical to previous releases (no extra payload keys, no extra
    # messages). ``retries``/``failover`` only change behaviour when an
    # RPC actually times out.

    #: Extra attempts per RPC after a timeout (0 = classic fail-fast).
    retries: int = 0
    #: Backoff before the first retry, in seconds.
    backoff: float = 0.05
    #: Multiplier applied to the backoff for each further retry.
    backoff_multiplier: float = 2.0
    #: Upper bound on any single backoff interval.
    backoff_cap: float = 2.0
    #: Jitter as a +/- fraction of the raw backoff (deterministic, seeded).
    retry_jitter: float = 0.5
    #: Seed for the backoff jitter schedule.
    retry_seed: int = 0
    #: Cap on each attempt's RPC timeout (None = the call's own timeout).
    #: Retrying is pointless unless this undercuts the query's patience.
    per_attempt_timeout: Optional[float] = None
    #: Re-route around dead index nodes: re-resolve a timed-out owner via
    #: its successor list and read/dispatch at the promoted replica.
    #: Requires ``replication_factor >= 2`` to return correct answers.
    failover: bool = False
    #: Hedged duplicate lookups: None = off; 0.0 = auto (p95 of observed
    #: lookup RTTs); > 0 = fixed delay in seconds before the hedge fires.
    hedge_delay: Optional[float] = None
    #: Wall-clock budget for the whole query, in simulated seconds; every
    #: RPC (and retry schedule) is clamped to the remaining budget, which
    #: travels with dispatched sub-queries. None = unbounded.
    query_deadline: Optional[float] = None

    # --- chaos defense (PR 10) -------------------------------------------
    # Off by default: without ``breaker``/``partial_results`` no health
    # ledger exists, no payload key changes, and every new counter stays
    # zero — the golden grid is byte-identical.

    #: Per-peer health ledger (EWMA latency + consecutive failures) and
    #: closed/open/half-open circuit breaker: open circuits short-circuit
    #: call attempts instantly and failover dispatch routes around them
    #: before dialing, so a browned-out owner stops burning the query
    #: deadline one timeout at a time.
    breaker: bool = False
    #: Consecutive RPC timeouts that trip a peer's breaker open.
    breaker_failures: int = 3
    #: Seconds an open breaker waits before admitting one half-open probe.
    breaker_reset: float = 1.0
    #: EWMA round-trip latency (seconds) above which a *responding* peer
    #: is treated as browned out and its breaker tripped (the gray-failure
    #: trigger). None disables latency tripping.
    breaker_latency: Optional[float] = None
    #: Degrade instead of fail: when a sub-pattern's owner and replicas
    #: are all unreachable, its contribution becomes the empty set (a
    #: guaranteed *subset* of the true answer — never wrong or extra
    #: rows) and the result is flagged incomplete on the report and the
    #: physical plan, rather than the whole query raising.
    partial_results: bool = False

    # --- cross-query result cache (PR 9) ---------------------------------
    # Off by default: a run without ``result_cache`` is byte-identical to
    # previous releases (no extra payload keys, no extra messages).

    #: Enable the per-site semantic result cache (:mod:`repro.cache`):
    #: index nodes memoize primitive-pattern results and combine sites
    #: memoize whole BGP sub-results, invalidated delta-exactly via the
    #: network's ``data_epochs`` ledger + ``membership_epoch``.
    result_cache: bool = False
    #: Per-node residency budget for cached solution data, in bytes.
    cache_bytes: int = 262144
    #: Admission gate: how many times a key must be asked for before its
    #: result is materialized (1 = admit on first miss).
    cache_admit_threshold: int = 2

    def __post_init__(self) -> None:
        if self.plan_mode not in ("legacy", "cost"):
            raise ValueError(
                f"plan_mode must be 'legacy' or 'cost', not {self.plan_mode!r}"
            )

    def retry_policy(self) -> Optional[RetryPolicy]:
        """The transport-level policy these options describe (None when
        retries are disabled)."""
        if self.retries <= 0:
            return None
        return RetryPolicy(
            attempts=self.retries + 1,
            base_backoff=self.backoff,
            multiplier=self.backoff_multiplier,
            max_backoff=self.backoff_cap,
            jitter=self.retry_jitter,
            seed=self.retry_seed,
            per_attempt_timeout=self.per_attempt_timeout,
        )
