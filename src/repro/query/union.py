"""Union graph patterns (Sect. IV-F).

⟦P1 UNION P2⟧ = ⟦P1⟧ ∪ ⟦P2⟧: the branches "can be carried out in
parallel"; the union operation "can occur at any of the two nodes that
collect the solution mappings".

The optimization of the paper's example (S1 = {D1, D3}, S2 = {D2, D3}:
both chains end at D3 and the union is free) is implemented here: when
both branches bottom out in located triple patterns, their provider sets
are inspected *before* execution and, if they overlap, both branches'
chains are routed to end at a common storage node. Otherwise the branches
run at their home sites and the smaller result moves (move-small).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sparql.algebra import Algebra, BGP, Filter, Union
from .join_site import combine_handles
from .plan import PatternInfo, choose_shared_site

__all__ = ["exec_union"]


def _leaf_pattern(node: Algebra) -> Optional[Tuple]:
    """(pattern, condition) if *node* is a single-pattern BGP, possibly
    wrapped in a pushed-down Filter; else None."""
    if isinstance(node, BGP) and len(node.patterns) == 1:
        return node.patterns[0], None
    if (
        isinstance(node, Filter)
        and isinstance(node.pattern, BGP)
        and len(node.pattern.patterns) == 1
    ):
        return node.pattern.patterns[0], node.condition
    return None


def exec_union(ctx, node: Union):
    """Generator: execute Union(P1, P2) → ResultHandle."""
    span = ctx.tracer.span("union")
    try:
        return (yield from _exec_union(ctx, node))
    finally:
        span.close()


def _exec_union(ctx, node: Union):
    from .executor import exec_subtrees_parallel
    from .primitive import exec_pattern_to_site

    left_leaf = _leaf_pattern(node.left)
    right_leaf = _leaf_pattern(node.right)
    if left_leaf is not None and right_leaf is not None:
        # Plan the collection site from the location tables (Sect. IV-F's
        # D3 example): overlap -> both chains end at the shared node.
        infos: List[PatternInfo] = yield from _locate_pair(ctx, left_leaf, right_leaf)
        if all(info.owner is not None for info in infos):
            site = choose_shared_site(infos)
            if site is not None:
                ctx.report.merge_note(f"union site {site}")
                processes = [
                    ctx.sim.process(exec_pattern_to_site(ctx, info, site))
                    for info in infos
                ]
                left, right = yield ctx.sim.all_of(processes)
                handle = yield from combine_handles(
                    ctx, "union", left, right, site=site
                )
                return handle

    left, right = yield from exec_subtrees_parallel(ctx, [node.left, node.right])
    if left.site == right.site:
        handle = yield from combine_handles(ctx, "union", left, right, site=left.site)
        return handle
    handle = yield from combine_handles(ctx, "union", left, right)
    return handle


def _locate_pair(ctx, left_leaf, right_leaf):
    processes = [
        ctx.sim.process(ctx.locate(pattern, condition))
        for pattern, condition in (left_leaf, right_leaf)
    ]
    infos = yield ctx.sim.all_of(processes)
    return list(infos)
