"""Union graph patterns (Sect. IV-F).

⟦P1 UNION P2⟧ = ⟦P1⟧ ∪ ⟦P2⟧: the branches "can be carried out in
parallel"; the union operation "can occur at any of the two nodes that
collect the solution mappings".

The optimization of the paper's example (S1 = {D1, D3}, S2 = {D2, D3}:
both chains end at D3 and the union is free) is implemented here: when
both branches bottom out in located triple patterns, their provider sets
are inspected *before* execution and, if they overlap, both branches'
chains are routed to end at a common storage node. Otherwise the branches
run at their home sites and the smaller result moves (move-small).
"""

from __future__ import annotations

from typing import List, Optional

from ..net.transport import RpcTimeout
from .join_site import combine_handles
from .physical import ChainShip, PhysOp, UnionOp, note_lookup
from .plan import PatternInfo, choose_shared_site

__all__ = ["exec_union"]


def _leaf(node: PhysOp) -> Optional[ChainShip]:
    """The operand itself when it is a primitive leaf (a single-pattern
    BGP, possibly carrying a pushed-down condition); else None."""
    return node if isinstance(node, ChainShip) else None


def exec_union(ctx, node: UnionOp):
    """Generator: execute UnionOp(P1, P2) → ResultHandle."""
    span = ctx.tracer.span("union")
    try:
        return (yield from _exec_union(ctx, node))
    finally:
        span.close()


def _exec_union(ctx, node: UnionOp):
    from .executor import exec_subtrees_parallel
    from .primitive import exec_pattern_to_site

    left_leaf = _leaf(node.left)
    right_leaf = _leaf(node.right)
    if left_leaf is not None and right_leaf is not None:
        # Plan the collection site from the location tables (Sect. IV-F's
        # D3 example): overlap -> both chains end at the shared node.
        try:
            leaves = [left_leaf, right_leaf]
            infos: List[PatternInfo] = yield from _locate_pair(ctx, leaves)
            if all(info.owner is not None for info in infos):
                site = choose_shared_site(infos)
                if site is not None:
                    ctx.report.merge_note(f"union site {site}")
                    processes = [
                        ctx.sim.process(
                            exec_pattern_to_site(ctx, info, site, leaf=leaf))
                        for leaf, info in zip(leaves, infos)
                    ]
                    left, right = yield ctx.sim.all_of(processes)
                    for leaf, h in zip(leaves, (left, right)):
                        leaf.placement = h.site
                        leaf.actual_rows = h.count
                    handle = yield from combine_handles(
                        ctx, "union", left, right, site=site, edges=node.edges
                    )
                    return handle
        except RpcTimeout:
            # partial_results: the shared-site shortcut hit a dead node;
            # fall through to the general path, whose per-branch guards
            # degrade an unreachable branch instead of failing (union is
            # monotone, so surviving branches are a safe subset).
            if not ctx.options.partial_results:
                raise
            ctx.report.merge_note("union shared-site path degraded")

    left, right = yield from exec_subtrees_parallel(
        ctx, [node.left, node.right])
    if left.site == right.site:
        handle = yield from combine_handles(ctx, "union", left, right,
                                            site=left.site, edges=node.edges)
        return handle
    handle = yield from combine_handles(ctx, "union", left, right,
                                        edges=node.edges)
    return handle


def _locate_pair(ctx, leaves: List[ChainShip]):
    """Generator: rows for both union leaves — prefetched in cost mode,
    a parallel consultation (exactly the legacy traffic) otherwise."""
    pending = [leaf for leaf in leaves if leaf.lookup.info is None]
    located = {}
    if pending:
        processes = [
            ctx.sim.process(ctx.locate(leaf.lookup.pattern,
                                       leaf.lookup.condition))
            for leaf in pending
        ]
        infos = yield ctx.sim.all_of(processes)
        for leaf, info in zip(pending, infos):
            located[id(leaf)] = info
            note_lookup(leaf.lookup, info)
    return [located.get(id(leaf), leaf.lookup.info) for leaf in leaves]
