"""RDF data model: terms, triples, graphs, namespaces, N-Triples I/O.

This is substrate S1 of DESIGN.md — the local data layer every storage
node of the hybrid overlay keeps for its own triples.
"""

from .terms import (
    IRI,
    BlankNode,
    Literal,
    RDFTerm,
    Term,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from .triple import PatternShape, Triple, TriplePattern
from .graph import Graph
from .namespaces import COMMON_PREFIXES, FOAF, NS, Namespace, RDF, RDFS
from .ntriples import NTriplesError, parse_ntriples, serialize_ntriples

__all__ = [
    "IRI",
    "BlankNode",
    "Literal",
    "Variable",
    "RDFTerm",
    "Term",
    "Triple",
    "TriplePattern",
    "PatternShape",
    "Graph",
    "Namespace",
    "FOAF",
    "NS",
    "RDF",
    "RDFS",
    "COMMON_PREFIXES",
    "parse_ntriples",
    "serialize_ntriples",
    "NTriplesError",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_STRING",
    "XSD_BOOLEAN",
]
