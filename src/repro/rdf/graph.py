"""An indexed, in-memory RDF graph store.

Each storage node of the hybrid overlay "stores locally and manipulates
data items of its own" (paper, Sect. I); this class is that local
repository. It maintains three nested hash indexes (SPO, POS, OSP) so that
a triple pattern of *any* of the eight shapes of Sect. IV-C is answered by
direct index walks rather than a scan.

The index layout follows the classic scheme of Hexastore-style stores
reduced to three orderings, which suffice because each ordering serves the
lookups whose bound prefix matches it:

========  =======================
index     serves bound positions
========  =======================
SPO       s / s,p / s,p,o
POS       p / p,o
OSP       o / o,s
========  =======================
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set

from .terms import RDFTerm, Variable, is_concrete
from .triple import Triple, TriplePattern

__all__ = ["Graph"]


class Graph:
    """A set of RDF triples with pattern-match access paths.

    The graph behaves as a set: duplicate adds are idempotent and size is
    the number of distinct triples.
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size")

    def __init__(self, triples: Optional[Iterable[Triple]] = None) -> None:
        # Plain nested dicts, not defaultdicts: membership probes must
        # never materialize empty buckets (a missed defaultdict lookup
        # would insert one), and the insert path below is explicit.
        self._spo: Dict[RDFTerm, Dict[RDFTerm, Set[RDFTerm]]] = {}
        self._pos: Dict[RDFTerm, Dict[RDFTerm, Set[RDFTerm]]] = {}
        self._osp: Dict[RDFTerm, Dict[RDFTerm, Set[RDFTerm]]] = {}
        self._size = 0
        if triples is not None:
            for t in triples:
                self.add(t)

    # ------------------------------------------------------------------ set

    def add(self, triple: Triple) -> bool:
        """Insert *triple*; returns True if it was not already present."""
        if not isinstance(triple, Triple):
            raise TypeError(f"expected Triple, got {type(triple).__name__}")
        s, p, o = triple.s, triple.p, triple.o
        po = self._spo.get(s)
        if po is None:
            po = self._spo[s] = {}
            objects = po[p] = set()
        else:
            objects = po.get(p)
            if objects is None:
                objects = po[p] = set()
            elif o in objects:
                return False
        objects.add(o)
        self._insert(self._pos, p, o, s)
        self._insert(self._osp, o, s, p)
        self._size += 1
        return True

    @staticmethod
    def _insert(index, k1, k2, value) -> None:
        inner = index.get(k1)
        if inner is None:
            index[k1] = {k2: {value}}
            return
        values = inner.get(k2)
        if values is None:
            inner[k2] = {value}
        else:
            values.add(value)

    def discard(self, triple: Triple) -> bool:
        """Remove *triple* if present; returns True if it was removed."""
        s, p, o = triple.s, triple.p, triple.o
        po = self._spo.get(s)
        objects = po.get(p) if po is not None else None
        if not objects or o not in objects:
            return False
        objects.discard(o)
        # The index invariant guarantees the mirrored buckets exist, so
        # direct indexing here cannot materialize anything.
        self._pos[p][o].discard(s)
        self._osp[o][s].discard(p)
        self._prune(self._spo, s, p)
        self._prune(self._pos, p, o)
        self._prune(self._osp, o, s)
        self._size -= 1
        return True

    @staticmethod
    def _prune(index, k1, k2) -> None:
        inner = index.get(k1)
        if inner is not None and not inner.get(k2):
            inner.pop(k2, None)
            if not inner:
                index.pop(k1, None)

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted.

        Validates the whole batch up front (like :meth:`add` does for one
        triple), so a non-Triple element raises TypeError *before* any
        mutation — never leaving the graph partially updated.
        """
        batch = list(triples)
        for t in batch:
            if not isinstance(t, Triple):
                raise TypeError(f"expected Triple, got {type(t).__name__}")
        return sum(1 for t in batch if self.add(t))

    def __contains__(self, triple: Triple) -> bool:
        return triple.o in self._spo.get(triple.s, {}).get(triple.p, ())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        for s, po in self._spo.items():
            for p, objs in po.items():
                for o in objs:
                    yield Triple(s, p, o)

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------ matching

    def triples(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Yield every triple structurally matching *pattern*.

        Repeated variables in the pattern (e.g. ``?x <p> ?x``) are honoured:
        positions sharing a variable must hold equal terms.
        """
        s = pattern.s if is_concrete(pattern.s) else None
        p = pattern.p if is_concrete(pattern.p) else None
        o = pattern.o if is_concrete(pattern.o) else None

        candidates = self._walk(s, p, o)

        # Enforce repeated-variable equality, if any.
        shared = self._shared_positions(pattern)
        if shared:
            for t in candidates:
                vals = (t.s, t.p, t.o)
                if all(vals[i] == vals[j] for i, j in shared):
                    yield t
        else:
            yield from candidates

    @staticmethod
    def _shared_positions(pattern: TriplePattern) -> list[tuple[int, int]]:
        pos: Dict[Variable, int] = {}
        shared: list[tuple[int, int]] = []
        for i, term in enumerate(pattern):
            if isinstance(term, Variable):
                if term in pos:
                    shared.append((pos[term], i))
                else:
                    pos[term] = i
        return shared

    def _walk(self, s, p, o) -> Iterator[Triple]:
        if s is not None:
            po = self._spo.get(s)
            if po is None:
                return
            if p is not None:
                objs = po.get(p)
                if objs is None:
                    return
                if o is not None:
                    if o in objs:
                        yield Triple(s, p, o)
                else:
                    for obj in objs:
                        yield Triple(s, p, obj)
            elif o is not None:
                preds = self._osp.get(o, {}).get(s)
                if preds:
                    for pred in preds:
                        yield Triple(s, pred, o)
            else:
                for pred, objs in po.items():
                    for obj in objs:
                        yield Triple(s, pred, obj)
        elif p is not None:
            os_ = self._pos.get(p)
            if os_ is None:
                return
            if o is not None:
                for subj in os_.get(o, ()):
                    yield Triple(subj, p, o)
            else:
                for obj, subjects in os_.items():
                    for subj in subjects:
                        yield Triple(subj, p, obj)
        elif o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, o)
        else:
            yield from iter(self)

    def count(self, pattern: TriplePattern) -> int:
        """Number of triples matching *pattern* (no materialization)."""
        return sum(1 for _ in self.triples(pattern))

    # --------------------------------------------------------------- views

    def subjects(self) -> Set[RDFTerm]:
        return set(self._spo.keys())

    def predicates(self) -> Set[RDFTerm]:
        return set(self._pos.keys())

    def objects(self) -> Set[RDFTerm]:
        return set(self._osp.keys())

    def copy(self) -> "Graph":
        return Graph(iter(self))

    def __or__(self, other: "Graph") -> "Graph":
        merged = self.copy()
        merged.update(iter(other))
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._size == other._size and all(t in other for t in self)

    # Graphs are mutable containers with value-based equality; an identity
    # hash would silently break dict/set membership for equal graphs, so
    # graphs are explicitly unhashable (like list and dict).
    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(<{self._size} triples>)"
