"""Namespace helpers and the vocabularies used by the paper's examples.

The paper's running examples (Figs. 4-9) draw on the FOAF vocabulary plus
an ``ns:`` example namespace providing ``ns:knowsNothingAbout``. These are
provided ready-made so that tests, examples, and workload generators all
spell terms identically.
"""

from __future__ import annotations

from typing import Dict

from .terms import IRI

__all__ = ["Namespace", "FOAF", "NS", "RDF", "RDFS", "XSD_NS", "COMMON_PREFIXES"]


class Namespace:
    """A factory of IRIs sharing a common prefix.

    >>> foaf = Namespace("http://xmlns.com/foaf/0.1/")
    >>> foaf.name
    IRI(value='http://xmlns.com/foaf/0.1/name')
    >>> foaf["knows"]
    IRI(value='http://xmlns.com/foaf/0.1/knows')
    """

    def __init__(self, base: str) -> None:
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local: str) -> IRI:
        return IRI(self._base + local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def local_name(self, iri: IRI) -> str:
        if iri not in self:
            raise ValueError(f"{iri} is not in namespace {self._base}")
        return iri.value[len(self._base):]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Namespace({self._base!r})"


#: The FOAF vocabulary used throughout the paper's example queries.
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
#: The paper's example namespace (PREFIX ns: <http://example.org/ns#>).
NS = Namespace("http://example.org/ns#")
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")

#: Prefix map pre-loaded into the SPARQL parser for convenience in tests
#: and examples; real queries may of course re-declare them.
COMMON_PREFIXES: Dict[str, str] = {
    "foaf": FOAF.base,
    "ns": NS.base,
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "xsd": XSD_NS.base,
}
