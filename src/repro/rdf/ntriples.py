"""N-Triples parsing and serialization.

Storage nodes exchange RDF data with applications (and, in the
multi-process demo, with each other) in the line-oriented N-Triples
format. The implementation covers the full RDF 1.0 N-Triples grammar that
our term model supports: IRIs, blank nodes, and plain / language-tagged /
datatyped literals with the standard string escapes.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List

from .terms import IRI, BlankNode, Literal, RDFTerm
from .triple import Triple

__all__ = ["parse_ntriples", "serialize_ntriples", "NTriplesError"]


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input, with a line number."""

    def __init__(self, message: str, lineno: int) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_IRI_RE = re.compile(r"<([^<>\"{}|^`\\\s]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z][A-Za-z0-9_.-]*)")
_LITERAL_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
_LANG_RE = re.compile(r"@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)")

_UNESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}

_ESCAPE_RE = re.compile(r"\\(?:[ntr\"\\]|u[0-9A-Fa-f]{4}|U[0-9A-Fa-f]{8})")


def _unescape(raw: str) -> str:
    def sub(m: re.Match[str]) -> str:
        tok = m.group(0)
        if tok in _UNESCAPES:
            return _UNESCAPES[tok]
        return chr(int(tok[2:], 16))

    return _ESCAPE_RE.sub(sub, raw)


class _LineParser:
    """Cursor-based parser for a single N-Triples statement line."""

    def __init__(self, line: str, lineno: int) -> None:
        self.line = line
        self.pos = 0
        self.lineno = lineno

    def error(self, message: str) -> NTriplesError:
        return NTriplesError(f"{message} (at column {self.pos})", self.lineno)

    def skip_ws(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def term(self) -> RDFTerm:
        self.skip_ws()
        if self.pos >= len(self.line):
            raise self.error("unexpected end of line")
        ch = self.line[self.pos]
        if ch == "<":
            m = _IRI_RE.match(self.line, self.pos)
            if not m:
                raise self.error("malformed IRI")
            self.pos = m.end()
            return IRI(m.group(1))
        if ch == "_":
            m = _BNODE_RE.match(self.line, self.pos)
            if not m:
                raise self.error("malformed blank node label")
            self.pos = m.end()
            return BlankNode(m.group(1))
        if ch == '"':
            m = _LITERAL_RE.match(self.line, self.pos)
            if not m:
                raise self.error("malformed literal")
            self.pos = m.end()
            lexical = _unescape(m.group(1))
            if self.pos < len(self.line) and self.line[self.pos] == "@":
                lm = _LANG_RE.match(self.line, self.pos)
                if not lm:
                    raise self.error("malformed language tag")
                self.pos = lm.end()
                return Literal(lexical, language=lm.group(1))
            if self.line.startswith("^^", self.pos):
                self.pos += 2
                dm = _IRI_RE.match(self.line, self.pos)
                if not dm:
                    raise self.error("malformed datatype IRI")
                self.pos = dm.end()
                return Literal(lexical, datatype=IRI(dm.group(1)))
            return Literal(lexical)
        raise self.error(f"unexpected character {ch!r}")

    def dot(self) -> None:
        self.skip_ws()
        if self.pos >= len(self.line) or self.line[self.pos] != ".":
            raise self.error("expected terminating '.'")
        self.pos += 1
        self.skip_ws()
        if self.pos < len(self.line) and not self.line.startswith("#", self.pos):
            raise self.error("trailing content after '.'")


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Parse N-Triples *text*, yielding triples in document order.

    Blank lines and ``#`` comment lines are skipped. Malformed lines raise
    :class:`NTriplesError` carrying the 1-based line number.
    """
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parser = _LineParser(line, lineno)
        s = parser.term()
        p = parser.term()
        o = parser.term()
        parser.dot()
        try:
            yield Triple(s, p, o)
        except TypeError as exc:
            raise NTriplesError(str(exc), lineno) from exc


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize *triples* to canonical N-Triples (one statement per line)."""
    lines: List[str] = [t.n3() for t in triples]
    return "\n".join(lines) + ("\n" if lines else "")
