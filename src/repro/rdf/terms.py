"""RDF term model.

The ad-hoc data sharing system of the paper manipulates RDF triples whose
components are *RDF terms*: IRIs, literals, and blank nodes (Sect. IV-A of
the paper, following the RDF abstract syntax [Klyne & Carroll 2004]).
SPARQL additionally introduces *variables*, which may occupy any position
of a triple pattern.

Terms are immutable, hashable value objects so they can be used freely as
dictionary keys in graph indexes, solution mappings, and the distributed
location tables.

Every term class is **interned**: constructing the same term twice yields
the same object, so equality is an identity check, the hash is computed
once per distinct term, and the ``n3()`` serialization is cached on the
instance. Term construction, hashing, and comparison sit on the hot path
of graph indexing, solution-mapping joins, and wire encoding — the E15
load harness executes them millions of times per run. Pickling routes
through the constructor (``__reduce__``), so unpickled terms re-intern
and the identity invariant survives snapshot/WAL round-trips.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

__all__ = [
    "Term",
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "RDFTerm",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_STRING",
    "XSD_BOOLEAN",
]

XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_STRING = XSD + "string"
XSD_BOOLEAN = XSD + "boolean"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE})

_IRI_FORBIDDEN = frozenset(' <>"{}|^`\\')

_set = object.__setattr__


class _Interned:
    """Shared immutability plumbing for the interned term classes."""

    __slots__ = ()

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.n3()  # type: ignore[attr-defined]


class IRI(_Interned):
    """An Internationalized Resource Identifier (RFC 3987 subset).

    The paper treats IRIs as opaque strings that are hashed to place index
    entries on the Chord ring; no resolution ever happens.
    """

    __slots__ = ("value", "_hash", "_n3", "_size")

    _intern: Dict[str, "IRI"] = {}

    def __new__(cls, value: str) -> "IRI":
        self = cls._intern.get(value)
        if self is not None:
            return self
        if not value:
            raise ValueError("IRI value must be a non-empty string")
        if not _IRI_FORBIDDEN.isdisjoint(value):
            raise ValueError(f"IRI contains forbidden character: {value!r}")
        self = object.__new__(cls)
        _set(self, "value", value)
        _set(self, "_hash", hash(("IRI", value)))
        _set(self, "_n3", None)
        _set(self, "_size", None)
        cls._intern[value] = self
        return self

    def __eq__(self, other: object) -> bool:
        # Interned: value-equal implies identical.
        return self is other or (NotImplemented
                                 if not isinstance(other, IRI) else False)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (IRI, (self.value,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IRI(value={self.value!r})"

    def n3(self) -> str:
        """Serialize in N-Triples / SPARQL surface syntax."""
        cached = self._n3
        if cached is None:
            cached = f"<{self.value}>"
            _set(self, "_n3", cached)
        return cached


class Literal(_Interned):
    """An RDF literal: lexical form plus optional language tag or datatype.

    A literal may carry *either* a language tag *or* a datatype IRI, never
    both (RDF 1.0 abstract syntax, which the paper builds on).
    """

    __slots__ = ("lexical", "language", "datatype", "_hash", "_n3", "_size")

    _intern: Dict[Tuple[str, Optional[str], Optional[IRI]], "Literal"] = {}

    def __new__(
        cls,
        lexical: str,
        language: Optional[str] = None,
        datatype: Optional[IRI] = None,
    ) -> "Literal":
        key = (lexical, language, datatype)
        self = cls._intern.get(key)
        if self is not None:
            return self
        if language is not None and datatype is not None:
            raise ValueError("literal cannot have both language tag and datatype")
        if language is not None and not language:
            raise ValueError("language tag must be non-empty when present")
        self = object.__new__(cls)
        _set(self, "lexical", lexical)
        _set(self, "language", language)
        _set(self, "datatype", datatype)
        _set(self, "_hash", hash(("Literal", key)))
        _set(self, "_n3", None)
        _set(self, "_size", None)
        cls._intern[key] = self
        return self

    def __eq__(self, other: object) -> bool:
        return self is other or (NotImplemented
                                 if not isinstance(other, Literal) else False)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Literal, (self.lexical, self.language, self.datatype))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Literal(lexical={self.lexical!r}, "
                f"language={self.language!r}, datatype={self.datatype!r})")

    @property
    def is_numeric(self) -> bool:
        return self.datatype is not None and self.datatype.value in _NUMERIC_DATATYPES

    def to_python(self) -> Union[str, int, float, bool]:
        """Map to the closest Python value (used by FILTER evaluation)."""
        if self.datatype is None:
            return self.lexical
        dt = self.datatype.value
        if dt == XSD_INTEGER:
            return int(self.lexical)
        if dt in (XSD_DECIMAL, XSD_DOUBLE):
            return float(self.lexical)
        if dt == XSD_BOOLEAN:
            return self.lexical in ("true", "1")
        return self.lexical

    def n3(self) -> str:
        cached = self._n3
        if cached is not None:
            return cached
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        # Remaining C0/C1 controls (incl. form feed and line separators that
        # str.splitlines would break on) go out as \uXXXX escapes.
        if not escaped.isprintable():
            escaped = "".join(
                c if c.isprintable() or c == " "
                else (f"\\u{ord(c):04X}" if ord(c) <= 0xFFFF else f"\\U{ord(c):08X}")
                for c in escaped
            )
        if self.language:
            cached = f'"{escaped}"@{self.language}'
        elif self.datatype:
            cached = f'"{escaped}"^^{self.datatype.n3()}'
        else:
            cached = f'"{escaped}"'
        _set(self, "_n3", cached)
        return cached


class BlankNode(_Interned):
    """A blank node: a unique node with no IRI and an unbound value.

    Blank node labels are scoped to the document / storage node that minted
    them; the workload generators take care to mint distinct labels per
    provider so that the union dataset semantics of the paper stay sound.
    """

    __slots__ = ("label", "_hash", "_n3", "_size")

    _intern: Dict[str, "BlankNode"] = {}

    def __new__(cls, label: str) -> "BlankNode":
        self = cls._intern.get(label)
        if self is not None:
            return self
        if not label:
            raise ValueError("blank node label must be non-empty")
        self = object.__new__(cls)
        _set(self, "label", label)
        _set(self, "_hash", hash(("BlankNode", label)))
        _set(self, "_n3", None)
        _set(self, "_size", None)
        cls._intern[label] = self
        return self

    def __eq__(self, other: object) -> bool:
        return self is other or (NotImplemented
                                 if not isinstance(other, BlankNode) else False)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (BlankNode, (self.label,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlankNode(label={self.label!r})"

    def n3(self) -> str:
        cached = self._n3
        if cached is None:
            cached = f"_:{self.label}"
            _set(self, "_n3", cached)
        return cached


class Variable(_Interned):
    """A SPARQL query variable (``?name``).

    Variables are *not* RDF terms; they may appear in triple patterns but
    never in data triples. ``Graph.add`` enforces that.
    """

    __slots__ = ("name", "_hash", "_n3", "_size")

    _intern: Dict[str, "Variable"] = {}

    def __new__(cls, name: str) -> "Variable":
        self = cls._intern.get(name)
        if self is not None:
            return self
        if not name:
            raise ValueError("variable name must be non-empty")
        if name.startswith(("?", "$")):
            raise ValueError("variable name must not include the ? / $ sigil")
        self = object.__new__(cls)
        _set(self, "name", name)
        _set(self, "_hash", hash(("Variable", name)))
        _set(self, "_n3", None)
        _set(self, "_size", None)
        cls._intern[name] = self
        return self

    def __eq__(self, other: object) -> bool:
        return self is other or (NotImplemented
                                 if not isinstance(other, Variable) else False)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Variable, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable(name={self.name!r})"

    def n3(self) -> str:
        cached = self._n3
        if cached is None:
            cached = f"?{self.name}"
            _set(self, "_n3", cached)
        return cached


#: A concrete RDF term (anything that may appear in a data triple).
RDFTerm = Union[IRI, Literal, BlankNode]
#: Anything that may appear in a triple *pattern*.
Term = Union[IRI, Literal, BlankNode, Variable]


def is_concrete(term: Term) -> bool:
    """True when *term* may legally appear in a data triple."""
    return type(term) is not Variable
