"""RDF term model.

The ad-hoc data sharing system of the paper manipulates RDF triples whose
components are *RDF terms*: IRIs, literals, and blank nodes (Sect. IV-A of
the paper, following the RDF abstract syntax [Klyne & Carroll 2004]).
SPARQL additionally introduces *variables*, which may occupy any position
of a triple pattern.

Terms are immutable, hashable value objects so they can be used freely as
dictionary keys in graph indexes, solution mappings, and the distributed
location tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "Term",
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "RDFTerm",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_STRING",
    "XSD_BOOLEAN",
]

XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_STRING = XSD + "string"
XSD_BOOLEAN = XSD + "boolean"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE})


@dataclass(frozen=True, slots=True)
class IRI:
    """An Internationalized Resource Identifier (RFC 3987 subset).

    The paper treats IRIs as opaque strings that are hashed to place index
    entries on the Chord ring; no resolution ever happens.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("IRI value must be a non-empty string")
        if any(c in self.value for c in " <>\"{}|^`\\"):
            raise ValueError(f"IRI contains forbidden character: {self.value!r}")

    def n3(self) -> str:
        """Serialize in N-Triples / SPARQL surface syntax."""
        return f"<{self.value}>"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.n3()


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal: lexical form plus optional language tag or datatype.

    A literal may carry *either* a language tag *or* a datatype IRI, never
    both (RDF 1.0 abstract syntax, which the paper builds on).
    """

    lexical: str
    language: Optional[str] = None
    datatype: Optional[IRI] = None

    def __post_init__(self) -> None:
        if self.language is not None and self.datatype is not None:
            raise ValueError("literal cannot have both language tag and datatype")
        if self.language is not None and not self.language:
            raise ValueError("language tag must be non-empty when present")

    @property
    def is_numeric(self) -> bool:
        return self.datatype is not None and self.datatype.value in _NUMERIC_DATATYPES

    def to_python(self) -> Union[str, int, float, bool]:
        """Map to the closest Python value (used by FILTER evaluation)."""
        if self.datatype is None:
            return self.lexical
        dt = self.datatype.value
        if dt == XSD_INTEGER:
            return int(self.lexical)
        if dt in (XSD_DECIMAL, XSD_DOUBLE):
            return float(self.lexical)
        if dt == XSD_BOOLEAN:
            return self.lexical in ("true", "1")
        return self.lexical

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        # Remaining C0/C1 controls (incl. form feed and line separators that
        # str.splitlines would break on) go out as \uXXXX escapes.
        escaped = "".join(
            c if c.isprintable() or c == " "
            else (f"\\u{ord(c):04X}" if ord(c) <= 0xFFFF else f"\\U{ord(c):08X}")
            for c in escaped
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.n3()


@dataclass(frozen=True, slots=True)
class BlankNode:
    """A blank node: a unique node with no IRI and an unbound value.

    Blank node labels are scoped to the document / storage node that minted
    them; the workload generators take care to mint distinct labels per
    provider so that the union dataset semantics of the paper stay sound.
    """

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("blank node label must be non-empty")

    def n3(self) -> str:
        return f"_:{self.label}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.n3()


@dataclass(frozen=True, slots=True)
class Variable:
    """A SPARQL query variable (``?name``).

    Variables are *not* RDF terms; they may appear in triple patterns but
    never in data triples. ``Graph.add`` enforces that.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        if self.name.startswith(("?", "$")):
            raise ValueError("variable name must not include the ? / $ sigil")

    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.n3()


#: A concrete RDF term (anything that may appear in a data triple).
RDFTerm = Union[IRI, Literal, BlankNode]
#: Anything that may appear in a triple *pattern*.
Term = Union[IRI, Literal, BlankNode, Variable]


def is_concrete(term: Term) -> bool:
    """True when *term* may legally appear in a data triple."""
    return not isinstance(term, Variable)
