"""RDF triples and triple patterns.

A *triple* is a (subject, predicate, object) statement over concrete RDF
terms. A *triple pattern* "resembles an RDF triple except that its subject,
predicate and/or object may be a variable" (paper, footnote 4). The eight
possible binding shapes of a pattern (Sect. IV-C) are enumerated by
:class:`PatternShape`, which drives index-key selection in the distributed
planner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Tuple

from .terms import IRI, Literal, RDFTerm, Term, Variable, is_concrete

__all__ = ["Triple", "TriplePattern", "PatternShape"]


class PatternShape(enum.Enum):
    """The eight triple-pattern shapes of Sect. IV-C.

    The three letters name subject/predicate/object; an upper-case letter
    means *bound* (a concrete term), a lower-case letter means a variable.
    ``SPo`` is thus (s_i, p_i, ?o).
    """

    spo = "(?s, ?p, ?o)"
    spO = "(?s, ?p, o)"
    sPo = "(?s, p, ?o)"
    sPO = "(?s, p, o)"
    Spo = "(s, ?p, ?o)"
    SpO = "(s, ?p, o)"
    SPo = "(s, p, ?o)"
    SPO = "(s, p, o)"

    @property
    def bound_positions(self) -> Tuple[str, ...]:
        """Which of 's', 'p', 'o' are bound in this shape."""
        return tuple(c.lower() for c in self.name if c.isupper())


@dataclass(frozen=True, slots=True)
class Triple:
    """A concrete RDF statement."""

    s: RDFTerm
    p: RDFTerm
    o: RDFTerm

    def __post_init__(self) -> None:
        for pos, term in (("subject", self.s), ("predicate", self.p), ("object", self.o)):
            if isinstance(term, Variable):
                raise TypeError(f"triple {pos} cannot be a variable")
        if isinstance(self.s, Literal):
            raise TypeError("triple subject cannot be a literal")
        if not isinstance(self.p, IRI):
            raise TypeError("triple predicate must be an IRI")

    def __iter__(self) -> Iterator[RDFTerm]:
        return iter((self.s, self.p, self.o))

    def n3(self) -> str:
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()} ."

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.n3()


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern: any position may be a variable."""

    s: Term
    p: Term
    o: Term

    def __iter__(self) -> Iterator[Term]:
        return iter((self.s, self.p, self.o))

    @property
    def shape(self) -> PatternShape:
        name = (
            ("S" if is_concrete(self.s) else "s")
            + ("P" if is_concrete(self.p) else "p")
            + ("O" if is_concrete(self.o) else "o")
        )
        return PatternShape[name]

    def variables(self) -> frozenset[Variable]:
        """var(t): the set of variables occurring in this pattern."""
        return frozenset(t for t in self if isinstance(t, Variable))

    def is_concrete(self) -> bool:
        return not self.variables()

    def matches(self, triple: Triple) -> bool:
        """Structural match ignoring variables (no binding consistency).

        Binding-consistent matching (the same variable twice must take the
        same value) lives in :func:`repro.sparql.solutions.match_pattern`.
        """
        for pat, val in zip(self, triple):
            if is_concrete(pat) and pat != val:
                return False
        return True

    def substitute(self, bindings: "dict[Variable, RDFTerm]") -> "TriplePattern":
        """µ(t): replace variables according to a (partial) mapping."""

        def sub(term: Term) -> Term:
            if isinstance(term, Variable):
                return bindings.get(term, term)
            return term

        return TriplePattern(sub(self.s), sub(self.p), sub(self.o))

    def as_triple(self) -> Triple:
        """Convert to a concrete triple; raises if any variable remains."""
        if not self.is_concrete():
            raise ValueError(f"pattern still contains variables: {self}")
        return Triple(self.s, self.p, self.o)  # type: ignore[arg-type]

    def n3(self) -> str:
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()} ."

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.n3()


def pattern_of(triple: Triple) -> TriplePattern:
    """View a concrete triple as a (fully bound) pattern."""
    return TriplePattern(triple.s, triple.p, triple.o)
