"""SPARQL: tokenizer, parser, algebra, optimizer, and local evaluation.

Substrates S2-S6 of DESIGN.md. The public surface mirrors the stages of
the paper's query-processing workflow (Fig. 3):

* :func:`parse_query` — Query Parsing,
* :func:`translate_pattern` — Query Transformation,
* :func:`optimize` — Global Query Optimization (algebraic part),
* :func:`evaluate_query` / :func:`evaluate_algebra` — Local Query
  Execution,
* :func:`apply_modifiers` — Post-Processing.
"""

from .errors import SparqlError, SparqlEvalError, SparqlSyntaxError
from .tokenizer import tokenize
from .parser import parse_query
from .algebra import (
    BGP,
    Algebra,
    Filter,
    GraphNode,
    Join,
    LeftJoin,
    Union,
    format_algebra,
    translate_pattern,
)
from .solutions import (
    EMPTY_MAPPING,
    SolutionMapping,
    compatible,
    join,
    left_outer_join,
    match_pattern,
    merge,
    minus,
    union,
)
from .expr import effective_boolean_value, evaluate_expression, filter_passes
from .eval import (
    QueryResult,
    apply_modifiers,
    evaluate_algebra,
    evaluate_bgp,
    evaluate_query,
)
from .optimizer import decompose_filters, optimize, push_filters, reorder_bgp

__all__ = [
    "SparqlError",
    "SparqlSyntaxError",
    "SparqlEvalError",
    "tokenize",
    "parse_query",
    "Algebra",
    "BGP",
    "Join",
    "LeftJoin",
    "Union",
    "Filter",
    "GraphNode",
    "translate_pattern",
    "format_algebra",
    "SolutionMapping",
    "EMPTY_MAPPING",
    "compatible",
    "merge",
    "join",
    "union",
    "minus",
    "left_outer_join",
    "match_pattern",
    "evaluate_expression",
    "effective_boolean_value",
    "filter_passes",
    "evaluate_bgp",
    "evaluate_algebra",
    "evaluate_query",
    "apply_modifiers",
    "QueryResult",
    "optimize",
    "decompose_filters",
    "push_filters",
    "reorder_bgp",
]
