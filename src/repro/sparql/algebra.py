"""SPARQL algebra and the AST → algebra translation.

This is the Query Transformation stage of the paper's workflow (Fig. 3):
"different parts of the syntax tree [are] converted into SPARQL algebra
expressions". The operator mapping follows Sect. IV-B:

* ``.`` / AND  → Join (adjacent BGPs are merged, so the paper's
  ``BGP(P1. P2)`` form is produced verbatim),
* UNION        → Union,
* OPTIONAL     → LeftJoin(·, ·, condition) — a left outer join; an inner
  FILTER becomes the third argument, otherwise it is ``true`` (paper
  footnote 16),
* FILTER       → Filter (a selection).

Algebra trees are immutable; the optimizer rewrites them functionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union as TUnion

from ..rdf.terms import IRI, Variable
from ..rdf.triple import TriplePattern
from . import ast
from .errors import SparqlError

__all__ = [
    "Algebra", "BGP", "Join", "LeftJoin", "Union", "Filter", "GraphNode",
    "translate_pattern", "format_algebra",
]


class Algebra:
    """Base class of algebra operators."""

    __slots__ = ()

    def in_scope_vars(self) -> frozenset[Variable]:
        """Variables that *may* be bound in a solution of this pattern."""
        raise NotImplementedError

    def certain_vars(self) -> frozenset[Variable]:
        """Variables bound in *every* solution of this pattern.

        Needed for safe filter pushing (Schmidt et al., rules over
        possible/certain variables).
        """
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class BGP(Algebra):
    """A basic graph pattern: a set of triple patterns (conjunction)."""

    patterns: Tuple[TriplePattern, ...]

    def in_scope_vars(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for p in self.patterns:
            out.update(p.variables())
        return frozenset(out)

    def certain_vars(self) -> frozenset[Variable]:
        return self.in_scope_vars()


@dataclass(frozen=True, slots=True)
class Join(Algebra):
    left: Algebra
    right: Algebra

    def in_scope_vars(self) -> frozenset[Variable]:
        return self.left.in_scope_vars() | self.right.in_scope_vars()

    def certain_vars(self) -> frozenset[Variable]:
        return self.left.certain_vars() | self.right.certain_vars()


@dataclass(frozen=True, slots=True)
class LeftJoin(Algebra):
    """Left outer join; *condition* None encodes the literal ``true``."""

    left: Algebra
    right: Algebra
    condition: Optional[ast.Expression] = None

    def in_scope_vars(self) -> frozenset[Variable]:
        return self.left.in_scope_vars() | self.right.in_scope_vars()

    def certain_vars(self) -> frozenset[Variable]:
        return self.left.certain_vars()


@dataclass(frozen=True, slots=True)
class Union(Algebra):
    left: Algebra
    right: Algebra

    def in_scope_vars(self) -> frozenset[Variable]:
        return self.left.in_scope_vars() | self.right.in_scope_vars()

    def certain_vars(self) -> frozenset[Variable]:
        return self.left.certain_vars() & self.right.certain_vars()


@dataclass(frozen=True, slots=True)
class Filter(Algebra):
    condition: ast.Expression
    pattern: Algebra

    def in_scope_vars(self) -> frozenset[Variable]:
        return self.pattern.in_scope_vars()

    def certain_vars(self) -> frozenset[Variable]:
        return self.pattern.certain_vars()


@dataclass(frozen=True, slots=True)
class GraphNode(Algebra):
    """GRAPH <g> { P } — evaluated against a named graph."""

    graph: TUnion[IRI, Variable]
    pattern: Algebra

    def in_scope_vars(self) -> frozenset[Variable]:
        extra = frozenset({self.graph}) if isinstance(self.graph, Variable) else frozenset()
        return self.pattern.in_scope_vars() | extra

    def certain_vars(self) -> frozenset[Variable]:
        extra = frozenset({self.graph}) if isinstance(self.graph, Variable) else frozenset()
        return self.pattern.certain_vars() | extra


_EMPTY_BGP = BGP(())


def translate_pattern(pattern: ast.GraphPattern) -> Algebra:
    """Translate a surface graph pattern into its algebra expression.

    Adjacent BGPs under a Join are merged so conjunctions come out as the
    paper writes them: ``BGP(P1. P2)`` rather than
    ``Join(BGP(P1), BGP(P2))``.
    """
    if isinstance(pattern, ast.TriplesBlock):
        return BGP(pattern.patterns)
    if isinstance(pattern, ast.UnionPattern):
        return Union(translate_pattern(pattern.left), translate_pattern(pattern.right))
    if isinstance(pattern, ast.OptionalPattern):
        # OPTIONAL outside a group is meaningless; translate as against the
        # empty BGP (the spec's Z = the empty pattern).
        inner, condition = _translate_optional_body(pattern)
        return LeftJoin(_EMPTY_BGP, inner, condition)
    if isinstance(pattern, ast.FilterClause):
        return Filter(pattern.expression, _EMPTY_BGP)
    if isinstance(pattern, ast.NamedGraphPattern):
        return GraphNode(pattern.graph, translate_pattern(pattern.pattern))
    if isinstance(pattern, ast.GroupPattern):
        return _translate_group(pattern)
    raise SparqlError(f"cannot translate pattern {type(pattern).__name__}")


def _translate_optional_body(
    pattern: ast.OptionalPattern,
) -> tuple[Algebra, Optional[ast.Expression]]:
    """Per the spec, a FILTER directly inside OPTIONAL's group becomes the
    LeftJoin condition (paper footnote 16: otherwise the third argument is
    ``true``)."""
    body = pattern.pattern
    if isinstance(body, ast.GroupPattern) and body.filters:
        stripped = ast.GroupPattern(elements=body.elements, filters=())
        condition = _conjoin([f.expression for f in body.filters])
        return _translate_group(stripped), condition
    return translate_pattern(body), None


def _translate_group(group: ast.GroupPattern) -> Algebra:
    current: Algebra = _EMPTY_BGP
    for element in group.elements:
        if isinstance(element, ast.OptionalPattern):
            inner, condition = _translate_optional_body(element)
            current = LeftJoin(current, inner, condition)
        else:
            current = _join(current, translate_pattern(element))
    for filter_clause in group.filters:
        current = Filter(filter_clause.expression, current)
    return current


def _join(left: Algebra, right: Algebra) -> Algebra:
    """Join with unit elimination and BGP merging."""
    if isinstance(left, BGP) and not left.patterns:
        return right
    if isinstance(right, BGP) and not right.patterns:
        return left
    if isinstance(left, BGP) and isinstance(right, BGP):
        return BGP(left.patterns + right.patterns)
    return Join(left, right)


def _conjoin(expressions: list[ast.Expression]) -> ast.Expression:
    expr = expressions[0]
    for nxt in expressions[1:]:
        expr = ast.AndExpr(expr, nxt)
    return expr


# ------------------------------------------------------------ presentation


def format_algebra(node: Algebra, pattern_names: Optional[dict] = None) -> str:
    """Render an algebra tree in the paper's notation.

    With *pattern_names* mapping :class:`TriplePattern` → label (e.g.
    ``P1``), the output matches the paper's expressions literally, e.g.
    ``Filter(C1, LeftJoin(BGP(P1. P2), BGP(P3), true))`` for Fig. 9.
    """
    names = pattern_names or {}

    def fmt(n: Algebra) -> str:
        if isinstance(n, BGP):
            inner = ". ".join(names.get(p, p.n3().rstrip(" .")) for p in n.patterns)
            return f"BGP({inner})"
        if isinstance(n, Join):
            return f"Join({fmt(n.left)}, {fmt(n.right)})"
        if isinstance(n, LeftJoin):
            cond = "true" if n.condition is None else _fmt_expr(n.condition, names)
            return f"LeftJoin({fmt(n.left)}, {fmt(n.right)}, {cond})"
        if isinstance(n, Union):
            return f"Union({fmt(n.left)}, {fmt(n.right)})"
        if isinstance(n, Filter):
            return f"Filter({_fmt_expr(n.condition, names)}, {fmt(n.pattern)})"
        if isinstance(n, GraphNode):
            return f"Graph({n.graph.n3()}, {fmt(n.pattern)})"
        return repr(n)

    return fmt(node)


def _fmt_expr(expr: ast.Expression, names: dict) -> str:
    if expr in names:
        return names[expr]
    if isinstance(expr, ast.TermExpr):
        return expr.term.n3()
    if isinstance(expr, ast.FunctionCall):
        return f"{expr.name.lower()}({', '.join(_fmt_expr(a, names) for a in expr.args)})"
    if isinstance(expr, ast.CompareExpr):
        return f"({_fmt_expr(expr.left, names)} {expr.op} {_fmt_expr(expr.right, names)})"
    if isinstance(expr, ast.ArithExpr):
        return f"({_fmt_expr(expr.left, names)} {expr.op} {_fmt_expr(expr.right, names)})"
    if isinstance(expr, ast.AndExpr):
        return f"({_fmt_expr(expr.left, names)} && {_fmt_expr(expr.right, names)})"
    if isinstance(expr, ast.OrExpr):
        return f"({_fmt_expr(expr.left, names)} || {_fmt_expr(expr.right, names)})"
    if isinstance(expr, ast.NotExpr):
        return f"!{_fmt_expr(expr.operand, names)}"
    if isinstance(expr, ast.NegExpr):
        return f"-{_fmt_expr(expr.operand, names)}"
    return repr(expr)
