"""Abstract syntax tree for SPARQL queries.

The Query Parser of the paper's workflow (Fig. 3) "translates [a query
string] into an abstract syntax tree composed of the query forms, graph
patterns, and solution sequence modifiers". These classes are exactly that
tree. Translation into SPARQL *algebra* expressions is a separate step
(:mod:`repro.sparql.algebra`), mirroring the paper's Query Transformation
stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..rdf.terms import IRI, Literal, Variable
from ..rdf.triple import TriplePattern

__all__ = [
    # expressions
    "Expression", "TermExpr", "OrExpr", "AndExpr", "NotExpr", "NegExpr",
    "CompareExpr", "ArithExpr", "FunctionCall",
    # graph patterns
    "GraphPattern", "TriplesBlock", "GroupPattern", "UnionPattern",
    "OptionalPattern", "FilterClause", "NamedGraphPattern",
    # query structure
    "Dataset", "OrderCondition", "SolutionModifiers",
    "Query", "SelectQuery", "AskQuery", "ConstructQuery", "DescribeQuery",
]


# --------------------------------------------------------------------------
# Expressions (FILTER / ORDER BY)
# --------------------------------------------------------------------------


class Expression:
    """Base class for FILTER / ORDER BY expressions."""

    __slots__ = ()

    def variables(self) -> frozenset[Variable]:
        """All variables mentioned anywhere in the expression."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class TermExpr(Expression):
    """A term used as an expression: variable, IRI, or literal."""

    term: Union[Variable, IRI, Literal]

    def variables(self) -> frozenset[Variable]:
        return frozenset({self.term}) if isinstance(self.term, Variable) else frozenset()


@dataclass(frozen=True, slots=True)
class OrExpr(Expression):
    left: Expression
    right: Expression

    def variables(self) -> frozenset[Variable]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True, slots=True)
class AndExpr(Expression):
    left: Expression
    right: Expression

    def variables(self) -> frozenset[Variable]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True, slots=True)
class NotExpr(Expression):
    operand: Expression

    def variables(self) -> frozenset[Variable]:
        return self.operand.variables()


@dataclass(frozen=True, slots=True)
class NegExpr(Expression):
    """Unary numeric negation."""

    operand: Expression

    def variables(self) -> frozenset[Variable]:
        return self.operand.variables()


@dataclass(frozen=True, slots=True)
class CompareExpr(Expression):
    """op in { '=', '!=', '<', '<=', '>', '>=' }."""

    op: str
    left: Expression
    right: Expression

    def variables(self) -> frozenset[Variable]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True, slots=True)
class ArithExpr(Expression):
    """op in { '+', '-', '*', '/' }."""

    op: str
    left: Expression
    right: Expression

    def variables(self) -> frozenset[Variable]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True, slots=True)
class FunctionCall(Expression):
    """A SPARQL built-in call: REGEX, BOUND, STR, LANG, DATATYPE, ...

    ``name`` is the upper-cased built-in name.
    """

    name: str
    args: Tuple[Expression, ...]

    def variables(self) -> frozenset[Variable]:
        out: frozenset[Variable] = frozenset()
        for arg in self.args:
            out |= arg.variables()
        return out


# --------------------------------------------------------------------------
# Graph patterns (surface form, pre-algebra)
# --------------------------------------------------------------------------


class GraphPattern:
    """Base class for surface-syntax graph patterns."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class TriplesBlock(GraphPattern):
    """A maximal run of triple patterns joined by '.' (conjunction)."""

    patterns: Tuple[TriplePattern, ...]

    def variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for p in self.patterns:
            out.update(p.variables())
        return frozenset(out)


@dataclass(frozen=True, slots=True)
class GroupPattern(GraphPattern):
    """A `{ ... }` group: a sequence of patterns and FILTER clauses.

    Filters are kept in source position but, per the SPARQL spec, they
    apply to the whole group — the algebra translation handles that.
    """

    elements: Tuple[GraphPattern, ...]
    filters: Tuple["FilterClause", ...] = ()


@dataclass(frozen=True, slots=True)
class UnionPattern(GraphPattern):
    left: GraphPattern
    right: GraphPattern


@dataclass(frozen=True, slots=True)
class OptionalPattern(GraphPattern):
    pattern: GraphPattern


@dataclass(frozen=True, slots=True)
class FilterClause(GraphPattern):
    expression: Expression


@dataclass(frozen=True, slots=True)
class NamedGraphPattern(GraphPattern):
    """GRAPH <iri-or-var> { ... } — accepted by the parser for coverage."""

    graph: Union[IRI, Variable]
    pattern: GraphPattern


# --------------------------------------------------------------------------
# Query structure
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Dataset:
    """FROM / FROM NAMED clauses.

    The paper notes (Sect. IV-A) that queries in the ad-hoc system usually
    carry *no* dataset clause, in which case the dataset is the union of
    all triples on all storage nodes — represented here by both tuples
    being empty.
    """

    default: Tuple[IRI, ...] = ()
    named: Tuple[IRI, ...] = ()

    @property
    def is_union_of_all(self) -> bool:
        return not self.default and not self.named


@dataclass(frozen=True, slots=True)
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True, slots=True)
class SolutionModifiers:
    """Order / Projection / Distinct / Reduced / Offset / Limit (§IV-A)."""

    order: Tuple[OrderCondition, ...] = ()
    distinct: bool = False
    reduced: bool = False
    offset: int = 0
    limit: Optional[int] = None

    @property
    def is_trivial(self) -> bool:
        return (
            not self.order
            and not self.distinct
            and not self.reduced
            and self.offset == 0
            and self.limit is None
        )


@dataclass(frozen=True, slots=True)
class Query:
    """Common parts of the four query forms."""

    dataset: Dataset
    where: GraphPattern
    modifiers: SolutionModifiers
    prefixes: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True, slots=True)
class SelectQuery(Query):
    #: Projection variables; empty tuple means ``SELECT *``.
    projection: Tuple[Variable, ...] = ()

    @property
    def select_all(self) -> bool:
        return not self.projection


@dataclass(frozen=True, slots=True)
class AskQuery(Query):
    pass


@dataclass(frozen=True, slots=True)
class ConstructQuery(Query):
    template: Tuple[TriplePattern, ...] = ()


@dataclass(frozen=True, slots=True)
class DescribeQuery(Query):
    #: Terms to describe — variables or IRIs; empty means DESCRIBE *.
    subjects: Tuple[Union[Variable, IRI], ...] = ()
