"""Error types for the SPARQL subsystem."""

from __future__ import annotations

__all__ = ["SparqlError", "SparqlSyntaxError", "SparqlEvalError"]


class SparqlError(Exception):
    """Base class for all SPARQL-related errors."""


class SparqlSyntaxError(SparqlError):
    """Raised by the tokenizer/parser on malformed query text."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class SparqlEvalError(SparqlError):
    """A type error raised during FILTER expression evaluation.

    Per the SPARQL semantics a type error makes the enclosing FILTER
    condition *fail* for that solution rather than aborting the query; the
    evaluator catches this exception accordingly.
    """
