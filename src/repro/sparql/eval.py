"""Local (single-node) evaluation of SPARQL algebra over a graph.

Implements the evaluation function ⟦P⟧_D of Sect. IV-B over an in-memory
:class:`~repro.rdf.graph.Graph`. Each storage node runs exactly this code
in the Local Query Execution stage of the paper's workflow (Fig. 3); the
distributed engine composes these local evaluations across nodes. The same
code doubles as the oracle in tests: distributed answers must equal the
local answer over the union graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..rdf.graph import Graph
from ..rdf.terms import IRI, RDFTerm, Variable
from ..rdf.triple import TriplePattern
from . import ast
from .algebra import BGP, Algebra, translate_pattern
from .errors import SparqlError
from .expr import order_key
from .solutions import (
    EMPTY_MAPPING,
    SolutionMapping,
    SolutionSet,
    compile_extractor,
    merge,
)

__all__ = [
    "evaluate_bgp",
    "evaluate_algebra",
    "apply_modifiers",
    "evaluate_query",
    "QueryResult",
]


def evaluate_bgp(bgp: BGP, graph: Graph) -> SolutionSet:
    """⟦BGP⟧_D with index-backed candidate generation.

    Patterns are evaluated left to right; each accumulated mapping µ is
    pushed into the next pattern (µ(t)) so the graph indexes prune the
    search — the standard index nested-loop join.
    """
    solutions: List[SolutionMapping] = [EMPTY_MAPPING]
    for pattern in bgp.patterns:
        ps, pp, po = pattern.s, pattern.p, pattern.o
        s_var = isinstance(ps, Variable)
        p_var = isinstance(pp, Variable)
        o_var = isinstance(po, Variable)
        next_solutions: List[SolutionMapping] = []
        append = next_solutions.append
        # µ(t) leaves exactly the variables outside dom(µ) unbound, so the
        # extractor for the bound pattern depends only on µ's schema.
        extractors: Dict[object, object] = {}
        for mu in solutions:
            bs, bp, bo = ps, pp, po
            if s_var:
                term = mu.get(ps)
                if term is not None:
                    bs = term
            if p_var:
                term = mu.get(pp)
                if term is not None:
                    bp = term
            if o_var:
                term = mu.get(po)
                if term is not None:
                    bo = term
            bound = TriplePattern(bs, bp, bo)
            schema = mu._schema
            extract = extractors.get(schema)
            if extract is None:
                # graph.triples already enforces concrete positions and
                # repeated-variable equality; extraction is all that remains.
                extract = extractors[schema] = compile_extractor(bound)
            for triple in graph.triples(bound):
                append(merge(mu, extract(triple)))
        if not next_solutions:
            return set()
        solutions = next_solutions
    return set(solutions)


def evaluate_algebra(
    node: Algebra,
    graph: Graph,
    named_graphs: Optional[Dict[IRI, Graph]] = None,
) -> SolutionSet:
    """⟦P⟧_D for a full algebra tree (Sect. IV-B semantics).

    Compiles to the shared physical-operator plan and interprets it —
    the same operator classes the distributed engine executes
    (:mod:`repro.query.physical`), so local and distributed evaluation
    cannot drift apart. The import is deferred: the query package
    imports this module at load time, and most callers (the storage
    nodes' sub-query hot path) have it loaded long before the first
    evaluation.
    """
    from ..query.physical import compile_local, interpret_local

    return interpret_local(compile_local(node), graph, named_graphs)


# ----------------------------------------------------------- query results


class QueryResult:
    """Result of a full query evaluation.

    ``rows`` is the ordered solution sequence (after modifiers) for SELECT
    and DESCRIBE-by-variable; ``boolean`` is set for ASK; ``graph`` is set
    for CONSTRUCT / DESCRIBE.
    """

    __slots__ = ("rows", "variables", "boolean", "graph")

    def __init__(
        self,
        rows: Optional[List[SolutionMapping]] = None,
        variables: Sequence[Variable] = (),
        boolean: Optional[bool] = None,
        graph: Optional[Graph] = None,
    ) -> None:
        self.rows = rows if rows is not None else []
        self.variables = tuple(variables)
        self.boolean = boolean
        self.graph = graph

    def __len__(self) -> int:
        return len(self.rows)

    def bindings(self) -> List[Dict[str, RDFTerm]]:
        """Rows as plain dicts keyed by variable name (for examples/tests)."""
        return [
            {var.name: term for var, term in mu.items()} for mu in self.rows
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.boolean is not None:
            return f"QueryResult(ASK={self.boolean})"
        if self.graph is not None:
            return f"QueryResult(graph with {len(self.graph)} triples)"
        return f"QueryResult({len(self.rows)} rows)"


def apply_modifiers(
    solutions: Iterable[SolutionMapping],
    modifiers: ast.SolutionModifiers,
    projection: Sequence[Variable] = (),
) -> List[SolutionMapping]:
    """The paper's Post-Processing stage: Order, Projection, Distinct /
    Reduced, Offset, Limit — applied in the spec's order at the query
    initiator."""
    rows = list(solutions)

    for condition in reversed(modifiers.order):
        rows.sort(
            key=lambda mu: order_key(condition.expression, mu),
            reverse=condition.descending,
        )
    if not modifiers.order:
        # Deterministic output for unordered queries: canonical term order.
        rows.sort(key=_canonical_row_key)

    if projection:
        rows = [mu.project(projection) for mu in rows]

    if modifiers.distinct or modifiers.reduced:
        seen: Set[SolutionMapping] = set()
        deduped: List[SolutionMapping] = []
        for mu in rows:
            if mu not in seen:
                seen.add(mu)
                deduped.append(mu)
        rows = deduped

    if modifiers.offset:
        rows = rows[modifiers.offset:]
    if modifiers.limit is not None:
        rows = rows[: modifiers.limit]
    return rows


def _canonical_row_key(mu: SolutionMapping):
    return tuple((v.name, t.n3()) for v, t in mu.items())


def evaluate_query(
    query: ast.Query,
    graph: Graph,
    named_graphs: Optional[Dict[IRI, Graph]] = None,
) -> QueryResult:
    """Evaluate a parsed query completely against a single graph.

    This is the reference ("oracle") evaluation path; the distributed
    executor must agree with it on the union of all storage-node graphs.
    """
    algebra = translate_pattern(query.where)
    solutions = evaluate_algebra(algebra, graph, named_graphs)

    if isinstance(query, ast.AskQuery):
        return QueryResult(boolean=bool(solutions))

    if isinstance(query, ast.SelectQuery):
        projection = list(query.projection)
        if not projection:
            projection = sorted(algebra.in_scope_vars(), key=lambda v: v.name)
        rows = apply_modifiers(solutions, query.modifiers, projection)
        return QueryResult(rows=rows, variables=projection)

    if isinstance(query, ast.ConstructQuery):
        out = Graph()
        for mu in solutions:
            for template in query.template:
                bound = template.substitute(mu.as_dict())
                if bound.is_concrete():
                    try:
                        out.add(bound.as_triple())
                    except TypeError:
                        continue  # e.g. literal subject after substitution
        return QueryResult(graph=out)

    if isinstance(query, ast.DescribeQuery):
        out = Graph()
        targets: Set[RDFTerm] = set()
        for subject in query.subjects:
            if isinstance(subject, IRI):
                targets.add(subject)
            else:
                for mu in solutions:
                    term = mu.get(subject)
                    if term is not None:
                        targets.add(term)
        for target in targets:
            for triple in graph.triples(TriplePattern(target, Variable("p"), Variable("o"))):
                out.add(triple)
        return QueryResult(graph=out)

    raise SparqlError(f"unknown query form {type(query).__name__}")
