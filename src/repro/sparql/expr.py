"""Evaluation of FILTER / ORDER BY expressions.

Implements SPARQL's built-in conditions R (paper, Sect. IV-B) under the
standard semantics: evaluation may raise a *type error*
(:class:`~repro.sparql.errors.SparqlEvalError`), in which case the
enclosing FILTER removes the solution; logical ``&&`` / ``||`` / ``!`` use
three-valued logic over {true, false, error}.
"""

from __future__ import annotations

import math
import re
from typing import Optional, Union

from ..rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    RDFTerm,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from . import ast
from .errors import SparqlEvalError
from .solutions import SolutionMapping

__all__ = ["evaluate_expression", "effective_boolean_value", "filter_passes", "order_key"]

#: Values produced by expression evaluation: an RDF term, or a plain
#: Python bool/int/float produced by operators and built-ins.
Value = Union[RDFTerm, bool, int, float, str]

_TRUE = Literal("true", datatype=IRI(XSD_BOOLEAN))
_FALSE = Literal("false", datatype=IRI(XSD_BOOLEAN))


def evaluate_expression(expr: ast.Expression, mu: SolutionMapping) -> Value:
    """Evaluate *expr* under solution mapping *mu*.

    Raises :class:`SparqlEvalError` on unbound variables (outside BOUND)
    and on type errors, per the SPARQL semantics.
    """
    if isinstance(expr, ast.TermExpr):
        return _eval_term(expr.term, mu)
    if isinstance(expr, ast.OrExpr):
        return _eval_or(expr, mu)
    if isinstance(expr, ast.AndExpr):
        return _eval_and(expr, mu)
    if isinstance(expr, ast.NotExpr):
        return not effective_boolean_value(evaluate_expression(expr.operand, mu))
    if isinstance(expr, ast.NegExpr):
        return -_numeric(evaluate_expression(expr.operand, mu))
    if isinstance(expr, ast.CompareExpr):
        return _eval_compare(expr, mu)
    if isinstance(expr, ast.ArithExpr):
        return _eval_arith(expr, mu)
    if isinstance(expr, ast.FunctionCall):
        return _eval_call(expr, mu)
    raise SparqlEvalError(f"unknown expression node {type(expr).__name__}")


def filter_passes(expr: ast.Expression, mu: SolutionMapping) -> bool:
    """True when µ satisfies R; a type error counts as *not satisfied*."""
    try:
        return effective_boolean_value(evaluate_expression(expr, mu))
    except SparqlEvalError:
        return False


# --------------------------------------------------------------------- EBV


def effective_boolean_value(value: Value) -> bool:
    """SPARQL's Effective Boolean Value coercion."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and not (isinstance(value, float) and math.isnan(value))
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, Literal):
        dt = value.datatype.value if value.datatype else None
        if dt == XSD_BOOLEAN:
            return value.lexical in ("true", "1")
        if dt in (XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE):
            try:
                return effective_boolean_value(value.to_python())
            except ValueError:
                return False  # invalid lexical form -> EBV false per spec
        if dt is None or dt == XSD_STRING:
            return len(value.lexical) > 0
    raise SparqlEvalError(f"no effective boolean value for {value!r}")


# ----------------------------------------------------------------- helpers


def _eval_term(term: Union[Variable, IRI, Literal], mu: SolutionMapping) -> Value:
    if isinstance(term, Variable):
        bound = mu.get(term)
        if bound is None:
            raise SparqlEvalError(f"unbound variable ?{term.name}")
        return bound
    return term


def _eval_or(expr: ast.OrExpr, mu: SolutionMapping) -> bool:
    """Three-valued OR: true if either side is true, even if the other errs."""
    left_err: Optional[SparqlEvalError] = None
    try:
        if effective_boolean_value(evaluate_expression(expr.left, mu)):
            return True
    except SparqlEvalError as exc:
        left_err = exc
    try:
        if effective_boolean_value(evaluate_expression(expr.right, mu)):
            return True
    except SparqlEvalError:
        raise
    if left_err is not None:
        raise left_err
    return False


def _eval_and(expr: ast.AndExpr, mu: SolutionMapping) -> bool:
    """Three-valued AND: false if either side is false, even if other errs."""
    left_err: Optional[SparqlEvalError] = None
    try:
        if not effective_boolean_value(evaluate_expression(expr.left, mu)):
            return False
    except SparqlEvalError as exc:
        left_err = exc
    try:
        if not effective_boolean_value(evaluate_expression(expr.right, mu)):
            return False
    except SparqlEvalError:
        raise
    if left_err is not None:
        raise left_err
    return True


def _numeric(value: Value) -> Union[int, float]:
    if isinstance(value, bool):
        raise SparqlEvalError("boolean is not numeric")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal) and value.is_numeric:
        try:
            return value.to_python()  # type: ignore[return-value]
        except ValueError as exc:
            raise SparqlEvalError(f"invalid numeric literal {value!r}") from exc
    raise SparqlEvalError(f"not a numeric value: {value!r}")


def _string(value: Value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, Literal):
        dt = value.datatype.value if value.datatype else None
        if dt is None or dt == XSD_STRING:
            return value.lexical
    raise SparqlEvalError(f"not a plain string value: {value!r}")


def _eval_compare(expr: ast.CompareExpr, mu: SolutionMapping) -> bool:
    left = evaluate_expression(expr.left, mu)
    right = evaluate_expression(expr.right, mu)
    op = expr.op

    # Try numeric comparison first.
    try:
        ln, rn = _numeric(left), _numeric(right)
    except SparqlEvalError:
        pass
    else:
        return _apply_order_op(op, ln, rn)

    # Boolean comparison.
    lb, rb = _as_bool(left), _as_bool(right)
    if lb is not None and rb is not None:
        return _apply_order_op(op, lb, rb)

    # String comparison (plain / xsd:string literals).
    try:
        ls, rs = _string(left), _string(right)
    except SparqlEvalError:
        pass
    else:
        return _apply_order_op(op, ls, rs)

    # Fall back to RDF term equality for = and !=.
    lt, rt = _as_term(left), _as_term(right)
    if op == "=":
        return lt == rt
    if op == "!=":
        return lt != rt
    raise SparqlEvalError(f"cannot order {left!r} and {right!r}")


def _as_bool(value: Value) -> Optional[bool]:
    if isinstance(value, bool):
        return value
    if isinstance(value, Literal) and value.datatype and value.datatype.value == XSD_BOOLEAN:
        return value.lexical in ("true", "1")
    return None


def _as_term(value: Value) -> RDFTerm:
    if isinstance(value, (IRI, Literal, BlankNode)):
        return value
    if isinstance(value, bool):
        return _TRUE if value else _FALSE
    if isinstance(value, int):
        return Literal(str(value), datatype=IRI(XSD_INTEGER))
    if isinstance(value, float):
        return Literal(repr(value), datatype=IRI(XSD_DOUBLE))
    return Literal(str(value))


def _apply_order_op(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SparqlEvalError(f"unknown comparison operator {op!r}")


def _eval_arith(expr: ast.ArithExpr, mu: SolutionMapping) -> Union[int, float]:
    left = _numeric(evaluate_expression(expr.left, mu))
    right = _numeric(evaluate_expression(expr.right, mu))
    op = expr.op
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SparqlEvalError("division by zero")
        # xsd:integer / xsd:integer is xsd:decimal in SPARQL.
        return left / right
    raise SparqlEvalError(f"unknown arithmetic operator {op!r}")


def _eval_call(expr: ast.FunctionCall, mu: SolutionMapping) -> Value:
    name = expr.name
    if name == "BOUND":
        arg = expr.args[0]
        if not (isinstance(arg, ast.TermExpr) and isinstance(arg.term, Variable)):
            raise SparqlEvalError("BOUND requires a variable argument")
        return arg.term in mu
    if name == "REGEX":
        text = _string(evaluate_expression(expr.args[0], mu))
        pattern = _string(evaluate_expression(expr.args[1], mu))
        flags = 0
        if len(expr.args) == 3:
            flag_str = _string(evaluate_expression(expr.args[2], mu))
            if "i" in flag_str:
                flags |= re.IGNORECASE
            if "s" in flag_str:
                flags |= re.DOTALL
            if "m" in flag_str:
                flags |= re.MULTILINE
            if "x" in flag_str:
                flags |= re.VERBOSE
        try:
            return re.search(pattern, text, flags) is not None
        except re.error as exc:
            raise SparqlEvalError(f"invalid regex {pattern!r}: {exc}") from exc

    value = evaluate_expression(expr.args[0], mu)
    if name in ("ISIRI", "ISURI"):
        return isinstance(value, IRI)
    if name == "ISBLANK":
        return isinstance(value, BlankNode)
    if name == "ISLITERAL":
        return isinstance(value, Literal)
    if name == "STR":
        if isinstance(value, IRI):
            return value.value
        if isinstance(value, Literal):
            return value.lexical
        if isinstance(value, (bool, int, float, str)):
            return _as_term(value).lexical  # type: ignore[union-attr]
        raise SparqlEvalError(f"STR not defined for {value!r}")
    if name == "LANG":
        if isinstance(value, Literal):
            return value.language or ""
        raise SparqlEvalError("LANG requires a literal")
    if name == "DATATYPE":
        if isinstance(value, Literal):
            if value.language is not None:
                raise SparqlEvalError("DATATYPE of a language-tagged literal")
            return value.datatype or IRI(XSD_STRING)
        raise SparqlEvalError("DATATYPE requires a literal")
    if name == "LANGMATCHES":
        tag = _string(value) if not isinstance(value, str) else value
        rng = _string(evaluate_expression(expr.args[1], mu))
        if rng == "*":
            return bool(tag)
        return tag.lower() == rng.lower() or tag.lower().startswith(rng.lower() + "-")
    if name == "SAMETERM":
        other = evaluate_expression(expr.args[1], mu)
        return _as_term(value) == _as_term(other)
    raise SparqlEvalError(f"unknown built-in {name}")


# ------------------------------------------------------------ ORDER BY key


_TYPE_RANK = {BlankNode: 0, IRI: 1}


def order_key(expr: ast.Expression, mu: SolutionMapping):
    """A total-order sort key for ORDER BY.

    SPARQL orders: unbound < blank nodes < IRIs < literals; within
    literals, numerics by value then others by lexical form. Type errors
    sort first (like unbound).
    """
    try:
        value = evaluate_expression(expr, mu)
    except SparqlEvalError:
        return (0, "")
    if isinstance(value, bool):
        value = _TRUE if value else _FALSE
    if isinstance(value, (int, float)):
        return (4, 0, float(value), "")
    if isinstance(value, str):
        return (4, 1, 0.0, value)
    if isinstance(value, BlankNode):
        return (1, value.label)
    if isinstance(value, IRI):
        return (2, value.value)
    if isinstance(value, Literal):
        if value.is_numeric:
            try:
                return (4, 0, float(value.to_python()), "")
            except (ValueError, TypeError):
                return (4, 1, 0.0, value.lexical)
        return (4, 1, 0.0, value.lexical)
    return (0, "")
