"""Algebraic query optimization (the Global Query Optimization stage).

Implements the rewrite rules the paper imports from Schmidt, Meier &
Lausen ("Foundations of SPARQL query optimization", ICDT 2010) and Pérez
et al.:

* **Filter decomposition** — ``Filter(R1 && R2, P)`` ≡
  ``Filter(R1, Filter(R2, P))``.
* **Filter pushing** — a filter travels into the branch(es) of Join /
  Union / LeftJoin whose *certain* variables cover the filter's variables;
  into a BGP it may split off the covered prefix, which is exactly the
  paper's Fig. 9 rewrite ``Filter(C1, LeftJoin(BGP(P1. P2), BGP(P3), true))
  → LeftJoin(BGP(Filter(C1, P1). P2), BGP(P3), true)`` (modulo our Join
  spelling of the in-BGP push).
* **Join reordering** — AND is associative and commutative (Sect. IV-D),
  so BGP triple patterns may be permuted; we order by estimated
  cardinality (smallest first) using the frequency statistics kept in the
  distributed location tables, or any user-supplied estimator.

Every rule is exposed individually so the benchmark harness can ablate
them (experiment E6/E10 of DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..rdf.triple import TriplePattern
from . import ast
from .algebra import BGP, Algebra, Filter, GraphNode, Join, LeftJoin, Union

__all__ = [
    "decompose_filters",
    "push_filters",
    "reorder_bgp",
    "optimize",
    "CardinalityEstimator",
]

#: Estimates the number of matches of a triple pattern (lower = evaluate
#: earlier). The distributed planner supplies one backed by location-table
#: frequencies; tests may pass exact counters.
CardinalityEstimator = Callable[[TriplePattern], float]


# ------------------------------------------------------------ decomposition


def decompose_filters(node: Algebra) -> Algebra:
    """Split conjunctive filter conditions into nested Filters."""
    node = _rewrite_children(node, decompose_filters)
    if isinstance(node, Filter) and isinstance(node.condition, ast.AndExpr):
        inner = Filter(node.condition.right, node.pattern)
        return decompose_filters(Filter(node.condition.left, inner))
    return node


# ----------------------------------------------------------------- pushing


def push_filters(node: Algebra) -> Algebra:
    """Push each Filter as deep as is safe.

    Safety condition (Schmidt et al.): the filter's variables must be
    *certainly bound* in the target subexpression; pushing past a LeftJoin
    into the optional side or below a Union branch that does not bind the
    variables would change semantics and is not done.
    """
    node = _rewrite_children(node, push_filters)
    if not isinstance(node, Filter):
        return node
    pushed = _push_one(node.condition, node.pattern)
    return pushed if pushed is not None else node


def _push_one(condition: ast.Expression, target: Algebra) -> Optional[Algebra]:
    vars_needed = condition.variables()

    if isinstance(target, Join):
        left_ok = vars_needed <= target.left.certain_vars()
        right_ok = vars_needed <= target.right.certain_vars()
        if left_ok and right_ok:
            return Join(
                push_filters(Filter(condition, target.left)),
                push_filters(Filter(condition, target.right)),
            )
        if left_ok:
            return Join(push_filters(Filter(condition, target.left)), target.right)
        if right_ok:
            return Join(target.left, push_filters(Filter(condition, target.right)))
        return None

    if isinstance(target, Union):
        # Over a Union a filter may always distribute (it applies to each
        # branch's solutions independently).
        return Union(
            push_filters(Filter(condition, target.left)),
            push_filters(Filter(condition, target.right)),
        )

    if isinstance(target, LeftJoin):
        if vars_needed <= target.left.certain_vars():
            return LeftJoin(
                push_filters(Filter(condition, target.left)),
                target.right,
                target.condition,
            )
        return None

    if isinstance(target, BGP) and len(target.patterns) > 1:
        # Split off the minimal prefix of patterns covering the filter
        # variables; the filter then runs where that sub-BGP runs — at the
        # storage nodes — instead of at the assembly site (paper §IV-G).
        covered: list[TriplePattern] = []
        rest: list[TriplePattern] = []
        seen: set = set()
        for pattern in target.patterns:
            if not vars_needed <= seen:
                covered.append(pattern)
                seen |= pattern.variables()
            else:
                rest.append(pattern)
        if rest and vars_needed <= seen:
            return Join(Filter(condition, BGP(tuple(covered))), BGP(tuple(rest)))
        return None

    if isinstance(target, Filter):
        # Reorder stacked filters so deeper pushes may apply underneath.
        inner = _push_one(condition, target.pattern)
        if inner is not None:
            return Filter(target.condition, inner)
        return None

    return None


# -------------------------------------------------------------- reordering


def reorder_bgp(node: Algebra, estimate: CardinalityEstimator) -> Algebra:
    """Reorder BGP triple patterns greedily.

    Start from the pattern with the smallest estimated cardinality and
    repeatedly append the cheapest pattern that shares a variable with the
    patterns chosen so far (to avoid Cartesian products); fall back to the
    globally cheapest remaining pattern when none connects.
    """
    node = _rewrite_children(node, lambda n: reorder_bgp(n, estimate))
    if not isinstance(node, BGP) or len(node.patterns) < 2:
        return node

    remaining = list(node.patterns)
    remaining.sort(key=estimate)
    ordered = [remaining.pop(0)]
    bound = set(ordered[0].variables())
    while remaining:
        connected = [p for p in remaining if p.variables() & bound]
        chosen = connected[0] if connected else remaining[0]
        remaining.remove(chosen)
        ordered.append(chosen)
        bound |= chosen.variables()
    return BGP(tuple(ordered))


# ------------------------------------------------------------------ driver


def optimize(
    node: Algebra,
    estimate: Optional[CardinalityEstimator] = None,
    *,
    decompose: bool = True,
    push: bool = True,
    reorder: bool = True,
) -> Algebra:
    """Run the standard rewrite pipeline.

    Order matters: decomposition first (smaller filters push further),
    then pushing, then join reordering inside the (possibly split) BGPs.
    """
    if decompose:
        node = decompose_filters(node)
    if push:
        node = push_filters(node)
    if reorder and estimate is not None:
        node = reorder_bgp(node, estimate)
    return node


# ---------------------------------------------------------------- plumbing


def _rewrite_children(node: Algebra, rec: Callable[[Algebra], Algebra]) -> Algebra:
    if isinstance(node, Join):
        return Join(rec(node.left), rec(node.right))
    if isinstance(node, Union):
        return Union(rec(node.left), rec(node.right))
    if isinstance(node, LeftJoin):
        return LeftJoin(rec(node.left), rec(node.right), node.condition)
    if isinstance(node, Filter):
        return Filter(node.condition, rec(node.pattern))
    if isinstance(node, GraphNode):
        return GraphNode(node.graph, rec(node.pattern))
    return node
