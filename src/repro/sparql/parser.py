"""Recursive-descent parser: SPARQL text → :mod:`repro.sparql.ast`.

Implements the Query Parsing stage of the paper's workflow (Fig. 3). The
grammar coverage is the SPARQL 1.0 subset exercised by the paper: the four
query forms, prologue (BASE/PREFIX), dataset clauses, group graph patterns
with ``.`` / ``;`` / ``,`` triple shorthand and the ``a`` verb, UNION,
OPTIONAL, GRAPH, FILTER constraints with the full operator/built-in
expression grammar, and the solution sequence modifiers (ORDER BY,
DISTINCT/REDUCED, LIMIT, OFFSET).

The paper's figures typeset prefixed names inside angle brackets (e.g.
``⟨foaf:knows⟩``); this parser follows the official grammar where
``foaf:knows`` is written bare — the test suite encodes the paper queries
in standard syntax.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..rdf.namespaces import RDF
from ..rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from ..rdf.triple import TriplePattern
from . import ast
from .errors import SparqlSyntaxError
from .tokenizer import Token, TokenType, tokenize

__all__ = ["parse_query", "Parser"]

_BUILTIN_ARITY = {
    "REGEX": (2, 3),
    "BOUND": (1, 1),
    "ISIRI": (1, 1),
    "ISURI": (1, 1),
    "ISBLANK": (1, 1),
    "ISLITERAL": (1, 1),
    "STR": (1, 1),
    "LANG": (1, 1),
    "DATATYPE": (1, 1),
    "LANGMATCHES": (2, 2),
    "SAMETERM": (2, 2),
}


def parse_query(
    text: str, base_prefixes: Optional[Dict[str, str]] = None
) -> ast.Query:
    """Parse a SPARQL query string into an AST.

    *base_prefixes* optionally pre-populates the prefix table (the query's
    own PREFIX declarations override it).
    """
    return Parser(text, base_prefixes).parse()


class Parser:
    def __init__(self, text: str, base_prefixes: Optional[Dict[str, str]] = None) -> None:
        self.tokens = tokenize(text)
        self.pos = 0
        self.prefixes: Dict[str, str] = dict(base_prefixes or {})
        self.base: Optional[str] = None
        self._declared: List[Tuple[str, str]] = []

    # ------------------------------------------------------------ plumbing

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type != TokenType.EOF:
            self.pos += 1
        return tok

    def error(self, message: str) -> SparqlSyntaxError:
        tok = self.current
        return SparqlSyntaxError(f"{message}, found {tok.value!r}", tok.line, tok.column)

    def expect_op(self, op: str) -> Token:
        tok = self.current
        if tok.type != TokenType.OP or tok.value != op:
            raise self.error(f"expected {op!r}")
        return self.advance()

    def expect_keyword(self, *names: str) -> Token:
        tok = self.current
        if not tok.is_keyword(*names):
            raise self.error(f"expected {' or '.join(names)}")
        return self.advance()

    def at_op(self, *ops: str) -> bool:
        tok = self.current
        return tok.type == TokenType.OP and tok.value in ops

    def eat_op(self, op: str) -> bool:
        if self.at_op(op):
            self.advance()
            return True
        return False

    # -------------------------------------------------------------- entry

    def parse(self) -> ast.Query:
        self._prologue()
        tok = self.current
        if tok.is_keyword("SELECT"):
            query = self._select_query()
        elif tok.is_keyword("ASK"):
            query = self._ask_query()
        elif tok.is_keyword("CONSTRUCT"):
            query = self._construct_query()
        elif tok.is_keyword("DESCRIBE"):
            query = self._describe_query()
        else:
            raise self.error("expected SELECT, ASK, CONSTRUCT, or DESCRIBE")
        if self.current.type != TokenType.EOF:
            raise self.error("unexpected trailing content")
        return query

    def _prologue(self) -> None:
        while True:
            tok = self.current
            if tok.is_keyword("BASE"):
                self.advance()
                iri = self.advance()
                if iri.type != TokenType.IRIREF:
                    raise self.error("expected IRI after BASE")
                self.base = iri.value
            elif tok.is_keyword("PREFIX"):
                self.advance()
                pname = self.advance()
                if pname.type != TokenType.PNAME or not pname.value.endswith(":"):
                    raise self.error("expected prefix declaration (e.g. foaf:)")
                prefix = pname.value[:-1]
                iri = self.advance()
                if iri.type != TokenType.IRIREF:
                    raise self.error("expected IRI in PREFIX declaration")
                self.prefixes[prefix] = iri.value
                self._declared.append((prefix, iri.value))
            else:
                return

    # --------------------------------------------------------- query forms

    def _select_query(self) -> ast.SelectQuery:
        self.expect_keyword("SELECT")
        modifiers_flags = {"distinct": False, "reduced": False}
        if self.current.is_keyword("DISTINCT"):
            self.advance()
            modifiers_flags["distinct"] = True
        elif self.current.is_keyword("REDUCED"):
            self.advance()
            modifiers_flags["reduced"] = True
        projection: List[Variable] = []
        if self.at_op("*"):
            self.advance()
        else:
            while self.current.type == TokenType.VAR:
                projection.append(Variable(self.advance().value))
            if not projection:
                raise self.error("expected projection variables or *")
        dataset = self._dataset_clauses()
        where = self._where_clause()
        mods = self._solution_modifiers(**modifiers_flags)
        return ast.SelectQuery(
            dataset=dataset,
            where=where,
            modifiers=mods,
            prefixes=tuple(self._declared),
            projection=tuple(projection),
        )

    def _ask_query(self) -> ast.AskQuery:
        self.expect_keyword("ASK")
        dataset = self._dataset_clauses()
        where = self._where_clause()
        return ast.AskQuery(
            dataset=dataset,
            where=where,
            modifiers=ast.SolutionModifiers(),
            prefixes=tuple(self._declared),
        )

    def _construct_query(self) -> ast.ConstructQuery:
        self.expect_keyword("CONSTRUCT")
        self.expect_op("{")
        template = self._triples_block_patterns(stop="}")
        self.expect_op("}")
        dataset = self._dataset_clauses()
        where = self._where_clause()
        mods = self._solution_modifiers()
        return ast.ConstructQuery(
            dataset=dataset,
            where=where,
            modifiers=mods,
            prefixes=tuple(self._declared),
            template=tuple(template),
        )

    def _describe_query(self) -> ast.DescribeQuery:
        self.expect_keyword("DESCRIBE")
        subjects: List[Union[Variable, IRI]] = []
        if self.at_op("*"):
            self.advance()
        else:
            while True:
                tok = self.current
                if tok.type == TokenType.VAR:
                    subjects.append(Variable(self.advance().value))
                elif tok.type in (TokenType.IRIREF, TokenType.PNAME):
                    subjects.append(self._iri())
                else:
                    break
            if not subjects:
                raise self.error("expected DESCRIBE targets or *")
        dataset = self._dataset_clauses()
        if self.current.is_keyword("WHERE") or self.at_op("{"):
            where: ast.GraphPattern = self._where_clause()
        else:
            where = ast.GroupPattern(elements=(), filters=())
        mods = self._solution_modifiers()
        return ast.DescribeQuery(
            dataset=dataset,
            where=where,
            modifiers=mods,
            prefixes=tuple(self._declared),
            subjects=tuple(subjects),
        )

    def _dataset_clauses(self) -> ast.Dataset:
        default: List[IRI] = []
        named: List[IRI] = []
        while self.current.is_keyword("FROM"):
            self.advance()
            if self.current.is_keyword("NAMED"):
                self.advance()
                named.append(self._iri())
            else:
                default.append(self._iri())
        return ast.Dataset(default=tuple(default), named=tuple(named))

    def _where_clause(self) -> ast.GraphPattern:
        if self.current.is_keyword("WHERE"):
            self.advance()
        return self._group_graph_pattern()

    # ------------------------------------------------------ solution mods

    def _solution_modifiers(self, distinct: bool = False, reduced: bool = False) -> ast.SolutionModifiers:
        order: List[ast.OrderCondition] = []
        limit: Optional[int] = None
        offset = 0
        if self.current.is_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            while True:
                tok = self.current
                if tok.is_keyword("ASC", "DESC"):
                    descending = tok.value == "DESC"
                    self.advance()
                    self.expect_op("(")
                    expr = self._expression()
                    self.expect_op(")")
                    order.append(ast.OrderCondition(expr, descending))
                elif tok.type == TokenType.VAR:
                    order.append(
                        ast.OrderCondition(ast.TermExpr(Variable(self.advance().value)))
                    )
                elif self.at_op("("):
                    self.advance()
                    expr = self._expression()
                    self.expect_op(")")
                    order.append(ast.OrderCondition(expr))
                else:
                    break
            if not order:
                raise self.error("expected ORDER BY conditions")
        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self.current.is_keyword("LIMIT"):
                self.advance()
                limit = self._integer("LIMIT")
            elif self.current.is_keyword("OFFSET"):
                self.advance()
                offset = self._integer("OFFSET")
        return ast.SolutionModifiers(
            order=tuple(order), distinct=distinct, reduced=reduced,
            offset=offset, limit=limit,
        )

    def _integer(self, clause: str) -> int:
        tok = self.current
        if tok.type != TokenType.NUMBER or not tok.value.isdigit():
            raise self.error(f"expected non-negative integer after {clause}")
        self.advance()
        return int(tok.value)

    # ------------------------------------------------------ graph patterns

    def _group_graph_pattern(self) -> ast.GroupPattern:
        self.expect_op("{")
        elements: List[ast.GraphPattern] = []
        filters: List[ast.FilterClause] = []
        while not self.at_op("}"):
            tok = self.current
            if tok.is_keyword("FILTER"):
                self.advance()
                filters.append(ast.FilterClause(self._constraint()))
                self.eat_op(".")
            elif tok.is_keyword("OPTIONAL"):
                self.advance()
                elements.append(ast.OptionalPattern(self._group_graph_pattern()))
                self.eat_op(".")
            elif tok.is_keyword("GRAPH"):
                self.advance()
                graph: Union[IRI, Variable]
                if self.current.type == TokenType.VAR:
                    graph = Variable(self.advance().value)
                else:
                    graph = self._iri()
                elements.append(
                    ast.NamedGraphPattern(graph, self._group_graph_pattern())
                )
                self.eat_op(".")
            elif self.at_op("{"):
                elements.append(self._group_or_union())
                self.eat_op(".")
            elif tok.type == TokenType.EOF:
                raise self.error("unterminated group graph pattern")
            else:
                block = self._triples_block_patterns(stop="}")
                if not block:
                    raise self.error("expected graph pattern element")
                elements.append(ast.TriplesBlock(tuple(block)))
        self.expect_op("}")
        return ast.GroupPattern(elements=tuple(elements), filters=tuple(filters))

    def _group_or_union(self) -> ast.GraphPattern:
        left: ast.GraphPattern = self._group_graph_pattern()
        while self.current.is_keyword("UNION"):
            self.advance()
            right = self._group_graph_pattern()
            left = ast.UnionPattern(left, right)
        return left

    def _triples_block_patterns(self, stop: str) -> List[TriplePattern]:
        """Parse a run of TriplesSameSubject productions separated by '.'.

        Handles the ``;`` (same subject) and ``,`` (same subject+predicate)
        shorthand used by the paper's Fig. 9 query.
        """
        patterns: List[TriplePattern] = []
        while True:
            tok = self.current
            if (
                self.at_op(stop)
                or tok.type == TokenType.EOF
                or tok.is_keyword("FILTER", "OPTIONAL", "GRAPH", "UNION")
                or self.at_op("{")
            ):
                return patterns
            subject = self._var_or_term()
            self._property_list(subject, patterns)
            if not self.eat_op("."):
                return patterns

    def _property_list(self, subject, patterns: List[TriplePattern]) -> None:
        while True:
            verb = self._verb()
            while True:
                obj = self._var_or_term()
                patterns.append(TriplePattern(subject, verb, obj))
                if not self.eat_op(","):
                    break
            if not self.eat_op(";"):
                return
            # A trailing ';' before '.' or '}' is legal.
            if self.at_op(".") or self.at_op("}"):
                return

    def _verb(self):
        tok = self.current
        if tok.is_keyword("A"):
            self.advance()
            return RDF.type
        if tok.type == TokenType.VAR:
            self.advance()
            return Variable(tok.value)
        return self._iri()

    def _var_or_term(self):
        tok = self.current
        if tok.type == TokenType.VAR:
            self.advance()
            return Variable(tok.value)
        if tok.type == TokenType.BLANK:
            self.advance()
            return BlankNode(tok.value)
        if tok.type in (TokenType.IRIREF, TokenType.PNAME):
            return self._iri()
        if tok.type == TokenType.STRING:
            return self._literal()
        if tok.type == TokenType.NUMBER:
            self.advance()
            return _numeric_literal(tok.value)
        if tok.type == TokenType.BOOLEAN:
            self.advance()
            return Literal(tok.value, datatype=IRI(XSD_BOOLEAN))
        raise self.error("expected RDF term or variable")

    def _iri(self) -> IRI:
        tok = self.current
        if tok.type == TokenType.IRIREF:
            self.advance()
            value = tok.value
            if self.base and "://" not in value:
                value = self.base + value
            return IRI(value)
        if tok.type == TokenType.PNAME:
            self.advance()
            prefix, _, local = tok.value.partition(":")
            if prefix not in self.prefixes:
                raise SparqlSyntaxError(
                    f"undeclared prefix {prefix!r}", tok.line, tok.column
                )
            return IRI(self.prefixes[prefix] + local)
        raise self.error("expected IRI")

    def _literal(self) -> Literal:
        tok = self.advance()
        lexical = tok.value
        nxt = self.current
        if nxt.type == TokenType.LANGTAG:
            self.advance()
            return Literal(lexical, language=nxt.value)
        if self.at_op("^^"):
            self.advance()
            return Literal(lexical, datatype=self._iri())
        return Literal(lexical)

    # --------------------------------------------------------- expressions

    def _constraint(self) -> ast.Expression:
        if self.at_op("("):
            self.advance()
            expr = self._expression()
            self.expect_op(")")
            return expr
        return self._builtin_call()

    def _expression(self) -> ast.Expression:
        return self._or_expression()

    def _or_expression(self) -> ast.Expression:
        left = self._and_expression()
        while self.at_op("||"):
            self.advance()
            left = ast.OrExpr(left, self._and_expression())
        return left

    def _and_expression(self) -> ast.Expression:
        left = self._relational_expression()
        while self.at_op("&&"):
            self.advance()
            left = ast.AndExpr(left, self._relational_expression())
        return left

    def _relational_expression(self) -> ast.Expression:
        left = self._additive_expression()
        if self.at_op("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            right = self._additive_expression()
            return ast.CompareExpr(op, left, right)
        return left

    def _additive_expression(self) -> ast.Expression:
        left = self._multiplicative_expression()
        while self.at_op("+", "-"):
            op = self.advance().value
            left = ast.ArithExpr(op, left, self._multiplicative_expression())
        return left

    def _multiplicative_expression(self) -> ast.Expression:
        left = self._unary_expression()
        while self.at_op("*", "/"):
            op = self.advance().value
            left = ast.ArithExpr(op, left, self._unary_expression())
        return left

    def _unary_expression(self) -> ast.Expression:
        if self.eat_op("!"):
            return ast.NotExpr(self._unary_expression())
        if self.eat_op("-"):
            return ast.NegExpr(self._unary_expression())
        if self.eat_op("+"):
            return self._unary_expression()
        return self._primary_expression()

    def _primary_expression(self) -> ast.Expression:
        tok = self.current
        if self.at_op("("):
            self.advance()
            expr = self._expression()
            self.expect_op(")")
            return expr
        if tok.type == TokenType.KEYWORD and tok.value in _BUILTIN_ARITY:
            return self._builtin_call()
        if tok.type == TokenType.VAR:
            self.advance()
            return ast.TermExpr(Variable(tok.value))
        if tok.type in (TokenType.IRIREF, TokenType.PNAME):
            return ast.TermExpr(self._iri())
        if tok.type == TokenType.STRING:
            return ast.TermExpr(self._literal())
        if tok.type == TokenType.NUMBER:
            self.advance()
            return ast.TermExpr(_numeric_literal(tok.value))
        if tok.type == TokenType.BOOLEAN:
            self.advance()
            return ast.TermExpr(Literal(tok.value, datatype=IRI(XSD_BOOLEAN)))
        raise self.error("expected expression")

    def _builtin_call(self) -> ast.Expression:
        tok = self.current
        if tok.type != TokenType.KEYWORD or tok.value not in _BUILTIN_ARITY:
            raise self.error("expected built-in call")
        name = self.advance().value
        lo, hi = _BUILTIN_ARITY[name]
        self.expect_op("(")
        args: List[ast.Expression] = []
        if not self.at_op(")"):
            args.append(self._expression())
            while self.eat_op(","):
                args.append(self._expression())
        self.expect_op(")")
        if not (lo <= len(args) <= hi):
            raise SparqlSyntaxError(
                f"{name} expects {lo}"
                + (f"..{hi}" if hi != lo else "")
                + f" arguments, got {len(args)}",
                tok.line,
                tok.column,
            )
        return ast.FunctionCall(name, tuple(args))


def _numeric_literal(lexeme: str) -> Literal:
    if lexeme.isdigit():
        return Literal(lexeme, datatype=IRI(XSD_INTEGER))
    if "e" in lexeme or "E" in lexeme:
        return Literal(lexeme, datatype=IRI(XSD_DOUBLE))
    return Literal(lexeme, datatype=IRI(XSD_DECIMAL))
