"""Solution mappings and the operations on sets of mappings.

Sect. IV-A of the paper adopts the semantics of Pérez, Arenas & Gutierrez
("Semantics and complexity of SPARQL", TODS 2009): a *solution mapping* µ
is a partial function from variables V to RDF terms U; two mappings are
*compatible* when every shared variable has the same value; and for sets
of mappings Ω1, Ω2:

* join:        Ω1 ⋈ Ω2 = { µ1 ∪ µ2 | µ1 ∈ Ω1, µ2 ∈ Ω2, µ1 ~ µ2 }
* union:       Ω1 ∪ Ω2 = { µ | µ ∈ Ω1 or µ ∈ Ω2 }
* difference:  Ω1 − Ω2 = { µ ∈ Ω1 | ∀ µ' ∈ Ω2: µ and µ' not compatible }
* left join:   Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 − Ω2)

This module implements those operations with set semantics, exactly as the
paper states them, and they are exercised by property-based tests for the
algebraic laws (associativity/commutativity of ⋈ and ∪) that the paper's
distributed optimizations rely on.

Representation: a mapping is a *schema* (an interned tuple of variables in
name order) plus a parallel tuple of term values. Schemas are shared
across every mapping with the same domain, so the hot operations —
compatibility, merge, projection, join-key extraction — compile down to
cached index plans over small tuples instead of per-row dict work. RDF
terms are interned (:mod:`repro.rdf.terms`), which makes every value
comparison inside those kernels a pointer check.
"""

from __future__ import annotations

from typing import (
    Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional,
    Set, Tuple,
)

from ..rdf.terms import RDFTerm, Variable
from ..rdf.triple import Triple, TriplePattern

__all__ = [
    "SolutionMapping",
    "SolutionSet",
    "EMPTY_MAPPING",
    "compatible",
    "merge",
    "join",
    "union",
    "minus",
    "left_outer_join",
    "conditional_left_outer_join",
    "combine_sets",
    "match_pattern",
]


class _Schema:
    """An interned domain: variables in name order plus lookup tables.

    Two mappings with equal domains share one schema object, so schema
    comparison inside the kernels is an identity check and every derived
    plan (merge / projection / compatibility) can be cached per schema
    pair instead of recomputed per row.
    """

    __slots__ = ("vars", "domain", "index", "hash")

    _cache: Dict[Tuple[Variable, ...], "_Schema"] = {}

    @classmethod
    def of(cls, vars_tuple: Tuple[Variable, ...]) -> "_Schema":
        schema = cls._cache.get(vars_tuple)
        if schema is None:
            schema = object.__new__(cls)
            schema.vars = vars_tuple
            schema.domain = frozenset(vars_tuple)
            schema.index = {v: i for i, v in enumerate(vars_tuple)}
            schema.hash = hash(vars_tuple)
            cls._cache[vars_tuple] = schema
        return schema


_EMPTY_SCHEMA = _Schema.of(())

#: (left schema, right schema) → (output schema, ((take_left, index), ...)).
_MERGE_PLANS: Dict[Tuple[_Schema, _Schema], Tuple[_Schema, Tuple[Tuple[bool, int], ...]]] = {}

#: (schema, kept domain) → (output schema, value indices).
_PROJECT_PLANS: Dict[Tuple[_Schema, FrozenSet[Variable]], Tuple[_Schema, Tuple[int, ...]]] = {}

#: (schema A, schema B) → index pairs of the variables they share.
_COMPAT_PLANS: Dict[Tuple[_Schema, _Schema], Tuple[Tuple[int, int], ...]] = {}

#: (row schema, shared-variable schema) → (key sub-schema, value indices).
_KEY_PLANS: Dict[Tuple[_Schema, _Schema], Tuple[_Schema, Tuple[int, ...]]] = {}


def _name_key(pair):
    return pair[0].name


class SolutionMapping:
    """An immutable partial function µ : V → U.

    Hashable so that solution *sets* deduplicate naturally, as required by
    the set semantics of the paper.
    """

    __slots__ = ("_schema", "_values", "_hash", "_size", "_skey")

    def __init__(self, bindings: Optional[Mapping[Variable, RDFTerm]] = None) -> None:
        if bindings:
            for var in bindings:
                if not isinstance(var, Variable):
                    raise TypeError(f"mapping keys must be Variables, got {var!r}")
            pairs = sorted(bindings.items(), key=_name_key)
            schema = _Schema.of(tuple([v for v, _ in pairs]))
            values: Tuple[RDFTerm, ...] = tuple([t for _, t in pairs])
        else:
            schema = _EMPTY_SCHEMA
            values = ()
        self._schema = schema
        self._values = values
        self._hash = schema.hash ^ hash(values)
        self._size = None  # wire-size cache (repro.net.sizes)
        self._skey = None  # canonical sort-key cache (repro.net.wire)

    #: (schema, values) → canonical instance. Mappings are immutable, so
    #: the kernels intern them: the same row decoded or merged twice is
    #: one object, and its wire-size / sort-key caches survive re-shipping
    #: along aggregation chains.
    _intern: Dict[Tuple["_Schema", Tuple[RDFTerm, ...]], "SolutionMapping"] = {}

    @classmethod
    def _make(cls, schema: _Schema, values: Tuple[RDFTerm, ...]) -> "SolutionMapping":
        """Internal fast constructor: *values* must align with *schema*."""
        key = (schema, values)
        self = cls._intern.get(key)
        if self is None:
            self = object.__new__(cls)
            self._schema = schema
            self._values = values
            self._hash = schema.hash ^ hash(values)
            self._size = None
            self._skey = None
            cls._intern[key] = self
        return self

    # ------------------------------------------------------------- access

    def domain(self) -> FrozenSet[Variable]:
        """dom(µ): the variables on which µ is defined."""
        return self._schema.domain

    def get(self, var: Variable) -> Optional[RDFTerm]:
        i = self._schema.index.get(var)
        return None if i is None else self._values[i]

    def __getitem__(self, var: Variable) -> RDFTerm:
        i = self._schema.index.get(var)
        if i is None:
            raise KeyError(var)
        return self._values[i]

    def __contains__(self, var: Variable) -> bool:
        return var in self._schema.index

    def items(self) -> Iterator[Tuple[Variable, RDFTerm]]:
        return zip(self._schema.vars, self._values)

    def as_dict(self) -> Dict[Variable, RDFTerm]:
        return dict(zip(self._schema.vars, self._values))

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SolutionMapping):
            return NotImplemented
        return self._schema is other._schema and self._values == other._values

    def __reduce__(self):
        # Re-intern schemas (and terms) on unpickle, e.g. across the
        # multiprocessing transport.
        return (SolutionMapping, (self.as_dict(),))

    def project(self, variables: Iterable[Variable]) -> "SolutionMapping":
        schema = self._schema
        keep = variables if isinstance(variables, frozenset) else frozenset(variables)
        plan = _PROJECT_PLANS.get((schema, keep))
        if plan is None:
            idxs = tuple([i for i, v in enumerate(schema.vars) if v in keep])
            out_schema = _Schema.of(tuple([schema.vars[i] for i in idxs]))
            plan = _PROJECT_PLANS[(schema, keep)] = (out_schema, idxs)
        out_schema, idxs = plan
        values = self._values
        return SolutionMapping._make(out_schema, tuple([values[i] for i in idxs]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"?{v.name}={t.n3()}" for v, t in self.items())
        return f"µ{{{inner}}}"


EMPTY_MAPPING = SolutionMapping()
SolutionMapping._intern[(_EMPTY_SCHEMA, ())] = EMPTY_MAPPING

#: A set of solution mappings Ω.
SolutionSet = Set[SolutionMapping]


def _compat_plan(s1: _Schema, s2: _Schema) -> Tuple[Tuple[int, int], ...]:
    plan = _COMPAT_PLANS.get((s1, s2))
    if plan is None:
        index2 = s2.index
        plan = tuple(
            (i, index2[v]) for i, v in enumerate(s1.vars) if v in index2
        )
        _COMPAT_PLANS[(s1, s2)] = plan
    return plan


def compatible(mu1: SolutionMapping, mu2: SolutionMapping) -> bool:
    """µ1 ~ µ2: every shared variable is bound to the same term."""
    s1 = mu1._schema
    s2 = mu2._schema
    if s1 is s2:
        return mu1._values == mu2._values
    v1 = mu1._values
    v2 = mu2._values
    for i, j in _compat_plan(s1, s2):
        # Terms are interned: equality is identity.
        if v1[i] is not v2[j]:
            return False
    return True


def _merge_plan(s1: _Schema, s2: _Schema):
    plan = _MERGE_PLANS.get((s1, s2))
    if plan is None:
        merged: Dict[Variable, Tuple[bool, int]] = {
            v: (True, i) for i, v in enumerate(s1.vars)
        }
        # Right side wins on shared variables (callers guarantee
        # compatibility, so the values agree anyway).
        for j, v in enumerate(s2.vars):
            merged[v] = (False, j)
        ordered = sorted(merged, key=lambda v: v.name)
        out_schema = _Schema.of(tuple(ordered))
        ops = tuple(merged[v] for v in ordered)
        plan = _MERGE_PLANS[(s1, s2)] = (out_schema, ops)
    return plan


def merge(mu1: SolutionMapping, mu2: SolutionMapping) -> SolutionMapping:
    """µ1 ∪ µ2 for compatible mappings (caller must ensure compatibility)."""
    s1 = mu1._schema
    s2 = mu2._schema
    if s2 is _EMPTY_SCHEMA:
        return mu1
    if s1 is _EMPTY_SCHEMA or s1 is s2:
        return mu2
    out_schema, ops = _merge_plan(s1, s2)
    v1 = mu1._values
    v2 = mu2._values
    return SolutionMapping._make(
        out_schema, tuple([v1[i] if left else v2[i] for left, i in ops])
    )


def _key_plan(schema: _Schema, shared_schema: _Schema):
    """How *schema* projects onto the join key: the sub-schema of shared
    variables it actually binds, plus the value indices to extract."""
    plan = _KEY_PLANS.get((schema, shared_schema))
    if plan is None:
        index = schema.index
        bound = [v for v in shared_schema.vars if v in index]
        sub = _Schema.of(tuple(bound))
        idxs = tuple(index[v] for v in bound)
        plan = _KEY_PLANS[(schema, shared_schema)] = (sub, idxs)
    return plan


def join(omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]) -> SolutionSet:
    """Ω1 ⋈ Ω2 with a hash-join on the shared variables.

    Falls back to a nested-loop cross product when the inputs share no
    variables (every pair is then compatible by definition). Rows that
    leave some shared variable unbound (partial µ) are grouped by their
    key sub-schema and probed with cached compatibility plans.
    """
    left = list(omega1)
    right = list(omega2)
    if not left or not right:
        return set()

    dom1: Set[Variable] = set()
    for schema in {mu._schema for mu in left}:
        dom1 |= schema.domain
    dom2: Set[Variable] = set()
    for schema in {mu._schema for mu in right}:
        dom2 |= schema.domain
    shared = dom1 & dom2
    if not shared:
        return {merge(m1, m2) for m1 in left for m2 in right}

    # Hash the smaller side on its projection onto the shared variables.
    if len(right) < len(left):
        left, right = right, left
    shared_schema = _Schema.of(tuple(sorted(shared, key=lambda v: v.name)))

    # Buckets grouped by key sub-schema: in the common case every row
    # binds every shared variable and there is exactly one group.
    groups: Dict[_Schema, Dict[Tuple[RDFTerm, ...], List[SolutionMapping]]] = {}
    for mu in left:
        sub, idxs = _key_plan(mu._schema, shared_schema)
        values = mu._values
        key = tuple([values[i] for i in idxs])
        group = groups.get(sub)
        if group is None:
            group = groups[sub] = {}
        bucket = group.get(key)
        if bucket is None:
            group[key] = [mu]
        else:
            bucket.append(mu)

    full_group = groups.get(shared_schema)
    has_partial = len(groups) > (1 if full_group is not None else 0)

    out: SolutionSet = set()
    add = out.add
    for mu2 in right:
        sub2, idxs2 = _key_plan(mu2._schema, shared_schema)
        values2 = mu2._values
        key2 = tuple([values2[i] for i in idxs2])
        if sub2 is shared_schema:
            if full_group is not None:
                bucket = full_group.get(key2)
                if bucket is not None:
                    for mu1 in bucket:
                        add(merge(mu1, mu2))
            if has_partial:
                # Also any bucket with a *smaller* domain whose bound key
                # values agree with this row's.
                for sub, group in groups.items():
                    if sub is shared_schema:
                        continue
                    plan = _compat_plan(sub, sub2)
                    for key, mus in group.items():
                        if all(key[i] is key2[j] for i, j in plan):
                            for mu1 in mus:
                                add(merge(mu1, mu2))
        else:
            # Partial probe row: every bucket with compatible bound shared
            # variables may join.
            for sub, group in groups.items():
                plan = _compat_plan(sub, sub2)
                for key, mus in group.items():
                    if all(key[i] is key2[j] for i, j in plan):
                        for mu1 in mus:
                            add(merge(mu1, mu2))
    return out


def union(omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]) -> SolutionSet:
    """Ω1 ∪ Ω2."""
    return set(omega1) | set(omega2)


def minus(omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]) -> SolutionSet:
    """Ω1 − Ω2: mappings of Ω1 compatible with *no* mapping of Ω2."""
    right = list(omega2)
    return {mu for mu in omega1 if not any(compatible(mu, nu) for nu in right)}


def left_outer_join(
    omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]
) -> SolutionSet:
    """Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 − Ω2) (paper, Sect. IV-E)."""
    left = list(omega1)
    right = list(omega2)
    return join(left, right) | minus(left, right)


def conditional_left_outer_join(
    omega1: Iterable[SolutionMapping],
    omega2: Iterable[SolutionMapping],
    passes: Callable[[SolutionMapping], bool],
) -> SolutionSet:
    """Ω1 ⟕_C Ω2: joined solutions must satisfy *passes*; a left solution
    with no passing partner survives unextended (the spec's LeftJoin with
    an embedded condition, paper footnote 16).

    *passes* is a plain predicate so this module stays independent of the
    expression evaluator; callers wrap their condition with
    :func:`repro.sparql.expr.filter_passes`.
    """
    out: SolutionSet = set()
    right = list(omega2)
    for mu in omega1:
        extended = False
        for nu in join([mu], right):
            if passes(nu):
                out.add(nu)
                extended = True
        if not extended:
            out.add(mu)
    return out


def combine_sets(
    op: str,
    omega1: Iterable[SolutionMapping],
    omega2: Iterable[SolutionMapping],
    passes: Optional[Callable[[SolutionMapping], bool]] = None,
) -> SolutionSet:
    """The combine operator every join site runs: op ∈ {join, union,
    minus, leftjoin} with an optional condition predicate.

    For leftjoin the condition is part of the operator semantics
    (:func:`conditional_left_outer_join`); for the other ops it is a
    post-selection over the combined set.
    """
    if op == "leftjoin":
        if passes is None:
            return left_outer_join(omega1, omega2)
        return conditional_left_outer_join(omega1, omega2, passes)
    if op == "join":
        out = join(omega1, omega2)
    elif op == "union":
        out = union(omega1, omega2)
    elif op == "minus":
        out = minus(omega1, omega2)
    else:
        raise ValueError(f"unknown combine op {op!r}")
    if passes is not None:
        out = {mu for mu in out if passes(mu)}
    return out


def compile_extractor(pattern: TriplePattern):
    """A binding extractor for triples already known to match *pattern*.

    :meth:`repro.rdf.graph.Graph.triples` verifies concrete positions and
    repeated-variable consistency during the index walk, so per-triple
    work reduces to picking the variable positions out of the triple. The
    schema and position plan are computed once per pattern; the returned
    callable builds each mapping with the fast constructor.
    """
    seen: Dict[Variable, int] = {}
    for i, term in enumerate((pattern.s, pattern.p, pattern.o)):
        if type(term) is Variable and term not in seen:
            seen[term] = i
    if not seen:
        return lambda triple: EMPTY_MAPPING
    pairs = sorted(seen.items(), key=_name_key)
    schema = _Schema.of(tuple([v for v, _ in pairs]))
    idxs = tuple([i for _, i in pairs])

    make = SolutionMapping._make

    def extract(triple: Triple) -> SolutionMapping:
        values = (triple.s, triple.p, triple.o)
        return make(schema, tuple([values[i] for i in idxs]))

    return extract


def match_pattern(pattern: TriplePattern, triple: Triple) -> Optional[SolutionMapping]:
    """The µ with dom(µ) = var(t) and µ(t) = triple, or None.

    This is the paper's (clarified) base case of graph pattern evaluation:
    consistent bindings are required when a variable repeats.
    """
    bindings: Dict[Variable, RDFTerm] = {}
    for pat, val in ((pattern.s, triple.s), (pattern.p, triple.p), (pattern.o, triple.o)):
        if type(pat) is Variable:
            bound = bindings.get(pat)
            if bound is None:
                bindings[pat] = val
            elif bound is not val:  # interned terms: identity is equality
                return None
        elif pat is not val:
            return None
    if not bindings:
        return EMPTY_MAPPING
    pairs = sorted(bindings.items(), key=_name_key)
    return SolutionMapping._make(
        _Schema.of(tuple([v for v, _ in pairs])),
        tuple([t for _, t in pairs]),
    )
