"""Solution mappings and the operations on sets of mappings.

Sect. IV-A of the paper adopts the semantics of Pérez, Arenas & Gutierrez
("Semantics and complexity of SPARQL", TODS 2009): a *solution mapping* µ
is a partial function from variables V to RDF terms U; two mappings are
*compatible* when every shared variable has the same value; and for sets
of mappings Ω1, Ω2:

* join:        Ω1 ⋈ Ω2 = { µ1 ∪ µ2 | µ1 ∈ Ω1, µ2 ∈ Ω2, µ1 ~ µ2 }
* union:       Ω1 ∪ Ω2 = { µ | µ ∈ Ω1 or µ ∈ Ω2 }
* difference:  Ω1 − Ω2 = { µ ∈ Ω1 | ∀ µ' ∈ Ω2: µ and µ' not compatible }
* left join:   Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 − Ω2)

This module implements those operations with set semantics, exactly as the
paper states them, and they are exercised by property-based tests for the
algebraic laws (associativity/commutativity of ⋈ and ∪) that the paper's
distributed optimizations rely on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from ..rdf.terms import RDFTerm, Variable
from ..rdf.triple import Triple, TriplePattern

__all__ = [
    "SolutionMapping",
    "SolutionSet",
    "EMPTY_MAPPING",
    "compatible",
    "merge",
    "join",
    "union",
    "minus",
    "left_outer_join",
    "match_pattern",
]


class SolutionMapping:
    """An immutable partial function µ : V → U.

    Hashable so that solution *sets* deduplicate naturally, as required by
    the set semantics of the paper.
    """

    __slots__ = ("_bindings", "_hash")

    def __init__(self, bindings: Optional[Mapping[Variable, RDFTerm]] = None) -> None:
        items: Dict[Variable, RDFTerm] = dict(bindings) if bindings else {}
        for var in items:
            if not isinstance(var, Variable):
                raise TypeError(f"mapping keys must be Variables, got {var!r}")
        self._bindings: Tuple[Tuple[Variable, RDFTerm], ...] = tuple(
            sorted(items.items(), key=lambda kv: kv[0].name)
        )
        self._hash = hash(self._bindings)

    # ------------------------------------------------------------- access

    def domain(self) -> FrozenSet[Variable]:
        """dom(µ): the variables on which µ is defined."""
        return frozenset(v for v, _ in self._bindings)

    def get(self, var: Variable) -> Optional[RDFTerm]:
        for v, t in self._bindings:
            if v == var:
                return t
        return None

    def __getitem__(self, var: Variable) -> RDFTerm:
        value = self.get(var)
        if value is None:
            raise KeyError(var)
        return value

    def __contains__(self, var: Variable) -> bool:
        return self.get(var) is not None

    def items(self) -> Iterator[Tuple[Variable, RDFTerm]]:
        return iter(self._bindings)

    def as_dict(self) -> Dict[Variable, RDFTerm]:
        return dict(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SolutionMapping):
            return NotImplemented
        return self._bindings == other._bindings

    def project(self, variables: Iterable[Variable]) -> "SolutionMapping":
        keep = set(variables)
        return SolutionMapping({v: t for v, t in self._bindings if v in keep})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"?{v.name}={t.n3()}" for v, t in self._bindings)
        return f"µ{{{inner}}}"


EMPTY_MAPPING = SolutionMapping()

#: A set of solution mappings Ω.
SolutionSet = Set[SolutionMapping]


def compatible(mu1: SolutionMapping, mu2: SolutionMapping) -> bool:
    """µ1 ~ µ2: every shared variable is bound to the same term."""
    if len(mu1) > len(mu2):
        mu1, mu2 = mu2, mu1
    for var, term in mu1.items():
        other = mu2.get(var)
        if other is not None and other != term:
            return False
    return True


def merge(mu1: SolutionMapping, mu2: SolutionMapping) -> SolutionMapping:
    """µ1 ∪ µ2 for compatible mappings (caller must ensure compatibility)."""
    combined = mu1.as_dict()
    combined.update(mu2.as_dict())
    return SolutionMapping(combined)


def join(omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]) -> SolutionSet:
    """Ω1 ⋈ Ω2 with a hash-join on the shared variables.

    Falls back to a nested-loop cross product when the inputs share no
    variables (every pair is then compatible by definition).
    """
    left = list(omega1)
    right = list(omega2)
    if not left or not right:
        return set()

    shared = _common_domain(left, right)
    if not shared:
        return {merge(m1, m2) for m1 in left for m2 in right}

    # Hash the smaller side on its projection onto the shared variables.
    if len(right) < len(left):
        left, right = right, left
    buckets: Dict[SolutionMapping, list[SolutionMapping]] = {}
    for mu in left:
        buckets.setdefault(mu.project(shared), []).append(mu)

    out: SolutionSet = set()
    for mu2 in right:
        key = mu2.project(shared)
        # A mapping may leave some shared variable unbound (partial µ), so
        # probe every bucket whose key is compatible with this one.
        if len(key) == len(shared):
            for mu1 in buckets.get(key, ()):
                out.add(merge(mu1, mu2))
            # Also any bucket with a *smaller* domain that is compatible.
            if any(len(k) < len(shared) for k in buckets):
                for k, mus in buckets.items():
                    if len(k) < len(shared) and compatible(k, key):
                        out.update(merge(m1, mu2) for m1 in mus)
        else:
            for k, mus in buckets.items():
                if compatible(k, key):
                    out.update(merge(m1, mu2) for m1 in mus)
    return out


def _common_domain(left: Iterable[SolutionMapping], right: Iterable[SolutionMapping]) -> FrozenSet[Variable]:
    dom1: Set[Variable] = set()
    for mu in left:
        dom1.update(mu.domain())
    dom2: Set[Variable] = set()
    for mu in right:
        dom2.update(mu.domain())
    return frozenset(dom1 & dom2)


def union(omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]) -> SolutionSet:
    """Ω1 ∪ Ω2."""
    return set(omega1) | set(omega2)


def minus(omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]) -> SolutionSet:
    """Ω1 − Ω2: mappings of Ω1 compatible with *no* mapping of Ω2."""
    right = list(omega2)
    return {mu for mu in omega1 if not any(compatible(mu, nu) for nu in right)}


def left_outer_join(
    omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]
) -> SolutionSet:
    """Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 − Ω2) (paper, Sect. IV-E)."""
    left = list(omega1)
    right = list(omega2)
    return join(left, right) | minus(left, right)


def match_pattern(pattern: TriplePattern, triple: Triple) -> Optional[SolutionMapping]:
    """The µ with dom(µ) = var(t) and µ(t) = triple, or None.

    This is the paper's (clarified) base case of graph pattern evaluation:
    consistent bindings are required when a variable repeats.
    """
    bindings: Dict[Variable, RDFTerm] = {}
    for pat, val in zip(pattern, triple):
        if isinstance(pat, Variable):
            bound = bindings.get(pat)
            if bound is None:
                bindings[pat] = val
            elif bound != val:
                return None
        elif pat != val:
            return None
    return SolutionMapping(bindings)
