"""Tokenizer for the SPARQL surface syntax.

Produces a flat token stream for the recursive-descent parser. The token
set covers the subset of SPARQL 1.0 the paper uses (Sect. IV-A): the four
query forms, PREFIX/BASE, FROM / FROM NAMED, group graph patterns with
``.``/``;``/``,`` shorthand, UNION, OPTIONAL, FILTER with built-in calls
and operator expressions, and the solution sequence modifiers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from .errors import SparqlSyntaxError

__all__ = ["Token", "TokenType", "tokenize"]


class TokenType:
    """Token categories (plain strings; cheap and easy to match on)."""

    KEYWORD = "KEYWORD"
    IRIREF = "IRIREF"
    PNAME = "PNAME"          # prefixed name  foaf:knows  or bare prefix  foaf:
    VAR = "VAR"              # ?x or $x
    STRING = "STRING"
    LANGTAG = "LANGTAG"
    NUMBER = "NUMBER"
    BOOLEAN = "BOOLEAN"
    BLANK = "BLANK"          # _:label
    OP = "OP"                # punctuation / operators
    EOF = "EOF"


#: Keywords recognized case-insensitively (SPARQL keywords are
#: case-insensitive; variables and IRIs are not).
KEYWORDS = {
    "SELECT", "CONSTRUCT", "ASK", "DESCRIBE", "WHERE", "PREFIX", "BASE",
    "FROM", "NAMED", "FILTER", "OPTIONAL", "UNION", "GRAPH", "ORDER", "BY",
    "ASC", "DESC", "LIMIT", "OFFSET", "DISTINCT", "REDUCED", "REGEX",
    "BOUND", "ISIRI", "ISURI", "ISBLANK", "ISLITERAL", "STR", "LANG",
    "DATATYPE", "LANGMATCHES", "SAMETERM", "A", "TRUE", "FALSE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\s]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z_0-9]*)
  | (?P<STRING>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<LANGTAG>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<NUMBER>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<BLANK>_:[A-Za-z][A-Za-z0-9_.-]*)
  | (?P<PNAME>[A-Za-z_][A-Za-z_0-9.-]*?:[A-Za-z_0-9.-]*|:[A-Za-z_0-9.-]*)
  | (?P<NAME>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<OP>\^\^|&&|\|\||!=|<=|>=|[=<>!*/+\-{}().;,\[\]])
    """,
    re.VERBOSE,
)

_STRING_UNESCAPES = {
    "\\n": "\n", "\\r": "\r", "\\t": "\t", '\\"': '"', "\\'": "'", "\\\\": "\\",
}
_STRING_ESCAPE_RE = re.compile(r"\\(?:[ntr\"'\\]|u[0-9A-Fa-f]{4}|U[0-9A-Fa-f]{8})")


def _unescape_string(body: str) -> str:
    def sub(m: re.Match[str]) -> str:
        tok = m.group(0)
        if tok in _STRING_UNESCAPES:
            return _STRING_UNESCAPES[tok]
        return chr(int(tok[2:], 16))

    return _STRING_ESCAPE_RE.sub(sub, body)


@dataclass(frozen=True, slots=True)
class Token:
    type: str
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; always ends with an EOF token.

    Raises :class:`SparqlSyntaxError` on any character that starts no
    token.
    """
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(text)
    while pos < n:
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise SparqlSyntaxError(
                f"unexpected character {text[pos]!r}", line, pos - line_start + 1
            )
        kind = m.lastgroup
        value = m.group(0)
        column = pos - line_start + 1
        if kind in ("WS", "COMMENT"):
            pass  # skipped; line accounting below
        elif kind == "IRIREF":
            tokens.append(Token(TokenType.IRIREF, value[1:-1], line, column))
        elif kind == "VAR":
            tokens.append(Token(TokenType.VAR, value[1:], line, column))
        elif kind == "STRING":
            tokens.append(Token(TokenType.STRING, _unescape_string(value[1:-1]), line, column))
        elif kind == "LANGTAG":
            tokens.append(Token(TokenType.LANGTAG, value[1:], line, column))
        elif kind == "NUMBER":
            tokens.append(Token(TokenType.NUMBER, value, line, column))
        elif kind == "BLANK":
            tokens.append(Token(TokenType.BLANK, value[2:], line, column))
        elif kind == "PNAME":
            tokens.append(Token(TokenType.PNAME, value, line, column))
        elif kind == "NAME":
            upper = value.upper()
            if upper in ("TRUE", "FALSE"):
                tokens.append(Token(TokenType.BOOLEAN, upper.lower(), line, column))
            elif upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, line, column))
            else:
                raise SparqlSyntaxError(f"unknown identifier {value!r}", line, column)
        else:  # OP
            tokens.append(Token(TokenType.OP, value, line, column))
        # Line accounting for the consumed span (matters only for WS/comments
        # containing newlines, but do it uniformly).
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = m.end()
    tokens.append(Token(TokenType.EOF, "", line, n - line_start + 1))
    return tokens
