"""Durable state & recovery (S13): write-ahead logs, snapshots, restart.

The paper's churn story (Sect. III-C/D) assumes a departed or crashed
node can come back and the system converges — but convergence is only
possible if the node's state survives the crash. This package is that
durability layer: a CRC-guarded line-record write-ahead log built on the
N-Triples codec, periodic snapshots with log compaction, durable
wrappers for the RDF graph and the location table that replay
snapshot+log on open, a system-level membership journal, and whole-system
recovery from a state directory.
"""

from .codec import (
    CorruptRecord,
    PayloadCursor,
    Record,
    decode_record,
    encode_record,
    encode_str,
)
from .wal import WriteAheadLog
from .snapshot import SnapshotStore
from .durable import DurableGraph, DurableLocationTable
from .journal import SystemJournal, node_state_dir
from .recovery import recover_system

__all__ = [
    "CorruptRecord",
    "PayloadCursor",
    "Record",
    "decode_record",
    "encode_record",
    "encode_str",
    "WriteAheadLog",
    "SnapshotStore",
    "DurableGraph",
    "DurableLocationTable",
    "SystemJournal",
    "node_state_dir",
    "recover_system",
]
