"""The WAL line-record codec.

Every durable file in the state directory — write-ahead logs and the
membership journal — is a sequence of newline-terminated *records*::

    <crc:08x> <lsn> <rtype> <payload>

``crc`` is the CRC-32 of everything after it, so a record is either
intact or detectably corrupt; ``lsn`` is the log sequence number that
ties log records to snapshots; ``rtype`` names the mutation; ``payload``
is record-type specific.

Payloads reuse the N-Triples surface syntax rather than inventing a new
escaping scheme: a triple record's payload *is* the triple's N-Triples
line (``Triple.n3()``), and free-form strings (node ids) are encoded as
N-Triples literals (``Literal(s).n3()``), which the existing
``\\uXXXX``-escaping writer guarantees to be newline- and
control-character-free. :class:`PayloadCursor` walks a payload
field-by-field with the same cursor parser the N-Triples reader uses.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import Optional

from ..rdf.ntriples import NTriplesError, _LineParser
from ..rdf.terms import Literal

__all__ = [
    "CorruptRecord",
    "Record",
    "encode_record",
    "decode_record",
    "encode_str",
    "PayloadCursor",
    "PAYLOAD_ERRORS",
]


class CorruptRecord(ValueError):
    """A record line failed its CRC or structural check."""


@dataclass(frozen=True, slots=True)
class Record:
    """One decoded WAL record."""

    lsn: int
    rtype: str
    payload: str


_RECORD_RE = re.compile(r"^([0-9a-f]{8}) (\d+) ([a-z-]+)(?: (.*))?$")
_INT_RE = re.compile(r"-?\d+")


def _crc(body: str) -> str:
    return f"{zlib.crc32(body.encode('utf-8')) & 0xFFFFFFFF:08x}"


def encode_record(lsn: int, rtype: str, payload: str = "") -> str:
    """Serialize one record to its line (terminating newline included)."""
    if "\n" in payload or "\r" in payload:
        raise ValueError("record payload must be newline-free")
    body = f"{lsn} {rtype} {payload}" if payload else f"{lsn} {rtype}"
    return f"{_crc(body)} {body}\n"


def decode_record(line: str) -> Record:
    """Parse and CRC-verify one record line (without its newline)."""
    m = _RECORD_RE.match(line)
    if not m:
        raise CorruptRecord(f"malformed record line: {line[:80]!r}")
    crc, lsn, rtype, payload = m.group(1), m.group(2), m.group(3), m.group(4)
    body = line[len(crc) + 1:]
    if _crc(body) != crc:
        raise CorruptRecord(f"CRC mismatch on record line: {line[:80]!r}")
    return Record(int(lsn), rtype, payload or "")


# ------------------------------------------------------------- payloads


def encode_str(value: str) -> str:
    """Encode a free-form string as one N-Triples literal field."""
    return Literal(value).n3()


class PayloadCursor:
    """Sequential field reader over a record payload.

    Fields are space-separated; string fields are N-Triples literals (and
    may therefore contain escaped spaces), integer fields are plain
    decimals, term fields are any N-Triples term.
    """

    def __init__(self, payload: str) -> None:
        self._parser = _LineParser(payload, 1)

    def string(self) -> str:
        term = self._parser.term()
        if not isinstance(term, Literal):
            raise CorruptRecord(f"expected a literal field, got {term!r}")
        return term.lexical

    def term(self):
        return self._parser.term()

    def integer(self) -> int:
        p = self._parser
        p.skip_ws()
        m = _INT_RE.match(p.line, p.pos)
        if not m:
            raise CorruptRecord(f"expected an integer field in {p.line!r}")
        p.pos = m.end()
        return int(m.group(0))

    def optional_integer(self) -> Optional[int]:
        """An integer field or the ``-`` placeholder (None)."""
        p = self._parser
        p.skip_ws()
        if p.pos < len(p.line) and p.line[p.pos] == "-" and not _INT_RE.match(
            p.line, p.pos
        ):
            p.pos += 1
            return None
        return self.integer()

    def at_end(self) -> bool:
        p = self._parser
        p.skip_ws()
        return p.pos >= len(p.line)

    def rest(self) -> str:
        p = self._parser
        p.skip_ws()
        out = p.line[p.pos:]
        p.pos = len(p.line)
        return out


#: Exceptions a malformed payload may raise while cursoring: the codec's
#: own CRC/structure errors plus the N-Triples parser's — both mean the
#: record is corrupt, and replay treats them identically.
PAYLOAD_ERRORS = (CorruptRecord, NTriplesError)
