"""Durable wrappers: the RDF graph and the location table, on disk.

:class:`DurableGraph` and :class:`DurableLocationTable` subclass the
in-memory structures and make every mutation crash-safe: the mutation is
appended to the component's write-ahead log *before* the in-memory
update is acknowledged, and opening the component replays the newest
intact snapshot plus the log suffix past it — so a storage node or index
node killed at any instant reopens to exactly the state it had
acknowledged.

WAL record vocabulary (payloads per :mod:`~repro.storage.codec`):

=========  =============================================  ==============
rtype      payload                                        component
=========  =============================================  ==============
``add``    the triple's N-Triples line                    graph
``del``    the triple's N-Triples line                    graph
``put``    ``<key> <storage literal> <count>``            location table
``rm``     ``<key> <storage literal> <count or ->``       location table
``rmnode`` ``<storage literal>``                          location table
``row``    ``<key> (<storage literal> <freq>)*``          location table
``drop``   ``<key>``                                      location table
``epoch``  ``<membership epoch>``                         both
=========  =============================================  ==============
"""

from __future__ import annotations

import pathlib
from typing import Dict, Iterable, Optional

from ..overlay.location_table import LocationTable
from ..rdf.graph import Graph
from ..rdf.ntriples import parse_ntriples, serialize_ntriples
from ..rdf.triple import Triple
from .codec import PAYLOAD_ERRORS, CorruptRecord, PayloadCursor, encode_str
from .snapshot import SnapshotStore
from .wal import WriteAheadLog

__all__ = ["DurableGraph", "DurableLocationTable"]


class _DurableMixin:
    """Shared open/replay/checkpoint machinery for durable components."""

    __slots__ = ()

    def _open_storage(self, state_dir, name: str, fsync: bool,
                      snapshot_every: Optional[int], counters) -> None:
        self._dir = pathlib.Path(state_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._counters = counters
        self._wal = WriteAheadLog(self._dir / f"{name}.wal", fsync=fsync,
                                  counters=counters)
        self._snapshots = SnapshotStore(self._dir, name, fsync=fsync,
                                        counters=counters)
        self._snapshot_every = snapshot_every
        self._logging = False
        #: Last membership epoch recorded in the recovered state (None
        #: when the state never saw one) — drives the stale-entry check
        #: on restart.
        self.recovered_epoch: Optional[int] = None
        #: How this instance came up: snapshot LSN used (0 = none),
        #: records replayed, torn records truncated.
        self.recovery_info: Dict[str, int] = {
            "snapshot_lsn": 0, "records_replayed": 0, "torn_truncated": 0,
        }

    def _recover(self) -> None:
        """Load snapshot + replay log suffix; then arm logging."""
        base_lsn = 0
        snapshot = self._snapshots.load_latest()
        if snapshot is not None:
            self._load_snapshot_body(snapshot.body)
            base_lsn = snapshot.lsn
            self.recovered_epoch = snapshot.epoch
            self.recovery_info["snapshot_lsn"] = snapshot.lsn
        replayed = 0
        for record in self._wal.replay():
            if record.lsn <= base_lsn:
                # Already folded into the snapshot (a crash landed between
                # snapshot install and log reset).
                continue
            try:
                self._apply_record(record.rtype, record.payload)
            except PAYLOAD_ERRORS as exc:
                raise CorruptRecord(
                    f"{self._wal.path}: bad {record.rtype!r} record "
                    f"at LSN {record.lsn}: {exc}"
                ) from exc
            replayed += 1
        self.recovery_info["records_replayed"] = replayed
        self.recovery_info["torn_truncated"] = self._wal.torn_truncated
        if self._counters is not None:
            self._counters.wal_records_replayed += replayed
        # The log may still carry pre-snapshot records (crash before
        # reset): compact them away now that replay proved the snapshot
        # subsumes them.
        if base_lsn and replayed == 0 and self._wal.record_count:
            self._wal.reset()
        self._logging = True

    def _log(self, rtype: str, payload: str = "") -> None:
        if not self._logging:
            return
        self._wal.append(rtype, payload)
        every = self._snapshot_every
        if every and self._wal.record_count >= every:
            self.checkpoint()

    def _apply_epoch(self, rtype: str, payload: str) -> bool:
        if rtype != "epoch":
            return False
        self.recovered_epoch = PayloadCursor(payload).integer()
        return True

    def note_epoch(self, epoch: int) -> None:
        """Record the current membership epoch in the log (stale-entry
        detection baseline for a later restart)."""
        self._log("epoch", str(epoch))
        self.recovered_epoch = epoch

    def checkpoint(self, epoch: Optional[int] = None) -> int:
        """Write a full snapshot and compact the log. Returns its LSN."""
        if epoch is None:
            epoch = self.recovered_epoch
        lsn = self._wal.next_lsn - 1
        self._snapshots.write(lsn, self._snapshot_body(), epoch=epoch)
        self._wal.reset()
        self._snapshots.compact(keep=1)
        if epoch is not None:
            self.recovered_epoch = epoch
        return lsn

    def close(self) -> None:
        self._wal.close()

    # Subclass hooks -------------------------------------------------------

    def _load_snapshot_body(self, body: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def _snapshot_body(self) -> str:  # pragma: no cover
        raise NotImplementedError

    def _apply_record(self, rtype: str, payload: str) -> None:  # pragma: no cover
        raise NotImplementedError


class DurableGraph(_DurableMixin, Graph):
    """A :class:`~repro.rdf.graph.Graph` whose mutations survive crashes.

    Snapshot body: the canonical N-Triples serialization of the graph.
    Log records: one ``add``/``del`` per effective mutation (idempotent
    no-ops — re-adding a present triple, discarding an absent one — are
    not logged, so replay count equals effective mutation count).
    """

    __slots__ = ("_dir", "_counters", "_wal", "_snapshots", "_snapshot_every",
                 "_logging", "recovered_epoch", "recovery_info")

    def __init__(self, state_dir, triples: Optional[Iterable[Triple]] = None,
                 fsync: bool = False, snapshot_every: Optional[int] = None,
                 counters=None) -> None:
        Graph.__init__(self)
        self._open_storage(state_dir, "graph", fsync, snapshot_every, counters)
        self._recover()
        if triples is not None:
            self.update(triples)

    # Mutations ------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        inserted = Graph.add(self, triple)
        if inserted:
            self._log("add", triple.n3())
        return inserted

    def discard(self, triple: Triple) -> bool:
        removed = Graph.discard(self, triple)
        if removed:
            self._log("del", triple.n3())
        return removed

    # Durability hooks -----------------------------------------------------

    def _load_snapshot_body(self, body: str) -> None:
        for triple in parse_ntriples(body):
            Graph.add(self, triple)

    def _snapshot_body(self) -> str:
        return serialize_ntriples(sorted(self, key=lambda t: t.n3()))

    def _apply_record(self, rtype: str, payload: str) -> None:
        if self._apply_epoch(rtype, payload):
            return
        if rtype == "add":
            Graph.add(self, next(parse_ntriples(payload)))
        elif rtype == "del":
            Graph.discard(self, next(parse_ntriples(payload)))
        else:
            raise CorruptRecord(f"unknown graph record type {rtype!r}")


class DurableLocationTable(_DurableMixin, LocationTable):
    """A :class:`~repro.overlay.location_table.LocationTable` on disk.

    Snapshot body: one line per key — ``<key> (<storage literal>
    <freq>)*`` in sorted key order. Log records mirror the table's
    mutation API one-to-one (see the module table), so a replayed table
    is cell-for-cell identical to the lost one.
    """

    __slots__ = ("_dir", "_counters", "_wal", "_snapshots", "_snapshot_every",
                 "_logging", "recovered_epoch", "recovery_info")

    def __init__(self, state_dir, fsync: bool = False,
                 snapshot_every: Optional[int] = None, counters=None) -> None:
        LocationTable.__init__(self)
        self._open_storage(state_dir, "table", fsync, snapshot_every, counters)
        self._recover()

    # Mutations ------------------------------------------------------------

    def add(self, key: int, storage_id: str, count: int = 1) -> None:
        LocationTable.add(self, key, storage_id, count)
        self._log("put", f"{key} {encode_str(storage_id)} {count}")

    def remove(self, key: int, storage_id: str,
               count: Optional[int] = None) -> None:
        LocationTable.remove(self, key, storage_id, count)
        self._log("rm", f"{key} {encode_str(storage_id)} "
                        f"{'-' if count is None else count}")

    def remove_storage_node(self, storage_id: str) -> int:
        touched = LocationTable.remove_storage_node(self, storage_id)
        if touched:
            self._log("rmnode", encode_str(storage_id))
        return touched

    def import_row(self, key: int, cells: Dict[str, int]) -> None:
        LocationTable.import_row(self, key, cells)
        if cells:
            self._log("row", self._row_payload(key, cells))

    def drop_row(self, key: int) -> None:
        had = key in self
        LocationTable.drop_row(self, key)
        if had:
            self._log("drop", str(key))

    # Durability hooks -----------------------------------------------------

    @staticmethod
    def _row_payload(key: int, cells: Dict[str, int]) -> str:
        parts = [str(key)]
        for storage_id in sorted(cells):
            parts.append(f"{encode_str(storage_id)} {cells[storage_id]}")
        return " ".join(parts)

    def _load_snapshot_body(self, body: str) -> None:
        for line in body.splitlines():
            if not line:
                continue
            key, cells = self._parse_row(line)
            LocationTable.import_row(self, key, cells)

    @staticmethod
    def _parse_row(payload: str):
        cursor = PayloadCursor(payload)
        key = cursor.integer()
        cells: Dict[str, int] = {}
        while not cursor.at_end():
            # Two statements: the assignment form would evaluate the RHS
            # (the count) before the key (the id), inverting field order.
            storage_id = cursor.string()
            cells[storage_id] = cursor.integer()
        return key, cells

    def _snapshot_body(self) -> str:
        lines = [
            self._row_payload(key, self.row_dict(key))
            for key in sorted(self.keys())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def _apply_record(self, rtype: str, payload: str) -> None:
        if self._apply_epoch(rtype, payload):
            return
        cursor = PayloadCursor(payload)
        if rtype == "put":
            LocationTable.add(self, cursor.integer(), cursor.string(),
                              cursor.integer())
        elif rtype == "rm":
            key, sid = cursor.integer(), cursor.string()
            LocationTable.remove(self, key, sid, cursor.optional_integer())
        elif rtype == "rmnode":
            LocationTable.remove_storage_node(self, cursor.string())
        elif rtype == "row":
            key, cells = self._parse_row(payload)
            LocationTable.import_row(self, key, cells)
        elif rtype == "drop":
            LocationTable.drop_row(self, cursor.integer())
        else:
            raise CorruptRecord(f"unknown table record type {rtype!r}")
