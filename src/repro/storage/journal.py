"""The system membership journal: who is in the overlay, durably.

Per-node WALs and snapshots capture each node's *content* (its graph or
location table), but bringing a whole system back from disk also needs
the overlay's *shape*: which index nodes exist (and their ring
identifiers), which storage nodes exist (and where they attach), and
which of them had crashed or departed by the time of the crash. The
:class:`SystemJournal` is a tiny WAL of exactly those membership events,
written by :class:`~repro.overlay.system.HybridSystem` whenever its
topology changes.

Journal record vocabulary:

===================  ==============================================
rtype                payload
===================  ==============================================
``system``           ``<space bits> <replication> <successor-list>``
``index-add``        ``<node literal> <ident>``
``storage-add``      ``<node literal> <attach literal or ->``
``index-fail``       ``<node literal>``
``index-depart``     ``<node literal>``
``index-restart``    ``<node literal>``
``storage-fail``     ``<node literal>``
``storage-depart``   ``<node literal>``
``storage-restart``  ``<node literal>``
===================  ==============================================
"""

from __future__ import annotations

import pathlib
import urllib.parse
from dataclasses import dataclass
from typing import List, Optional

from .codec import CorruptRecord, PayloadCursor, encode_str
from .wal import WriteAheadLog

__all__ = ["JournalEvent", "SystemJournal", "node_state_dir"]

_NODE_EVENTS = frozenset({
    "index-add", "storage-add",
    "index-fail", "index-depart", "index-restart",
    "storage-fail", "storage-depart", "storage-restart",
})


def node_state_dir(state_dir, node_id: str) -> pathlib.Path:
    """The per-node state directory under a system state directory.

    Node ids are free-form strings (the examples use IRIs like peer
    names), so the path component is percent-encoded to stay filesystem
    safe and collision-free.
    """
    return (
        pathlib.Path(state_dir) / "nodes"
        / urllib.parse.quote(node_id, safe="")
    )


@dataclass(frozen=True, slots=True)
class JournalEvent:
    """One replayed membership event."""

    lsn: int
    kind: str
    node_id: Optional[str] = None
    ident: Optional[int] = None
    attach_to: Optional[str] = None
    #: ``system`` record fields.
    space_bits: Optional[int] = None
    replication_factor: Optional[int] = None
    successor_list_size: Optional[int] = None


class SystemJournal:
    """Membership-event log at ``<state_dir>/membership.wal``."""

    def __init__(self, state_dir, fsync: bool = False, counters=None) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self._wal = WriteAheadLog(
            self.state_dir / "membership.wal", fsync=fsync, counters=counters
        )
        #: Events recovered from disk at open, in order.
        self.events: List[JournalEvent] = [
            self._decode(record.lsn, record.rtype, record.payload or "")
            for record in self._wal.replay()
        ]

    @property
    def is_fresh(self) -> bool:
        """True when the journal holds no events (a brand-new directory)."""
        return not self.events

    # ---------------------------------------------------------------- write

    def log_system(self, space_bits: int, replication_factor: int,
                   successor_list_size: int) -> None:
        self._wal.append(
            "system",
            f"{space_bits} {replication_factor} {successor_list_size}",
        )

    def log_index_add(self, node_id: str, ident: int) -> None:
        self._wal.append("index-add", f"{encode_str(node_id)} {ident}")

    def log_storage_add(self, node_id: str,
                        attach_to: Optional[str]) -> None:
        attach = "-" if attach_to is None else encode_str(attach_to)
        self._wal.append("storage-add", f"{encode_str(node_id)} {attach}")

    def log_event(self, kind: str, node_id: str) -> None:
        """Log a fail/depart/restart event for one node."""
        if kind not in _NODE_EVENTS or kind.endswith("-add"):
            raise ValueError(f"not a node lifecycle event: {kind!r}")
        self._wal.append(kind, encode_str(node_id))

    def close(self) -> None:
        self._wal.close()

    # --------------------------------------------------------------- decode

    @staticmethod
    def _decode(lsn: int, rtype: str, payload: str) -> JournalEvent:
        cursor = PayloadCursor(payload)
        if rtype == "system":
            return JournalEvent(
                lsn, rtype,
                space_bits=cursor.integer(),
                replication_factor=cursor.integer(),
                successor_list_size=cursor.integer(),
            )
        if rtype == "index-add":
            return JournalEvent(
                lsn, rtype, node_id=cursor.string(), ident=cursor.integer()
            )
        if rtype == "storage-add":
            node_id = cursor.string()
            remainder = cursor.rest()
            attach = (
                None if remainder == "-"
                else PayloadCursor(remainder).string()
            )
            return JournalEvent(lsn, rtype, node_id=node_id, attach_to=attach)
        if rtype in _NODE_EVENTS:
            return JournalEvent(lsn, rtype, node_id=cursor.string())
        raise CorruptRecord(f"unknown journal record type {rtype!r}")
