"""Whole-system recovery: rebuild a HybridSystem from its state directory.

:func:`recover_system` models a site-wide power cycle: the membership
journal is replayed to learn the overlay's shape (identifier space,
replication policy, which index and storage nodes existed and where the
storage attached), then every surviving node is re-created with its
durable component — whose own open path replays snapshot + WAL — and the
ring is rebuilt. Nodes that had *departed* gracefully stay gone; nodes
that had merely *crashed* come back up, because a whole-site restart
restarts them too (their state directories were never removed).

The recovered system's location tables are taken verbatim from disk —
nothing is republished — so the distributed index is exactly what the
crashed system had acknowledged. Stale cells left by storage nodes that
failed *before* the crash remain, as in the live system, until lazy
cleanup removes them (Sect. III-D).
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, Optional, Tuple

from .codec import CorruptRecord
from .journal import SystemJournal

__all__ = ["recover_system"]


def _final_membership(events):
    """Fold journal events into the overlay's final shape."""
    params: Dict[str, int] = {}
    index: Dict[str, Dict[str, Any]] = {}
    storage: Dict[str, Dict[str, Any]] = {}
    for ev in events:
        if ev.kind == "system":
            params = {
                "space_bits": ev.space_bits,
                "replication_factor": ev.replication_factor,
                "successor_list_size": ev.successor_list_size,
            }
        elif ev.kind == "index-add":
            index[ev.node_id] = {"ident": ev.ident}
        elif ev.kind == "storage-add":
            storage[ev.node_id] = {"attach_to": ev.attach_to}
        elif ev.kind == "index-depart":
            index.pop(ev.node_id, None)
        elif ev.kind == "storage-depart":
            storage.pop(ev.node_id, None)
        # fail / restart events do not change what comes back after a
        # whole-site restart: a crashed node's state directory is still
        # there, so the power cycle revives it.
    return params, index, storage


def recover_system(
    state_dir,
    link=None,
    fsync: Optional[bool] = None,
    snapshot_every: Optional[int] = None,
) -> Tuple[Any, Dict[str, Any]]:
    """Bring a whole system back from *state_dir*.

    Returns ``(system, report)`` — the rebuilt
    :class:`~repro.overlay.system.HybridSystem` plus a report mapping
    ``"index"``/``"storage"`` to per-node recovery info (snapshot LSN
    used, WAL records replayed, torn records truncated).

    *fsync* / *snapshot_every* override the recovered system's durability
    settings going forward (they are per-process policy, not state).
    """
    # Local imports: storage is a lower layer than overlay.
    from ..chord.idspace import IdentifierSpace
    from ..overlay.system import HybridSystem

    state_dir = pathlib.Path(state_dir)
    journal = SystemJournal(state_dir)
    try:
        if journal.is_fresh:
            raise CorruptRecord(
                f"{state_dir} holds no system journal to recover from"
            )
        params, index, storage = _final_membership(journal.events)
    finally:
        journal.close()
    if not params:
        raise CorruptRecord(
            f"{state_dir}: journal has no system record (torn at birth?)"
        )

    system = HybridSystem(
        space=IdentifierSpace(params["space_bits"]),
        replication_factor=params["replication_factor"],
        successor_list_size=params["successor_list_size"],
        link=link,
        state_dir=state_dir,
        fsync=bool(fsync),
        snapshot_every=snapshot_every,
        _recovering=True,
    )
    try:
        report: Dict[str, Any] = {"index": {}, "storage": {}}
        for node_id in sorted(index):
            node = system.add_index_node(node_id, index[node_id]["ident"])
            report["index"][node_id] = dict(node.table.recovery_info)
        system.build_ring()
        for node_id in sorted(storage):
            node = system.add_storage_node(
                node_id,
                attach_to=storage[node_id]["attach_to"],
                publish=False,  # the recovered location tables are authoritative
            )
            report["storage"][node_id] = dict(node.graph.recovery_info)
    finally:
        system._recovering = False
    return system, report
