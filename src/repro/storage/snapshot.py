"""Point-in-time snapshots with atomic install and compaction.

A snapshot materializes a component's full state (an N-Triples graph
dump, a location-table dump) as of one WAL LSN, so recovery replays only
the log suffix past it. Files are written to a temporary name and
atomically renamed into place — a crash mid-snapshot leaves the previous
snapshot intact — and the body is CRC-guarded like WAL records, so a
damaged snapshot is detected and an older intact one is used instead.

Layout: ``<dir>/<name>-<lsn:016x>.snap`` with a one-line header::

    #repro-snapshot lsn=<n> epoch=<e> crc=<crc32-of-body:08x>

followed by the body verbatim.
"""

from __future__ import annotations

import os
import pathlib
import re
import zlib
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Snapshot", "SnapshotStore"]

_HEADER_RE = re.compile(
    r"^#repro-snapshot lsn=(\d+) epoch=(-?\d+|none) crc=([0-9a-f]{8})\n"
)


@dataclass(frozen=True, slots=True)
class Snapshot:
    """One loaded (and verified) snapshot."""

    lsn: int
    epoch: Optional[int]
    body: str
    path: pathlib.Path


class SnapshotStore:
    """Snapshot files for one named component in one directory."""

    def __init__(self, directory, name: str, fsync: bool = False,
                 counters=None) -> None:
        self.directory = pathlib.Path(directory)
        self.name = name
        self.fsync = fsync
        self.counters = counters

    # --------------------------------------------------------------- paths

    def _path(self, lsn: int) -> pathlib.Path:
        return self.directory / f"{self.name}-{lsn:016x}.snap"

    def _candidates(self) -> List[pathlib.Path]:
        """Snapshot files for this component, newest (highest LSN) first."""
        pattern = re.compile(
            rf"^{re.escape(self.name)}-([0-9a-f]{{16}})\.snap$"
        )
        found = []
        if self.directory.is_dir():
            for entry in self.directory.iterdir():
                m = pattern.match(entry.name)
                if m:
                    found.append((int(m.group(1), 16), entry))
        return [path for _, path in sorted(found, reverse=True)]

    # --------------------------------------------------------------- write

    def write(self, lsn: int, body: str, epoch: Optional[int] = None) -> pathlib.Path:
        """Atomically install a snapshot of the state as of *lsn*."""
        self.directory.mkdir(parents=True, exist_ok=True)
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        header = (
            f"#repro-snapshot lsn={lsn} "
            f"epoch={'none' if epoch is None else epoch} crc={crc:08x}\n"
        )
        final = self._path(lsn)
        tmp = final.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8", newline="") as fh:
            fh.write(header)
            fh.write(body)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        tmp.rename(final)
        if self.counters is not None:
            self.counters.snapshots_written += 1
            self.counters.snapshot_bytes_written += len(header) + len(body)
        return final

    # ---------------------------------------------------------------- load

    def load_latest(self) -> Optional[Snapshot]:
        """The newest intact snapshot, or None.

        Damaged candidates (bad header, CRC mismatch — e.g. a torn write
        on a filesystem without atomic rename) are skipped in favor of
        the next older one.
        """
        for path in self._candidates():
            try:
                text = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            m = _HEADER_RE.match(text)
            if not m:
                continue
            body = text[m.end():]
            if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != int(m.group(3), 16):
                continue
            epoch = None if m.group(2) == "none" else int(m.group(2))
            if self.counters is not None:
                self.counters.snapshots_loaded += 1
            return Snapshot(int(m.group(1)), epoch, body, path)
        return None

    # ----------------------------------------------------------- compaction

    def compact(self, keep: int = 1) -> int:
        """Delete all but the newest *keep* snapshots; returns #removed."""
        removed = 0
        for path in self._candidates()[keep:]:
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        return removed
