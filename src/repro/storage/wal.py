"""Append-only write-ahead log with torn-tail repair.

One :class:`WriteAheadLog` owns one file of codec records (see
:mod:`~repro.storage.codec`). The contract mirrors classic ARIES-style
logging scaled down to this system's needs:

* **append** — a mutation is encoded, written, flushed (and fsync'd when
  the log was opened with ``fsync=True``) *before* the caller considers
  it applied;
* **replay** — on open, every intact record is yielded in order; the
  first corrupt or incomplete record marks a *torn tail* (a crash mid
  write), and the file is truncated back to the last intact record so
  the log is append-clean again — exactly the recovery behavior the
  paper's churn model needs from a node that "can eventually recover";
* **reset** — after a snapshot covers every logged mutation, the log is
  compacted to empty (LSNs keep counting, so snapshot+log ordering stays
  total).
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterator

from .codec import CorruptRecord, Record, decode_record, encode_record

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """One append-only record log backed by a single file."""

    def __init__(
        self,
        path,
        fsync: bool = False,
        counters=None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self.counters = counters
        #: LSN the next appended record will carry.
        self.next_lsn = 1
        #: Records currently in the file (maintained by replay/append,
        #: used for snapshot-interval accounting).
        self.record_count = 0
        #: Torn records dropped by the last :meth:`replay`.
        self.torn_truncated = 0
        self._fh = None

    # --------------------------------------------------------------- replay

    def replay(self) -> Iterator[Record]:
        """Yield every intact record; truncate a torn tail in place.

        Must be called before the first :meth:`append` (it also seeds
        ``next_lsn``). A missing file is an empty log.
        """
        self.torn_truncated = 0
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        good_end = 0
        torn = 0
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # Final line has no newline. If it still decodes, only the
                # terminator was lost — keep the record and repair the
                # file; otherwise the append was torn mid-write.
                try:
                    record = decode_record(raw[offset:].decode("utf-8"))
                except (CorruptRecord, UnicodeDecodeError):
                    torn += 1
                    break
                with self.path.open("ab") as fh:
                    fh.write(b"\n")
                good_end = len(raw) + 1
                self.record_count += 1
                self.next_lsn = record.lsn + 1
                yield record
                break
            line_bytes = raw[offset:newline]
            try:
                record = decode_record(line_bytes.decode("utf-8"))
            except (CorruptRecord, UnicodeDecodeError):
                # First bad record: everything from here on is the torn
                # tail (records are strictly sequential, so nothing after
                # a corrupt one can be trusted).
                torn += raw.count(b"\n", offset) + (
                    0 if raw.endswith(b"\n") else 1
                )
                break
            good_end = newline + 1
            offset = newline + 1
            self.record_count += 1
            self.next_lsn = record.lsn + 1
            yield record
        if good_end < len(raw):
            with self.path.open("r+b") as fh:
                fh.truncate(good_end)
            self.torn_truncated = torn
            if self.counters is not None:
                self.counters.wal_torn_records_truncated += torn

    # --------------------------------------------------------------- append

    def append(self, rtype: str, payload: str = "") -> int:
        """Durably append one record; returns its LSN."""
        lsn = self.next_lsn
        line = encode_record(lsn, rtype, payload)
        fh = self._handle()
        fh.write(line)
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
            if self.counters is not None:
                self.counters.wal_fsyncs += 1
        self.next_lsn = lsn + 1
        self.record_count += 1
        if self.counters is not None:
            self.counters.wal_records_appended += 1
        return lsn

    def _handle(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8", newline="")
        return self._fh

    # ---------------------------------------------------------- compaction

    def reset(self) -> None:
        """Compact: drop every record (a snapshot now covers them).

        LSNs continue from where they were, so a record appended after a
        reset still sorts after the snapshot that subsumed its
        predecessors.
        """
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8"):
            pass
        self.record_count = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteAheadLog({self.path}, next_lsn={self.next_lsn})"
