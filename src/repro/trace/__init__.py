"""Tracing/observability subsystem (S14): structured per-query traces.

A :class:`Tracer` hooks into the simulation kernel, the transport, and
the query operators to record where a strategy spends its bytes and time
across the paper's workflow phases — the observability layer every perf
comparison measures against. Disabled (the :data:`NULL_TRACER` default)
it costs one attribute check per instrumentation site.
"""

from .tracer import (
    MESSAGE_KINDS,
    NULL_TRACER,
    NullTracer,
    PHASE_FINALIZE,
    PHASE_JOIN,
    PHASE_LOOKUP,
    PHASE_SHIP,
    PHASES,
    PhaseStats,
    Span,
    TraceEvent,
    Tracer,
    phase_for_method,
)
from .export import to_jsonl, write_jsonl
from .render import render_phases, render_sequence, render_spans

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "Span",
    "PhaseStats",
    "PHASES",
    "PHASE_LOOKUP",
    "PHASE_SHIP",
    "PHASE_JOIN",
    "PHASE_FINALIZE",
    "MESSAGE_KINDS",
    "phase_for_method",
    "to_jsonl",
    "write_jsonl",
    "render_sequence",
    "render_phases",
    "render_spans",
]
