"""JSONL export of trace events.

One JSON object per line, keys sorted, floats emitted as-is — the output
is deterministic for a deterministic simulation, so trace files diff
cleanly between runs and can serve as golden artifacts.

Schema (absent fields are omitted):

``seq``     monotonically increasing event number (int)
``time``    simulated seconds since simulator start (float)
``kind``    rpc_request | rpc_reply | rpc_error | oneway | rpc_timeout |
            span_start | span_end | process_spawn | process_finish | mark
``src``     sending node id (messages)
``dst``     receiving node id (messages)
``name``    RPC method (messages) or span/process name
``bytes``   wire size charged to NetworkStats (messages; omitted when 0)
``phase``   lookup | ship | join | finalize (messages and phased spans)
``detail``  kind-specific object (e.g. span id, duration, corr id)
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, Iterator, Union

from .tracer import TraceEvent, Tracer

__all__ = ["event_to_dict", "iter_event_dicts", "to_jsonl", "write_jsonl"]


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """A compact JSON-ready dict for one event (None/0 fields dropped)."""
    out: Dict[str, Any] = {"seq": event.seq, "time": event.time, "kind": event.kind}
    if event.src is not None:
        out["src"] = event.src
    if event.dst is not None:
        out["dst"] = event.dst
    if event.name is not None:
        out["name"] = event.name
    if event.bytes:
        out["bytes"] = event.bytes
    if event.phase is not None:
        out["phase"] = event.phase
    if event.detail:
        out["detail"] = _jsonable(event.detail)
    return out


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion: unknown objects become their repr."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def iter_event_dicts(source: Union[Tracer, Iterable[TraceEvent]]) -> Iterator[Dict[str, Any]]:
    events = source.events if isinstance(source, Tracer) else source
    for event in events:
        yield event_to_dict(event)


def to_jsonl(source: Union[Tracer, Iterable[TraceEvent]]) -> str:
    """The whole trace as one JSONL string (trailing newline included)."""
    lines = [json.dumps(d, sort_keys=True) for d in iter_event_dicts(source)]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(source: Union[Tracer, Iterable[TraceEvent]], path) -> pathlib.Path:
    """Write the trace to *path* (parent directories created)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(source), encoding="utf-8")
    return path
