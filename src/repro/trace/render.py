"""Text rendering of traces: Fig. 3-style sequence diagrams + phase table.

:func:`render_sequence` lays the participating sites out as lifelines
(columns, in order of first appearance) and draws one row per message,
with the RPC method, payload size, and workflow phase on the arrow —
the message flow of the paper's Fig. 3, reconstructed from a live trace
instead of hand-drawn. Output is plain ASCII and deterministic: the same
seed yields a byte-identical diagram.

:func:`render_phases` prints the per-phase cost table
(lookup / ship / join / finalize) via the metrics table renderer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..metrics.tables import render_table
from .tracer import PHASES, PhaseStats, TraceEvent, Tracer

__all__ = ["render_sequence", "render_phases", "render_spans"]

#: Kinds drawn as arrows, with the glyph used for the arrow shaft.
_ARROW_STYLES = {
    "rpc_request": "-",
    "rpc_reply": "-",
    "rpc_error": "!",
    "oneway": "=",
}

_COL_WIDTH = 26
_TIME_WIDTH = 10


def _participants(events: List[TraceEvent]) -> List[str]:
    seen: List[str] = []
    for event in events:
        for site in (event.src, event.dst):
            if site is not None and site not in seen:
                seen.append(site)
    return seen


def render_sequence(
    source: Union[Tracer, List[TraceEvent]],
    max_events: Optional[int] = None,
) -> str:
    """ASCII sequence diagram of the trace's message events."""
    events = source.events if isinstance(source, Tracer) else list(source)
    messages = [e for e in events if e.kind in _ARROW_STYLES]
    truncated = 0
    if max_events is not None and len(messages) > max_events:
        truncated = len(messages) - max_events
        messages = messages[:max_events]
    if not messages:
        return "(no messages traced)\n"

    sites = _participants(messages)
    centers = {s: _TIME_WIDTH + 2 + i * _COL_WIDTH + _COL_WIDTH // 2
               for i, s in enumerate(sites)}
    width = _TIME_WIDTH + 2 + len(sites) * _COL_WIDTH

    def blank_row() -> List[str]:
        row = [" "] * width
        for site in sites:
            row[centers[site]] = "|"
        return row

    lines: List[str] = []
    header = [" "] * width
    header[: len("time(ms)")] = "time(ms)"
    for site in sites:
        label = site[: _COL_WIDTH - 2]
        start = centers[site] - len(label) // 2
        header[start : start + len(label)] = label
    lines.append("".join(header).rstrip())
    lines.append("".join(blank_row()).rstrip())

    for event in messages:
        row = blank_row()
        stamp = f"{event.time * 1000:9.3f}"
        row[: len(stamp)] = stamp
        a, b = centers[event.src], centers[event.dst]
        shaft = _ARROW_STYLES[event.kind]
        label = f" {event.name} {event.bytes}B [{event.phase}] "
        if a == b:
            # Local self-delivery (e.g. the initiator notifying itself).
            text = f"{shaft * 2}o{label}"
            row[a + 1 : a + 1 + len(text)] = text[: width - a - 1]
        else:
            lo, hi = (a, b) if a < b else (b, a)
            span = hi - lo - 1
            for i in range(lo + 1, hi):
                row[i] = shaft
            if len(label) > span - 2:
                label = label[: max(span - 2, 0)]
            if label:
                start = lo + 1 + (span - len(label)) // 2
                row[start : start + len(label)] = label
            if a < b:
                row[hi - 1] = ">"
            else:
                row[lo + 1] = "<"
        lines.append("".join(row).rstrip())

    if truncated:
        lines.append(f"... ({truncated} more messages)")
    return "\n".join(lines) + "\n"


def render_phases(breakdown: Dict[str, PhaseStats]) -> str:
    """The per-phase cost table (all four phases, canonical order)."""
    rows = []
    total_msgs = total_bytes = 0
    total_time = 0.0
    for phase in PHASES:
        stats = breakdown.get(phase, PhaseStats())
        rows.append([phase, str(stats.messages), str(stats.bytes),
                     f"{stats.time * 1000:.3f}"])
        total_msgs += stats.messages
        total_bytes += stats.bytes
        total_time += stats.time
    rows.append(["total", str(total_msgs), str(total_bytes),
                 f"{total_time * 1000:.3f}"])
    return render_table(
        ["phase", "messages", "bytes", "link-ms"], rows,
        title="per-phase cost",
    )


def render_spans(source: Union[Tracer, List[TraceEvent]]) -> str:
    """One line per operator span: name, phase, start/end, duration."""
    tracer = source if isinstance(source, Tracer) else None
    if tracer is None:
        raise TypeError("render_spans requires a Tracer")
    lines = []
    for start, end in tracer.spans():
        name = start.name or "?"
        phase = f" [{start.phase}]" if start.phase else ""
        if end is None:
            lines.append(f"{start.time * 1000:9.3f}ms  {name}{phase} (open)")
        else:
            duration = (end.time - start.time) * 1000
            lines.append(
                f"{start.time * 1000:9.3f}ms  {name}{phase} "
                f"{duration:.3f}ms"
            )
    return "\n".join(lines) + ("\n" if lines else "")
