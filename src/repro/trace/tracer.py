"""Per-query distributed tracing (Fig. 2/3 observability).

The paper's workflow — index lookup, sub-query shipping, site-to-site
intermediate results, post-processing — collapses into four scalars in
:class:`~repro.query.executor.ExecutionReport`. This module records the
*structure* underneath those scalars: every message that crosses a link
(request / reply / error / timeout / one-way), every simulation process
spawned and finished, and named operator spans with start/end sim-time.

Design constraints, both load-bearing for the experiments:

* **Zero overhead when off.** The default tracer on every
  :class:`~repro.net.sim.Simulator` is :data:`NULL_TRACER`, whose
  ``enabled`` flag is ``False``; instrumented hot paths guard with a
  single attribute check and never build event objects. Strategy
  comparisons with tracing disabled are byte-for-byte unchanged.
* **Determinism.** Timestamps are simulated time only — never wall
  clock — so two runs with the same seed produce identical traces
  (and identical rendered sequence diagrams).

Every message event is attributed to one of the four workflow **phases**
(:data:`PHASE_LOOKUP`, :data:`PHASE_SHIP`, :data:`PHASE_JOIN`,
:data:`PHASE_FINALIZE`) by its RPC method name, so per-phase byte totals
partition the query's traffic exactly: they sum to
``ExecutionReport.bytes_total``.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "TraceEvent",
    "Span",
    "PhaseStats",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "PHASE_LOOKUP",
    "PHASE_SHIP",
    "PHASE_JOIN",
    "PHASE_FINALIZE",
    "PHASES",
    "phase_for_method",
    "MESSAGE_KINDS",
]

#: The four stages of the paper's distributed workflow (Fig. 2/3) that
#: traffic is attributed to.
PHASE_LOOKUP = "lookup"      #: consulting the two-level index (ring + tables)
PHASE_SHIP = "ship"          #: sub-query shipping + intermediate-result movement
PHASE_JOIN = "join"          #: combining solution sets at join sites
PHASE_FINALIZE = "finalize"  #: bringing the final result to the initiator

PHASES: Tuple[str, ...] = (PHASE_LOOKUP, PHASE_SHIP, PHASE_JOIN, PHASE_FINALIZE)

#: RPC method name → workflow phase. Reply/error suffixes (``.reply``,
#: ``.error``) are stripped before lookup; unknown methods count as
#: shipping (the catch-all for data movement).
_METHOD_PHASES: Dict[str, str] = {
    # Two-level index consultation (Fig. 2 steps 1-2) and maintenance.
    "find_successor": PHASE_LOOKUP,
    "index_lookup": PHASE_LOOKUP,
    "get_attached": PHASE_LOOKUP,
    "get_successor_list": PHASE_LOOKUP,
    "publish": PHASE_LOOKUP,
    "index_put": PHASE_LOOKUP,
    "replica_put": PHASE_LOOKUP,
    "replica_lookup": PHASE_LOOKUP,
    "replica_drop": PHASE_LOOKUP,
    "rereplicate": PHASE_LOOKUP,
    "index_remove_storage": PHASE_LOOKUP,
    # Key transfer during membership changes (join / restart-rejoin).
    "export_keys": PHASE_LOOKUP,
    "import_keys": PHASE_LOOKUP,
    # Sub-query shipping and site-to-site intermediate results.
    "execute_primitive": PHASE_SHIP,
    "chain_step": PHASE_SHIP,
    "evaluate": PHASE_SHIP,
    "deliver": PHASE_SHIP,
    "delivered": PHASE_SHIP,
    "ship": PHASE_SHIP,
    "digest": PHASE_SHIP,
    # Cross-query result cache (PR 9): a probe stands in for the shipping
    # it short-circuits; an admit copies a finished sub-result in place.
    "cache_probe": PHASE_SHIP,
    "cache_admit": PHASE_SHIP,
    # Combining at the join site.
    "combine": PHASE_JOIN,
    "filter_box": PHASE_JOIN,
    # Post-processing: final result transfer + cleanup.
    "fetch": PHASE_FINALIZE,
    "discard": PHASE_FINALIZE,
}

#: Event kinds that correspond to a message on a link (and therefore
#: carry bytes charged to :class:`~repro.net.stats.NetworkStats`).
MESSAGE_KINDS = frozenset({"rpc_request", "rpc_reply", "rpc_error", "oneway"})


def phase_for_method(method: str) -> str:
    """Workflow phase for an RPC method name (``x.reply`` → phase of x)."""
    base = method.split(".", 1)[0]
    return _METHOD_PHASES.get(base, PHASE_SHIP)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record.

    ``kind`` is one of: ``rpc_request``, ``rpc_reply``, ``rpc_error``,
    ``oneway`` (messages); ``rpc_timeout`` (a caller's deadline fired);
    ``span_start`` / ``span_end`` (operator spans); ``process_spawn`` /
    ``process_finish`` (simulation kernel); ``mark`` (free-form).
    """

    seq: int
    time: float
    kind: str
    src: Optional[str] = None
    dst: Optional[str] = None
    name: Optional[str] = None
    bytes: int = 0
    phase: Optional[str] = None
    detail: Optional[Dict[str, Any]] = None


@dataclass(frozen=True, slots=True)
class PhaseStats:
    """Aggregate cost of one workflow phase."""

    messages: int = 0
    bytes: int = 0
    #: Summed transmission time (link delays) of the phase's messages.
    #: Phases overlap under parallel execution, so these do *not* sum to
    #: the wall-clock response time; they measure link occupancy.
    time: float = 0.0


class Span:
    """A named operator span: start/end in sim-time, optional detail."""

    __slots__ = ("_tracer", "span_id", "name", "phase", "start", "end")

    def __init__(self, tracer: "Tracer", span_id: int, name: str,
                 phase: Optional[str]) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.phase = phase
        self.start = tracer.now()
        self.end: Optional[float] = None

    def close(self, **detail: Any) -> None:
        """Record the span's end (idempotent)."""
        if self.end is not None:
            return
        self.end = self._tracer.now()
        self._tracer.record(
            "span_end", name=self.name, phase=self.phase,
            detail={"span": self.span_id, "duration": self.end - self.start,
                    **detail},
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _NullSpan:
    """Do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()
    span_id = -1
    name = ""
    phase = None
    start = 0.0
    end = 0.0

    def close(self, **detail: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The no-op tracer: the zero-overhead default.

    Instrumentation sites guard with ``if tracer.enabled:`` so the off
    path costs one attribute load; the methods exist anyway so code that
    holds a tracer handle never needs a None check.
    """

    __slots__ = ()
    enabled = False

    def now(self) -> float:
        return 0.0

    def attach(self, sim: Any) -> None:
        pass

    def record(self, kind: str, **kwargs: Any) -> "NullTracer":
        return self

    def message(self, *args: Any, **kwargs: Any) -> None:
        pass

    def span(self, name: str, phase: Optional[str] = None, **detail: Any) -> _NullSpan:
        return _NULL_SPAN

    def phase_breakdown(self) -> Dict[str, PhaseStats]:
        return {}


#: Shared process-wide no-op tracer instance.
NULL_TRACER = NullTracer()


class Tracer:
    """Records structured events for one (or more) query executions.

    Attach to a simulator (``tracer.attach(sim)``) so events carry
    sim-time timestamps; the executor does this automatically when a
    tracer is passed to :class:`~repro.query.executor.DistributedExecutor`.
    """

    enabled = True

    def __init__(self, sim: Any = None) -> None:
        self._sim = sim
        self._seq = itertools.count()
        self._span_ids = itertools.count()
        self.events: List[TraceEvent] = []
        self.phase_bytes: Counter = Counter()
        self.phase_messages: Counter = Counter()
        self.phase_time: Counter = Counter()
        #: Bytes attributed to the site that *sent* them.
        self.site_bytes: Counter = Counter()

    # ------------------------------------------------------------- plumbing

    def attach(self, sim: Any) -> "Tracer":
        """Bind the simulator whose clock stamps subsequent events."""
        self._sim = sim
        return self

    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    # ------------------------------------------------------------ recording

    def record(
        self,
        kind: str,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        name: Optional[str] = None,
        nbytes: int = 0,
        phase: Optional[str] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> TraceEvent:
        """Append a raw event (low-level; prefer message()/span())."""
        event = TraceEvent(
            seq=next(self._seq), time=self.now(), kind=kind, src=src,
            dst=dst, name=name, bytes=nbytes, phase=phase, detail=detail,
        )
        self.events.append(event)
        return event

    def message(
        self,
        kind: str,
        src: str,
        dst: str,
        method: str,
        nbytes: int,
        delay: float = 0.0,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one message on a link, attributing its cost to a phase.

        Called from the transport next to every
        :meth:`~repro.net.stats.NetworkStats.record`, so traced bytes and
        the stats ledger agree exactly.
        """
        phase = phase_for_method(method)
        self.record(kind, src=src, dst=dst, name=method, nbytes=nbytes,
                    phase=phase, detail=detail)
        self.phase_bytes[phase] += nbytes
        self.phase_messages[phase] += 1
        self.phase_time[phase] += delay
        self.site_bytes[src] += nbytes

    def span(self, name: str, phase: Optional[str] = None, **detail: Any) -> Span:
        """Open a named operator span; ``close()`` (or ``with``) ends it."""
        span = Span(self, next(self._span_ids), name, phase)
        self.record("span_start", name=name, phase=phase,
                    detail={"span": span.span_id, **detail})
        return span

    # ----------------------------------------------------------- summaries

    @property
    def bytes_total(self) -> int:
        return sum(self.phase_bytes.values())

    @property
    def message_count(self) -> int:
        return sum(self.phase_messages.values())

    def checkpoint(self) -> Tuple[Counter, Counter, Counter]:
        """Snapshot of the phase counters; pass to :meth:`phase_breakdown`
        to scope a breakdown to one query on a reused tracer."""
        return (
            Counter(self.phase_messages),
            Counter(self.phase_bytes),
            Counter(self.phase_time),
        )

    def phase_breakdown(
        self, since: Optional[Tuple[Counter, Counter, Counter]] = None
    ) -> Dict[str, PhaseStats]:
        """Per-phase cost, in canonical phase order (all four keys).

        With *since* (a :meth:`checkpoint`), only activity after the
        snapshot is counted — the per-query window the executor uses, so
        the phases' byte totals partition that query's ``bytes_total``
        exactly.
        """
        msgs0, bytes0, time0 = since if since is not None else ({}, {}, {})
        return {
            phase: PhaseStats(
                messages=self.phase_messages.get(phase, 0) - msgs0.get(phase, 0),
                bytes=self.phase_bytes.get(phase, 0) - bytes0.get(phase, 0),
                time=self.phase_time.get(phase, 0.0) - time0.get(phase, 0.0),
            )
            for phase in PHASES
        }

    def message_events(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind in MESSAGE_KINDS]

    def spans(self) -> List[Tuple[TraceEvent, Optional[TraceEvent]]]:
        """(start, end) event pairs for every span, in start order."""
        ends: Dict[int, TraceEvent] = {}
        starts: List[TraceEvent] = []
        for event in self.events:
            if event.detail is None or "span" not in event.detail:
                continue
            if event.kind == "span_start":
                starts.append(event)
            elif event.kind == "span_end":
                ends[event.detail["span"]] = event
        return [(s, ends.get(s.detail["span"])) for s in starts]

    def clear(self) -> None:
        """Drop all recorded state (reuse one tracer across queries)."""
        self.events.clear()
        self.phase_bytes.clear()
        self.phase_messages.clear()
        self.phase_time.clear()
        self.site_bytes.clear()
