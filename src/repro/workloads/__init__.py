"""Workload generators (S11): synthetic FOAF data, Zipf skew, query mixes,
and the canned paper-example datasets."""

from .zipf import ZipfSampler
from .foaf import FoafConfig, generate_foaf_triples, partition_triples, person_iri
from .datasets import paper_example_dataset, paper_example_partition
from .queries import QueryWorkload

__all__ = [
    "ZipfSampler",
    "FoafConfig",
    "generate_foaf_triples",
    "partition_triples",
    "person_iri",
    "paper_example_dataset",
    "paper_example_partition",
    "QueryWorkload",
]
