"""Workload generators (S11): synthetic FOAF data, Zipf skew, query mixes,
the canned paper-example datasets, and the multi-tenant load harness."""

from .zipf import ZipfSampler
from .foaf import FoafConfig, generate_foaf_triples, partition_triples, person_iri
from .datasets import paper_example_dataset, paper_example_partition
from .queries import PAPER_FIG_QUERIES, QueryWorkload, paper_query_mix
from .load import (
    ChurnEvent, LoadConfig, QueryJob, WorkloadReport, churn_schedule,
    run_workload,
)

__all__ = [
    "ZipfSampler",
    "FoafConfig",
    "generate_foaf_triples",
    "partition_triples",
    "person_iri",
    "paper_example_dataset",
    "paper_example_partition",
    "QueryWorkload",
    "PAPER_FIG_QUERIES",
    "paper_query_mix",
    "ChurnEvent",
    "LoadConfig",
    "QueryJob",
    "WorkloadReport",
    "churn_schedule",
    "run_workload",
]
