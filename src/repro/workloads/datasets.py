"""Canned micro-datasets for tests, examples, and the paper artifacts.

:func:`paper_example_dataset` builds a small social graph on which every
example query of the paper (Figs. 4-9) has a non-trivial, hand-checkable
answer, using exactly the vocabulary those figures use.
"""

from __future__ import annotations

from typing import Dict, List

from ..rdf.namespaces import FOAF, NS
from ..rdf.terms import IRI, Literal
from ..rdf.triple import Triple

__all__ = ["paper_example_dataset", "paper_example_partition"]

_P = "http://example.org/people/"


def _person(name: str) -> IRI:
    return IRI(_P + name)


def paper_example_dataset() -> List[Triple]:
    """A 9-person graph exercising every Fig. 4-9 query.

    Hand-crafted facts (see tests/test_artifacts.py for the expected
    answers):

    * anna ("Anna Smith") knows carl and knows nothing about bella;
      bella also knows carl — so Fig. 4 / Fig. 6 style patterns match
      (anna, bella, carl).
    * dave ("Dave Smith") knows erik; erik has nick "Shrek" — Fig. 7's
      optional pattern extends dave's solution with erik.
    * fred ("Fred Jones") has the mbox of Fig. 8's UNION branch.
    """
    anna, bella, carl = _person("anna"), _person("bella"), _person("carl")
    dave, erik, fred = _person("dave"), _person("erik"), _person("fred")
    gina, hugo, me = _person("gina"), _person("hugo"), IRI(NS.base + "me")
    smith = _person("smith")

    triples = [
        # Fig. 7 / Fig. 8 literal match: a person whose name *is* "Smith",
        # knowing one person nicked "Shrek" (optional matches) and one
        # without a nick (optional leaves the solution untouched).
        Triple(smith, FOAF.name, Literal("Smith")),
        Triple(smith, FOAF.knows, erik),
        Triple(smith, FOAF.knows, hugo),
        Triple(anna, FOAF.name, Literal("Anna Smith")),
        Triple(bella, FOAF.name, Literal("Bella Jones")),
        Triple(carl, FOAF.name, Literal("Carl Brown")),
        Triple(dave, FOAF.name, Literal("Dave Smith")),
        Triple(erik, FOAF.name, Literal("Erik Wilson")),
        Triple(fred, FOAF.name, Literal("Fred Jones")),
        Triple(gina, FOAF.name, Literal("Gina Smith")),
        Triple(hugo, FOAF.name, Literal("Hugo Evans")),
        # Fig. 4 / Fig. 6: ?x knows ?z, ?x knowsNothingAbout ?y, ?y knows ?z
        Triple(anna, FOAF.knows, carl),
        Triple(anna, NS.knowsNothingAbout, bella),
        Triple(bella, FOAF.knows, carl),
        # Fig. 5: ?x foaf:knows ns:me
        Triple(carl, FOAF.knows, me),
        Triple(gina, FOAF.knows, me),
        # Fig. 7: Smith knows someone nicked "Shrek" (optionally)
        Triple(dave, FOAF.knows, erik),
        Triple(erik, FOAF.nick, Literal("Shrek")),
        Triple(gina, FOAF.knows, hugo),       # gina: optional part won't match
        # Fig. 8: mbox branch
        Triple(fred, FOAF.mbox, IRI("mailto:abc@example.org")),
        Triple(fred, FOAF.knows, anna),
        # Fig. 9: ?x knowsNothingAbout ?y OPTIONAL ?y knows ?z
        Triple(dave, NS.knowsNothingAbout, gina),
        Triple(hugo, FOAF.knows, bella),
        Triple(gina, NS.knowsNothingAbout, hugo),
    ]
    return triples


def paper_example_partition() -> Dict[str, List[Triple]]:
    """The same dataset split across the four storage nodes of Fig. 1.

    The split is chosen so that multi-pattern queries genuinely span
    providers (e.g. a person's name and their knows-edges live on
    different nodes), with one deliberately duplicated triple so dedup
    along chains is observable.
    """
    triples = paper_example_dataset()
    by_predicate: Dict[str, List[Triple]] = {"D1": [], "D2": [], "D3": [], "D4": []}
    for t in triples:
        local = t.p.value.rsplit("/", 1)[-1].rsplit("#", 1)[-1]
        if local == "name":
            by_predicate["D1"].append(t)
        elif local == "knows":
            by_predicate["D2"].append(t)
        elif local == "knowsNothingAbout":
            by_predicate["D3"].append(t)
        else:  # mbox, nick
            by_predicate["D4"].append(t)
    # One duplicated triple: both D2 and D4 offer erik's nick.
    nick = next(t for t in triples if t.p == FOAF.nick)
    by_predicate["D2"].append(nick)
    return by_predicate
