"""Synthetic FOAF-style social data — the paper's running example domain.

Generates the vocabulary of Figs. 4-9: ``foaf:name``, ``foaf:knows``,
``foaf:mbox``, ``foaf:nick`` and ``ns:knowsNothingAbout``, over a
configurable population, and partitions the triples across storage nodes
with controllable *overlap* (the same triple offered by several
providers — the normal state of affairs in a file-sharing-style system,
and the lever behind the in-network dedup savings of Sect. IV-C).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..rdf.namespaces import FOAF, NS
from ..rdf.terms import IRI, Literal
from ..rdf.triple import Triple
from .zipf import ZipfSampler

__all__ = [
    "FoafConfig",
    "generate_people",
    "generate_foaf_triples",
    "partition_triples",
    "person_iri",
]

_FIRST_NAMES = (
    "Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil",
)
_LAST_NAMES = (
    "Smith", "Jones", "Brown", "Taylor", "Wilson", "Davies", "Evans",
    "Thomas", "Johnson", "Roberts", "Walker", "Wright",
)
_NICKS = ("Shrek", "Fiona", "Donkey", "Puss", "Dragon", "Gingy")

PEOPLE_BASE = "http://example.org/people/"


@dataclass(frozen=True, slots=True)
class FoafConfig:
    """Shape of the generated social graph.

    ``smith_fraction`` controls the selectivity of the paper's
    ``regex(?name, "Smith")`` filters; ``zipf_s`` skews the popularity of
    ``knows`` targets (and thus object-value frequencies).
    """

    num_people: int = 100
    knows_per_person: int = 3
    knows_nothing_per_person: int = 1
    mbox_fraction: float = 0.8
    nick_fraction: float = 0.3
    smith_fraction: float = 0.25
    zipf_s: float = 0.8
    seed: int = 0


def person_iri(index: int) -> IRI:
    return IRI(f"{PEOPLE_BASE}p{index}")


def generate_people(config: FoafConfig, rng: Optional[random.Random] = None) -> List[IRI]:
    return [person_iri(i) for i in range(config.num_people)]


def generate_foaf_triples(config: FoafConfig) -> List[Triple]:
    """The full synthetic dataset, deterministically from config.seed."""
    rng = random.Random(config.seed)
    people = generate_people(config, rng)
    target_sampler = ZipfSampler(len(people), config.zipf_s, rng)
    triples: List[Triple] = []

    for i, person in enumerate(people):
        first = rng.choice(_FIRST_NAMES)
        if rng.random() < config.smith_fraction:
            last = "Smith"
        else:
            last = rng.choice([n for n in _LAST_NAMES if n != "Smith"])
        triples.append(Triple(person, FOAF.name, Literal(f"{first} {last}")))

        if rng.random() < config.mbox_fraction:
            triples.append(
                Triple(person, FOAF.mbox, IRI(f"mailto:p{i}@example.org"))
            )
        if rng.random() < config.nick_fraction:
            triples.append(Triple(person, FOAF.nick, Literal(rng.choice(_NICKS))))

        known: set = set()
        for _ in range(config.knows_per_person):
            j = target_sampler.sample()
            if j != i and j not in known:
                known.add(j)
                triples.append(Triple(person, FOAF.knows, people[j]))
        ignored: set = set()
        for _ in range(config.knows_nothing_per_person):
            j = rng.randrange(len(people))
            if j != i and j not in known and j not in ignored:
                ignored.add(j)
                triples.append(Triple(person, NS.knowsNothingAbout, people[j]))
    return triples


def partition_triples(
    triples: Sequence[Triple],
    num_nodes: int,
    overlap: float = 0.0,
    seed: int = 0,
) -> List[List[Triple]]:
    """Distribute triples over *num_nodes* providers.

    Every triple gets one home node; with probability *overlap* it is
    additionally replicated to one further random node, modelling
    independently-obtained copies of the same data. ``overlap=0`` gives a
    clean partition.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be within [0, 1]")
    rng = random.Random(seed)
    parts: List[List[Triple]] = [[] for _ in range(num_nodes)]
    for triple in triples:
        home = rng.randrange(num_nodes)
        parts[home].append(triple)
        if num_nodes > 1 and rng.random() < overlap:
            other = rng.randrange(num_nodes - 1)
            if other >= home:
                other += 1
            parts[other].append(triple)
    return parts
