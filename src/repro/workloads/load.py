"""Load-generation harness: many concurrent queries in one simulation.

The single-query experiments measure strategies in isolation; this module
measures the *system* under sustained multi-tenant load, the regime the
ROADMAP's "heavy traffic" north star cares about.  Two arrival processes
over a query mix (default: the paper's Fig. 4-9 examples):

* **closed-loop** — ``concurrency`` clients, each submitting its next
  query the moment the previous one finishes (fixed multiprogramming
  level; the classic throughput/latency operating point);
* **open-loop** — Poisson arrivals at ``arrival_rate`` queries/second,
  independent of completions (the honest tail-latency regime: queues
  build when service cannot keep up).

Each job runs as its own :meth:`DistributedExecutor.execute_process`
coroutine, so queries genuinely interleave inside one simulator and — if
``network.contention`` is set — queue against each other for node
bandwidth and compute.  Admission control bounds the damage of overload:
at most ``max_in_flight`` queries run at once, up to ``queue_limit``
deferred jobs wait in FIFO order, and anything beyond that is *shed* and
counted, never silently dropped.

Determinism: the whole schedule (query choice, initiator assignment,
arrival times) is drawn up front from one seeded RNG, so a given
``LoadConfig`` always produces the same simulation, event for event.
"""

from __future__ import annotations

import bisect
import random
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..metrics.counters import Summary, summarize
from ..net.faults import FaultPlan
from ..query.executor import DistributedExecutor, ExecutionReport, QueryFailed
from ..query.strategies import ExecutionOptions
from ..rdf.namespaces import COMMON_PREFIXES
from ..rdf.terms import IRI
from ..rdf.triple import Triple
from ..sparql.eval import QueryResult
from ..sparql.parser import parse_query
from .queries import paper_query_mix

__all__ = ["ChurnEvent", "LoadConfig", "QueryJob", "WorkloadReport",
           "churn_schedule", "default_mutation_batch", "run_workload"]


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change during a workload.

    ``action`` is ``"crash"`` (``Network.fail_node``) or ``"recover"``
    (``Network.recover_node``); *at* is the simulated time the event
    fires, relative to the workload's start.
    """

    at: float
    action: str
    node_id: str


@dataclass(frozen=True)
class LoadConfig:
    """One workload run: arrival process, mix, and admission limits."""

    #: The query mix as ``(label, sparql_text)`` pairs; jobs draw from it
    #: uniformly (seeded).  Default: the paper's Fig. 4-9 queries.
    queries: Sequence[Tuple[str, str]] = field(default_factory=paper_query_mix)
    #: Initiating peers, assigned round-robin — per-client initiators in
    #: closed-loop mode.  Empty = the executor's default initiator.
    initiators: Sequence[str] = ()
    #: ``"closed"`` (fixed concurrency) or ``"open"`` (Poisson arrivals).
    mode: str = "closed"
    #: Closed-loop multiprogramming level (number of clients).
    concurrency: int = 4
    #: Open-loop offered load, queries per simulated second.
    arrival_rate: float = 50.0
    #: Total jobs submitted over the run.
    num_queries: int = 32
    seed: int = 0
    #: Admission control: max concurrently executing queries (None = off).
    max_in_flight: Optional[int] = None
    #: Bounded defer queue beyond ``max_in_flight``; jobs that find the
    #: queue full are shed.  None = unbounded queue, nothing ever shed.
    queue_limit: Optional[int] = None
    #: Membership changes applied mid-workload (crash/restart events at
    #: fixed simulated times).  Empty = the classic churn-free run, whose
    #: simulation is byte-identical to previous releases.
    churn: Sequence[ChurnEvent] = ()
    #: Query-popularity skew: 0.0 (default) draws uniformly from the mix
    #: exactly as before; s > 0 draws query i with weight 1/(i+1)^s (the
    #: classic Zipf shape over the mix order) — the regime where a
    #: result cache earns its keep.
    zipf_s: float = 0.0
    #: Fraction of jobs that are *data mutations* instead of queries:
    #: each mutation job publishes (or retracts) a deterministic delta
    #: batch through the fast-mode incremental API, advancing the
    #: data-epoch ledger mid-workload.  0.0 (default) = read-only, with
    #: an RNG schedule identical to previous releases.
    mutation_rate: float = 0.0
    #: Seeded message-level fault plan (loss, duplication, delay spikes,
    #: partitions, brownouts) installed on the network for the run — the
    #: chaos twin of :attr:`churn`.  None (default) = the fault-free
    #: simulation, byte-identical to previous releases.
    faults: Optional[FaultPlan] = None


@dataclass
class QueryJob:
    """One submitted query and everything that happened to it."""

    job_id: int
    label: str
    query_text: str
    initiator: Optional[str]
    #: ``"query"`` or ``"mutation"`` (a publish/unpublish delta job).
    kind: str = "query"
    #: Scheduled arrival time (open-loop; 0.0 in closed-loop mode).
    arrival: float = 0.0
    submitted: Optional[float] = None
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[QueryResult] = None
    report: Optional[ExecutionReport] = None
    error: Optional[str] = None
    shed: bool = False

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-completion time (includes any admission wait)."""
        if self.submitted is None or self.finished is None or self.shed:
            return None
        return self.finished - self.submitted

    @property
    def ok(self) -> bool:
        return self.error is None and not self.shed


@dataclass
class WorkloadReport:
    """Aggregate outcome of one :func:`run_workload` run."""

    jobs: List[QueryJob]
    duration: float
    completed: int
    failed: int
    shed: int
    deferred: int
    throughput: float
    #: Latency percentiles over completed jobs (None when none completed).
    latency: Optional[Summary]
    messages: int
    bytes_total: int
    peak_in_flight: int
    max_admission_queue: int
    #: Network contention statistics, when the system ran with a
    #: :class:`~repro.net.contention.ContentionModel` attached.
    contention: Dict[str, Any] = field(default_factory=dict)
    #: Retry/failover work done during the run (delta of the network's
    #: :class:`~repro.metrics.counters.FailoverCounters`).
    failover: Dict[str, int] = field(default_factory=dict)
    #: Result-cache work done during the run (delta of the network's
    #: :class:`~repro.metrics.counters.CacheCounters`; all zeros with
    #: the cache off).
    cache: Dict[str, int] = field(default_factory=dict)
    #: Mutation jobs applied (publish/unpublish delta batches).
    mutations: int = 0
    #: Number of scheduled membership changes applied mid-run.
    churn_events: int = 0
    #: Completed jobs whose answers were flagged incomplete (a safe
    #: subset) by ``ExecutionOptions.partial_results``.
    incomplete: int = 0
    #: Faults the installed plan actually injected during the run, by
    #: kind (empty without a :attr:`LoadConfig.faults` plan).
    faults_injected: Dict[str, int] = field(default_factory=dict)
    #: Real (host) seconds the simulation took to execute.  Unlike every
    #: other field this is *not* deterministic — it measures the engine,
    #: not the simulated system — and exists for performance tracking.
    wall_clock_s: float = 0.0
    #: Completed queries per real second (``completed / wall_clock_s``).
    queries_per_wall_second: float = 0.0

    def per_label(self) -> Dict[str, int]:
        return dict(Counter(j.label for j in self.jobs))

    def as_dict(self, include_jobs: bool = False) -> Dict[str, Any]:
        """JSON-friendly summary (drops the per-job objects).

        With ``include_jobs`` the full per-job timeline is attached under
        ``"job_details"`` (``"jobs"`` stays the count, so existing
        consumers of the summary shape are unaffected).
        """
        latency = None
        if self.latency is not None:
            latency = {
                "mean": self.latency.mean,
                "p50": self.latency.p50,
                "p95": self.latency.p95,
                "p99": self.latency.p99,
                "max": self.latency.maximum,
            }
        payload: Dict[str, Any] = {
            "jobs": len(self.jobs),
            "duration": self.duration,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "deferred": self.deferred,
            "throughput": self.throughput,
            "latency": latency,
            "messages": self.messages,
            "bytes_total": self.bytes_total,
            "peak_in_flight": self.peak_in_flight,
            "max_admission_queue": self.max_admission_queue,
            "contention": self.contention,
            "failover": self.failover,
            "cache": self.cache,
            "mutations": self.mutations,
            "churn_events": self.churn_events,
            "incomplete": self.incomplete,
            "faults_injected": self.faults_injected,
            "wall_clock_s": self.wall_clock_s,
            "queries_per_wall_second": self.queries_per_wall_second,
        }
        if include_jobs:
            payload["job_details"] = [
                {
                    "job_id": j.job_id,
                    "label": j.label,
                    "initiator": j.initiator,
                    "arrival": j.arrival,
                    "submitted": j.submitted,
                    "started": j.started,
                    "finished": j.finished,
                    "latency": j.latency,
                    "ok": j.ok,
                    "shed": j.shed,
                    "error": j.error,
                    "results": (
                        j.report.result_count if j.report is not None else None
                    ),
                }
                for j in self.jobs
            ]
        return payload


def default_mutation_batch(seq: int) -> List[Triple]:
    """The deterministic delta batch mutation number *seq* publishes.

    The triples live in the FOAF ``knows`` key space the paper queries
    exercise, so every mutation genuinely invalidates cached results
    for those patterns (a cache that survived them would be wrong)."""
    knows = IRI("http://xmlns.com/foaf/0.1/knows")
    s = IRI(f"http://example.org/load/delta{seq}/a")
    o = IRI(f"http://example.org/load/delta{seq}/b")
    return [Triple(s, knows, o), Triple(o, knows, s)]


def build_jobs(config: LoadConfig) -> List[QueryJob]:
    """The deterministic schedule: every job's query, initiator, and
    (open-loop) arrival time, drawn before the simulation starts."""
    if not config.queries:
        raise ValueError("load config needs a non-empty query mix")
    if config.mode not in ("closed", "open"):
        raise ValueError(f"unknown workload mode {config.mode!r}")
    if config.zipf_s < 0:
        raise ValueError("zipf_s must be >= 0")
    if not 0.0 <= config.mutation_rate < 1.0:
        raise ValueError("mutation_rate must lie in [0, 1)")
    rng = random.Random(config.seed)
    initiators = list(config.initiators)
    # Extra RNG draws stay strictly gated behind non-default settings so
    # the default schedule consumes the stream exactly as before.
    cumulative: List[float] = []
    if config.zipf_s > 0:
        total = 0.0
        for i in range(len(config.queries)):
            total += 1.0 / (i + 1) ** config.zipf_s
            cumulative.append(total)
    jobs: List[QueryJob] = []
    t = 0.0
    for i in range(config.num_queries):
        if config.zipf_s > 0:
            r = rng.random() * cumulative[-1]
            index = bisect.bisect_left(cumulative, r)
            label, text = config.queries[min(index, len(config.queries) - 1)]
        else:
            label, text = config.queries[rng.randrange(len(config.queries))]
        kind = "query"
        if config.mutation_rate > 0 and rng.random() < config.mutation_rate:
            kind, label, text = "mutation", "mutation", ""
        if config.mode == "open":
            t += rng.expovariate(config.arrival_rate)
        jobs.append(QueryJob(
            job_id=i,
            label=label,
            query_text=text,
            initiator=initiators[i % len(initiators)] if initiators else None,
            kind=kind,
            arrival=t,
        ))
    return jobs


def churn_schedule(
    node_ids: Sequence[str],
    num_crashes: int,
    window: Tuple[float, float],
    seed: int = 0,
    recover_after: Optional[float] = None,
) -> Tuple[ChurnEvent, ...]:
    """A seeded, deterministic crash (and optional recovery) schedule.

    Victims are drawn from *node_ids* without replacement (the pool
    refills if *num_crashes* exceeds it); crash times are uniform over
    *window*.  With *recover_after*, each victim comes back that many
    seconds after its crash.  The same arguments always produce the same
    schedule, so churn runs are as reproducible as churn-free ones.
    """
    rng = random.Random(seed)
    pool: List[str] = []
    events: List[ChurnEvent] = []
    lo, hi = window
    for _ in range(num_crashes):
        if not pool:
            pool = list(node_ids)
        victim = pool.pop(rng.randrange(len(pool)))
        at = lo + (hi - lo) * rng.random()
        events.append(ChurnEvent(at, "crash", victim))
        if recover_after is not None:
            events.append(ChurnEvent(at + recover_after, "recover", victim))
    return tuple(sorted(events, key=lambda e: (e.at, e.node_id, e.action)))


def run_workload(
    system,
    config: LoadConfig,
    options: Optional[ExecutionOptions] = None,
) -> WorkloadReport:
    """Run *config* against *system* and aggregate the outcome.

    Every job executes as a concurrent ``execute_process`` coroutine.
    Failed queries (e.g. a site crashed mid-flight) count as ``failed``
    with the :class:`QueryFailed` message on the job; they never abort
    the rest of the workload.
    """
    sim = system.sim
    executor = DistributedExecutor(system, options)
    jobs = build_jobs(config)
    parsed = {
        job.job_id: parse_query(job.query_text, COMMON_PREFIXES)
        for job in jobs if job.kind == "query"
    }
    done_events = {job.job_id: sim.event() for job in jobs}

    state = {"in_flight": 0, "peak": 0, "shed": 0, "deferred": 0,
             "max_queue": 0, "mutations": 0}
    waiting: deque = deque()
    storage_ids = sorted(system.storage_nodes)
    published: deque = deque()

    def apply_mutation(job: QueryJob) -> None:
        """Publish a fresh delta batch, or retract the oldest live one.

        Odd-numbered mutations retract (keeping the dataset bounded);
        the fast-mode incremental API advances the data-epoch ledger
        either way, so every mutation is a real invalidation event."""
        seq = state["mutations"]
        state["mutations"] += 1
        storage = system.storage_nodes[storage_ids[seq % len(storage_ids)]]
        if seq % 2 == 1 and published:
            victim_storage, batch = published.popleft()
            victim_storage.remove_triples(batch)
            system.unpublish_delta(victim_storage, batch)
        else:
            batch = default_mutation_batch(seq)
            storage.add_triples(batch)
            system.publish_delta(storage, batch)
            published.append((storage, batch))

    def runner(job: QueryJob):
        try:
            if job.kind == "mutation":
                yield sim.timeout(0.0)
                apply_mutation(job)
            else:
                result, report = yield from executor.execute_process(
                    parsed[job.job_id], job.initiator
                )
                job.result, job.report = result, report
        except QueryFailed as exc:
            job.error = str(exc)
        job.finished = sim.now
        state["in_flight"] -= 1
        if waiting:
            launch(waiting.popleft())
        done_events[job.job_id].succeed(None)

    def launch(job: QueryJob) -> None:
        state["in_flight"] += 1
        if state["in_flight"] > state["peak"]:
            state["peak"] = state["in_flight"]
        job.started = sim.now
        sim.process(runner(job))

    def submit(job: QueryJob) -> None:
        job.submitted = sim.now
        limit = config.max_in_flight
        if limit is None or state["in_flight"] < limit:
            launch(job)
        elif config.queue_limit is None or len(waiting) < config.queue_limit:
            state["deferred"] += 1
            waiting.append(job)
            if len(waiting) > state["max_queue"]:
                state["max_queue"] = len(waiting)
        else:
            state["shed"] += 1
            job.shed = True
            job.error = "shed"
            job.finished = sim.now
            done_events[job.job_id].succeed(None)

    def open_driver():
        for job in jobs:
            if job.arrival > sim.now:
                yield sim.timeout(job.arrival - sim.now)
            submit(job)

    pending = deque(jobs)

    def client():
        while pending:
            job = pending.popleft()
            submit(job)
            yield done_events[job.job_id]

    if config.faults is not None:
        system.network.install_faults(config.faults)
    checkpoint = system.stats.checkpoint()
    failover_before = system.network.failover.checkpoint()
    cache_before = system.network.cache.checkpoint()
    wall_start = time.perf_counter()
    t_start = sim.now
    for churn_event in config.churn:
        if churn_event.action not in ("crash", "recover"):
            raise ValueError(f"unknown churn action {churn_event.action!r}")

        def fire(_e, ev=churn_event) -> None:
            if ev.action == "crash":
                system.network.fail_node(ev.node_id)
            else:
                system.network.recover_node(ev.node_id)

        sim.timeout(max(churn_event.at, 0.0)).callbacks.append(fire)
    if config.mode == "open":
        sim.process(open_driver())
    else:
        for _ in range(max(1, config.concurrency)):
            sim.process(client())
    sim.run()
    wall_clock_s = time.perf_counter() - wall_start

    delta = system.stats.delta(checkpoint)
    finish_times = [j.finished for j in jobs if j.finished is not None]
    duration = (max(finish_times) - t_start) if finish_times else 0.0
    completed = sum(1 for j in jobs if j.ok)
    failed = sum(1 for j in jobs if j.error is not None and not j.shed)
    latencies = [j.latency for j in jobs if j.ok and j.latency is not None]
    contention: Dict[str, Any] = {}
    model = system.network.contention
    if model is not None:
        contention = {
            "max_queue_depth": model.max_queue_depth(),
            "total_wait": model.total_wait(),
            "queues": model.snapshot(),
        }
    return WorkloadReport(
        jobs=jobs,
        duration=duration,
        completed=completed,
        failed=failed,
        shed=state["shed"],
        deferred=state["deferred"],
        throughput=(completed / duration) if duration > 0 else float(completed),
        latency=summarize(latencies) if latencies else None,
        messages=delta.messages,
        bytes_total=delta.bytes,
        peak_in_flight=state["peak"],
        max_admission_queue=state["max_queue"],
        contention=contention,
        failover=system.network.failover.delta(failover_before),
        cache=system.network.cache.delta(cache_before),
        mutations=state["mutations"],
        churn_events=len(config.churn),
        incomplete=sum(
            1 for j in jobs
            if j.ok and j.report is not None and j.report.incomplete
        ),
        faults_injected=(
            dict(system.network.faults.injected)
            if system.network.faults is not None else {}
        ),
        wall_clock_s=wall_clock_s,
        queries_per_wall_second=(
            completed / wall_clock_s if wall_clock_s > 0 else 0.0
        ),
    )
