"""Query workload generators.

Produces SPARQL query texts of the families the paper analyses:
primitive queries of all eight shapes (Sect. IV-C), conjunctions
(IV-D), optionals (IV-E), unions (IV-F), and filters (IV-G) — grounded in
an actual dataset so that result sizes are non-trivial.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..rdf.terms import IRI, BlankNode, Literal, RDFTerm
from ..rdf.triple import PatternShape, Triple

__all__ = ["QueryWorkload", "PAPER_FIG_QUERIES", "paper_query_mix"]


#: The paper's example queries (Figs. 4-9), over the vocabulary of
#: :func:`repro.workloads.datasets.paper_example_dataset` — the canonical
#: mixed workload for the concurrency experiments: a filtered ordered
#: conjunction, a primitive, a plain BGP, an OPTIONAL, a UNION, and a
#: filter + left-join combination.
PAPER_FIG_QUERIES = {
    "fig4": """SELECT ?x ?y ?z WHERE {
  ?x foaf:name ?name .
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
  ?y foaf:knows ?z .
  FILTER regex(?name, "Smith")
} ORDER BY DESC(?x)""",
    "fig5": "SELECT ?x WHERE { ?x foaf:knows ns:me . }",
    "fig6": """SELECT ?x ?y ?z WHERE {
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
}""",
    "fig7": """SELECT ?x ?y WHERE {
  { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
  OPTIONAL { ?y foaf:nick "Shrek" . }
}""",
    "fig8": """SELECT ?x ?y ?z WHERE {
  { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
  UNION
  { ?x foaf:mbox <mailto:abc@example.org> . ?x foaf:knows ?z . }
}""",
    "fig9": """SELECT ?x ?y ?z WHERE {
  ?x foaf:name ?name ;
     ns:knowsNothingAbout ?y .
  FILTER regex(?name, "Smith")
  OPTIONAL { ?y foaf:knows ?z . }
}""",
}


def paper_query_mix():
    """The Fig. 4-9 mix as ``(label, query_text)`` pairs, in figure order."""
    return list(PAPER_FIG_QUERIES.items())


def _term_sparql(term: RDFTerm) -> str:
    if isinstance(term, BlankNode):
        # Blank nodes cannot be addressed from a query; use a variable.
        raise ValueError("cannot ground a query position in a blank node")
    return term.n3()


class QueryWorkload:
    """Draws ground terms from a dataset to build queries that match."""

    def __init__(self, triples: Sequence[Triple], seed: int = 0) -> None:
        if not triples:
            raise ValueError("query workload needs a non-empty dataset")
        self.triples = list(triples)
        self.rng = random.Random(seed)

    # ------------------------------------------------------------ primitives

    def primitive(self, shape: PatternShape, select: str = "*") -> str:
        """A single-triple-pattern query of the given shape, grounded in a
        random dataset triple (so it has at least one answer)."""
        while True:
            triple = self.rng.choice(self.triples)
            try:
                s = _term_sparql(triple.s) if "s" in shape.bound_positions else "?s"
                p = _term_sparql(triple.p) if "p" in shape.bound_positions else "?p"
                o = _term_sparql(triple.o) if "o" in shape.bound_positions else "?o"
            except ValueError:
                continue
            return f"SELECT {select} WHERE {{ {s} {p} {o} . }}"

    def primitives(self, count: int, shape: Optional[PatternShape] = None) -> List[str]:
        shapes = list(PatternShape) if shape is None else [shape]
        out = []
        for _ in range(count):
            out.append(self.primitive(self.rng.choice(shapes)))
        return out

    # ----------------------------------------------------------- compounds

    def conjunction(self, num_patterns: int = 2) -> str:
        """A star-join around a random subject's predicates (IV-D style)."""
        anchor = self.rng.choice(self.triples)
        same_subject = [t for t in self.triples if t.s == anchor.s]
        chosen = same_subject[:num_patterns]
        lines = []
        for i, t in enumerate(chosen):
            lines.append(f"?x {_term_sparql(t.p)} ?v{i} .")
        while len(lines) < num_patterns:
            t = self.rng.choice(self.triples)
            lines.append(f"?x {_term_sparql(t.p)} ?v{len(lines)} .")
        body = "\n  ".join(lines)
        return f"SELECT * WHERE {{\n  {body}\n}}"

    def optional(self) -> str:
        t1 = self.rng.choice(self.triples)
        t2 = self.rng.choice(self.triples)
        return (
            "SELECT * WHERE {\n"
            f"  ?x {_term_sparql(t1.p)} ?a .\n"
            f"  OPTIONAL {{ ?a {_term_sparql(t2.p)} ?b . }}\n"
            "}"
        )

    def union(self) -> str:
        t1 = self.rng.choice(self.triples)
        t2 = self.rng.choice(self.triples)
        return (
            "SELECT * WHERE {\n"
            f"  {{ ?x {_term_sparql(t1.p)} ?a . }}\n"
            "  UNION\n"
            f"  {{ ?x {_term_sparql(t2.p)} ?a . }}\n"
            "}"
        )

    def filtered(self, pattern_predicate: Optional[IRI] = None, regex: str = "Smith") -> str:
        if pattern_predicate is None:
            literal_triples = [t for t in self.triples if isinstance(t.o, Literal)]
            pattern_predicate = self.rng.choice(literal_triples).p if literal_triples else self.rng.choice(self.triples).p
        return (
            "SELECT * WHERE {\n"
            f"  ?x {pattern_predicate.n3()} ?v .\n"
            f'  FILTER regex(?v, "{regex}")\n'
            "}"
        )
