"""Zipfian sampling for skewed workload generation.

Predicate and object popularity in real RDF data is heavily skewed; the
index-load experiment (E9) sweeps this skew to show the cost of the ⟨p⟩
index key the paper's six-key scheme inherits from RDFPeers.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence, TypeVar

__all__ = ["ZipfSampler"]

T = TypeVar("T")


class ZipfSampler:
    """Samples indices 0..n-1 with P(i) ∝ 1/(i+1)^s.

    s = 0 is uniform; s ≈ 1 is classic Zipf. Uses an exact inverse-CDF
    table, so sampling is O(log n) and deterministic under a seeded RNG.
    """

    def __init__(self, n: int, s: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if s < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.s = s
        self._rng = rng
        weights = [1.0 / (i + 1) ** s for i in range(n)]
        self._cdf: List[float] = list(itertools.accumulate(weights))
        self._total = self._cdf[-1]

    def sample(self) -> int:
        u = self._rng.random() * self._total
        return bisect.bisect_left(self._cdf, u)

    def choice(self, items: Sequence[T]) -> T:
        if len(items) != self.n:
            raise ValueError("items length must match sampler size")
        return items[self.sample()]
