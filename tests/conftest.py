"""Shared fixtures: ready-built systems and datasets."""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import pytest

from repro.query import DistributedExecutor
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

from helpers import build_system


@pytest.fixture
def paper_system():
    """The paper-example dataset spread over D1..D4 under 8 index nodes."""
    return build_system()


@pytest.fixture
def foaf_system():
    """A mid-size FOAF system: 60 people over 6 providers, 20% overlap."""
    triples = generate_foaf_triples(FoafConfig(num_people=60, seed=7))
    parts = partition_triples(triples, 6, overlap=0.2, seed=8)
    return build_system(num_index=10, parts=parts)


@pytest.fixture
def executor(paper_system):
    return DistributedExecutor(paper_system)
