"""Shared test helpers (importable from test modules)."""

from __future__ import annotations

from repro.chord import IdentifierSpace
from repro.overlay import HybridSystem
from repro.workloads import paper_example_partition


def build_system(
    num_index: int = 8,
    parts=None,
    replication_factor: int = 1,
    space_bits: int = 32,
    state_dir=None,
    fsync: bool = False,
    snapshot_every=None,
) -> HybridSystem:
    """A converged hybrid system with the given storage partitions."""
    system = HybridSystem(
        space=IdentifierSpace(space_bits),
        replication_factor=replication_factor,
        state_dir=state_dir,
        fsync=fsync,
        snapshot_every=snapshot_every,
    )
    for i in range(num_index):
        system.add_index_node(f"N{i}")
    system.build_ring()
    if parts is None:
        parts = paper_example_partition()
    if isinstance(parts, dict):
        for storage_id, triples in parts.items():
            system.add_storage_node(storage_id, triples)
    else:
        for i, triples in enumerate(parts):
            system.add_storage_node(f"D{i}", triples)
    return system
