"""Artifact reproduction: every figure and the table of the paper.

* A1 — Fig. 1: the 9-node network in a 4-bit identifier space.
* A2 — Fig. 2 + Table I: the two-level index and N7's location table.
* A3 — Fig. 3: the five workflow stages, observable on a live query.
* A4 — Figs. 4-9: the example queries parse to the algebra the paper
  names and return correct answers when executed distributedly.
"""

import pytest

from repro.overlay import LocationTable, fig1_network, key_for_pattern
from repro.query import DistributedExecutor
from repro.rdf import COMMON_PREFIXES, FOAF, NS, IRI, TriplePattern, Variable
from repro.sparql import (
    BGP,
    Filter,
    LeftJoin,
    Union,
    evaluate_query,
    format_algebra,
    parse_query,
    translate_pattern,
)
from repro.sparql.optimizer import push_filters
from repro.workloads import paper_example_partition

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


# ---------------------------------------------------------------- A1: Fig. 1


class TestFig1Network:
    def test_nine_nodes_in_4bit_space(self):
        system = fig1_network()
        assert system.space.bits == 4
        assert len(system.index_nodes) == 5
        assert len(system.storage_nodes) == 4

    def test_ring_order_matches_figure(self):
        system = fig1_network()
        assert [r.node_id for r in system.ring.sorted_refs()] == [
            "N1", "N4", "N7", "N12", "N15",
        ]

    def test_index_nodes_point_to_storage_nodes(self):
        system = fig1_network()
        pointers = {
            idx: list(node.attached_storage)
            for idx, node in system.index_nodes.items()
        }
        assert pointers["N7"] == ["D1", "D3", "D4"]
        assert pointers["N15"] == ["D2"]


# ------------------------------------------------------- A2: Fig. 2, Table I


class TestTable1LocationTable:
    def paper_table(self):
        table = LocationTable()
        table.add(5, "D1", 15)
        table.add(5, "D3", 10)
        table.add(6, "D1", 10)
        table.add(6, "D3", 20)
        table.add(6, "D4", 15)
        table.add(7, "D1", 30)
        return table

    def test_rendering_matches_paper_rows(self):
        table = self.paper_table()
        text = table.format_table({5: "K1", 6: "K2", 7: "K3"})
        assert "K1 | D1 (15), D3 (10)" in text
        assert "K2 | D1 (10), D3 (20), D4 (15)" in text
        assert "K3 | D1 (30)" in text

    def test_fig2_lookup_flow(self):
        """⟨si, pi, ?o⟩ hashes to Kj; N7's table yields D1, D3, D4."""
        system = fig1_network()
        n7 = system.index_nodes["N7"]
        # install the paper's K2 row under a key N7 owns (ids 5, 6, 7)
        n7.table.add(6, "D1", 10)
        n7.table.add(6, "D3", 20)
        n7.table.add(6, "D4", 15)
        entries = n7.locate(6)
        assert [e.storage_id for e in entries] == ["D1", "D3", "D4"]
        assert [e.frequency for e in entries] == [10, 20, 15]

    def test_live_system_builds_equivalent_structure(self, paper_system):
        """On the real pipeline: a published pattern key resolves through
        the ring to a location-table row naming the right providers."""
        pattern = TriplePattern(X, FOAF.knows, Y)
        kind, key = key_for_pattern(pattern, paper_system.space)
        owner = paper_system.ring.owner_of(key)
        entries = owner.locate(key)
        assert [e.storage_id for e in entries] == ["D2"]
        # frequency equals the number of matching triples at the provider
        assert entries[0].frequency == paper_system.storage_nodes["D2"].graph.count(pattern)


# ---------------------------------------------------------------- A3: Fig. 3


class TestFig3Workflow:
    def test_all_stages_observable(self, paper_system):
        """Parse → transform → optimize → distribute → post-process."""
        text = """SELECT ?x ?y ?z WHERE {
            ?x foaf:name ?name ; ns:knowsNothingAbout ?y .
            FILTER regex(?name, "Smith")
            OPTIONAL { ?y foaf:knows ?z . }
        } ORDER BY DESC(?x)"""
        # Stage 1: parsing
        query = parse_query(text, COMMON_PREFIXES)
        # Stage 2: transformation into SPARQL algebra
        algebra = translate_pattern(query.where)
        assert isinstance(algebra, Filter)
        # Stage 3: global optimization rewrites the tree
        optimized = push_filters(algebra)
        assert not isinstance(optimized, Filter)
        # Stages 4+5: distributed execution and post-processing
        executor = DistributedExecutor(paper_system)
        result, report = executor.execute(text, initiator="D1")
        assert report.messages > 0
        # ORDER BY DESC applied at the initiator:
        xs = [row.get(X) for row in result.rows]
        assert xs == sorted(xs, key=lambda t: t.n3(), reverse=True)


# ------------------------------------------------------------ A4: Figs. 4-9


FIG4 = """SELECT ?x ?y ?z WHERE {
  ?x foaf:name ?name .
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
  ?y foaf:knows ?z .
  FILTER regex(?name, "Smith")
} ORDER BY DESC(?x)"""

FIG5 = "SELECT ?x WHERE { ?x foaf:knows ns:me . }"

FIG6 = """SELECT ?x ?y ?z WHERE {
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
}"""

FIG7 = """SELECT ?x ?y WHERE {
  { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
  OPTIONAL { ?y foaf:nick "Shrek" . }
}"""

FIG8 = """SELECT ?x ?y ?z WHERE {
  { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
  UNION
  { ?x foaf:mbox <mailto:abc@example.org> . ?x foaf:knows ?z . }
}"""

FIG9 = """SELECT ?x ?y ?z WHERE {
  ?x foaf:name ?name ;
     ns:knowsNothingAbout ?y .
  FILTER regex(?name, "Smith")
  OPTIONAL { ?y foaf:knows ?z . }
}"""


class TestPaperQueries:
    def algebra(self, text):
        return translate_pattern(parse_query(text, COMMON_PREFIXES).where)

    def test_fig5_is_bgp_p(self):
        assert self.algebra(FIG5) == BGP(
            (TriplePattern(X, FOAF.knows, IRI(NS.base + "me")),)
        )

    def test_fig6_is_bgp_p1_p2(self):
        alg = self.algebra(FIG6)
        assert isinstance(alg, BGP) and len(alg.patterns) == 2

    def test_fig7_is_leftjoin_true(self):
        alg = self.algebra(FIG7)
        assert isinstance(alg, LeftJoin) and alg.condition is None

    def test_fig8_is_union_of_bgps(self):
        alg = self.algebra(FIG8)
        assert isinstance(alg, Union)
        assert isinstance(alg.left, BGP) and isinstance(alg.right, BGP)

    def test_fig9_is_filter_leftjoin_bgp12_bgp3_true(self):
        alg = self.algebra(FIG9)
        names = {
            TriplePattern(X, FOAF.name, Variable("name")): "P1",
            TriplePattern(X, NS.knowsNothingAbout, Y): "P2",
            TriplePattern(Y, FOAF.knows, Z): "P3",
            alg.condition: "C1",
        }
        assert format_algebra(alg, names) == \
            "Filter(C1, LeftJoin(BGP(P1. P2), BGP(P3), true))"

    @pytest.mark.parametrize("text", [FIG4, FIG5, FIG6, FIG7, FIG8, FIG9],
                             ids=["fig4", "fig5", "fig6", "fig7", "fig8", "fig9"])
    def test_distributed_answers_match_oracle_and_are_nonempty(
        self, paper_system, text
    ):
        query = parse_query(text, COMMON_PREFIXES)
        oracle = evaluate_query(query, paper_system.union_graph())
        executor = DistributedExecutor(paper_system)
        result, report = executor.execute(text, initiator="D1")
        assert result.rows == oracle.rows
        assert len(result.rows) > 0  # the canned dataset answers every figure

    def test_fig4_answer_is_the_intended_one(self, paper_system):
        executor = DistributedExecutor(paper_system)
        result, _ = executor.execute(FIG4, initiator="D1")
        [row] = result.bindings()
        assert row["x"].value.endswith("anna")
        assert row["y"].value.endswith("bella")
        assert row["z"].value.endswith("carl")

    def test_fig1_system_runs_fig5_end_to_end(self):
        """The exact Fig. 1 topology resolves the Fig. 5 query."""
        system = fig1_network(paper_example_partition())
        result, report = system.execute(FIG5, initiator="D1")
        assert len(result.rows) == 2
        assert report.messages > 0
