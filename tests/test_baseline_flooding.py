"""Flooding baseline tests: reachability, recall vs TTL, dedup, cost."""


from repro.baselines import FloodingSystem
from repro.rdf import FOAF, Graph, TriplePattern, Variable
from repro.sparql.algebra import BGP
from repro.sparql.solutions import match_pattern
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

X, Y = Variable("x"), Variable("y")
ALG = BGP((TriplePattern(X, FOAF.knows, Y),))


def build_flooding(num_nodes=12, degree=3, seed=81):
    triples = generate_foaf_triples(FoafConfig(num_people=40, seed=seed))
    parts = partition_triples(triples, num_nodes, seed=seed + 1)
    system = FloodingSystem()
    for i, part in enumerate(parts):
        system.add_node(f"F{i}", part)
    system.wire_random(degree, seed=seed + 2)
    return system, triples


def oracle(triples):
    g = Graph(triples)
    return {match_pattern(ALG.patterns[0], t) for t in g.triples(ALG.patterns[0])}


class TestWiring:
    def test_backbone_guarantees_connectivity(self):
        system, _ = build_flooding(degree=2)
        # BFS over neighbors from F0 reaches everyone.
        seen = {"F0"}
        frontier = ["F0"]
        while frontier:
            node = system.nodes[frontier.pop()]
            for nb in node.neighbors:
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        assert seen == set(system.nodes)

    def test_degree_at_least_requested(self):
        system, _ = build_flooding(degree=4)
        for node in system.nodes.values():
            assert len(node.neighbors) >= 4


class TestFloodQuery:
    def test_high_ttl_reaches_full_recall(self):
        system, triples = build_flooding()
        result = system.query("F0", ALG, ttl=12)
        assert set(result) == oracle(triples)
        assert system.nodes_reached() == len(system.nodes)

    def test_low_ttl_trades_recall(self):
        system, triples = build_flooding(degree=2)
        result = system.query("F0", ALG, ttl=2)
        full = oracle(triples)
        assert set(result) <= full
        assert system.nodes_reached() < len(system.nodes)

    def test_duplicate_floods_suppressed(self):
        system, _ = build_flooding(degree=4)
        system.query("F0", ALG, ttl=12)
        # every node processed the query exactly once despite many paths
        qid = "flood-1"
        assert all(qid in n._seen_queries for n in system.nodes.values())

    def test_messages_scale_with_edges_not_providers(self):
        """Flooding pays per edge, even when only a few nodes hold data."""
        system, triples = build_flooding(degree=4)
        system.stats.reset()
        system.query("F0", ALG, ttl=12)
        flood_msgs = system.stats.per_kind_messages["flood"]
        total_edges = sum(len(n.neighbors) for n in system.nodes.values()) // 2
        assert flood_msgs >= total_edges  # at least one traversal per edge

    def test_second_query_gets_fresh_qid(self):
        system, triples = build_flooding()
        first = system.query("F0", ALG, ttl=12)
        second = system.query("F1", ALG, ttl=12)
        assert set(first) == set(second) == oracle(triples)
