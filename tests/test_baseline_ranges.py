"""Range-query support (paper Sect. II): locality-preserving hashing,
range ordering, and the ring-walk resolution in the RDFPeers baseline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import RDFPeersSystem
from repro.baselines.ranges import (
    LocalityHash,
    NumericRange,
    numeric_value,
    sort_ranges,
)
from repro.chord import IdentifierSpace
from repro.rdf import IRI, Literal, Triple, XSD_INTEGER

AGE = IRI("http://example.org/ns#age")
SPACE = IdentifierSpace(16)


def person(i):
    return IRI(f"http://example.org/people/p{i}")


def age_triples(ages):
    return [
        Triple(person(i), AGE, Literal(str(age), datatype=IRI(XSD_INTEGER)))
        for i, age in enumerate(ages)
    ]


class TestLocalityHash:
    def test_order_preserving(self):
        lh = LocalityHash(0, 100, SPACE)
        keys = [lh.key(v) for v in (0, 10, 50, 90, 100)]
        assert keys == sorted(keys)

    def test_bounds_map_to_ring_ends(self):
        lh = LocalityHash(0, 100, SPACE)
        assert lh.key(0) == 0
        assert lh.key(100) == SPACE.size - 1

    def test_out_of_domain_clamps(self):
        lh = LocalityHash(0, 100, SPACE)
        assert lh.key(-5) == lh.key(0)
        assert lh.key(500) == lh.key(100)

    def test_degenerate_domain_rejected(self):
        with pytest.raises(ValueError):
            LocalityHash(10, 10, SPACE)

    @settings(max_examples=100, deadline=None)
    @given(a=st.floats(0, 100), b=st.floats(0, 100))
    def test_property_monotone(self, a, b):
        lh = LocalityHash(0, 100, SPACE)
        if a <= b:
            assert lh.key(a) <= lh.key(b)


class TestRangeHelpers:
    def test_sort_ranges_ascending(self):
        rs = [NumericRange(50, 60), NumericRange(10, 20), NumericRange(30, 35)]
        assert [r.lo for r in sort_ranges(rs)] == [10, 30, 50]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            NumericRange(5, 4)

    def test_numeric_value(self):
        assert numeric_value(Literal("42", datatype=IRI(XSD_INTEGER))) == 42.0
        assert numeric_value(Literal("plain")) is None
        assert numeric_value(IRI("http://x/a")) is None


def build_range_system(ages, num_nodes=10, seed=3):
    system = RDFPeersSystem(space=IdentifierSpace(16))
    rng = random.Random(seed)
    for i, ident in enumerate(rng.sample(range(SPACE.size), num_nodes)):
        system.add_node(f"P{i}", ident)
    system.build_ring()
    system.enable_numeric_index(0, 120)
    system.publish_numeric("P0", age_triples(ages))
    return system


class TestRangeQueries:
    AGES = [5, 17, 18, 25, 33, 40, 41, 59, 64, 80, 99, 112]

    def oracle(self, *ranges):
        return {
            t for t in age_triples(self.AGES)
            if any(r.contains(float(t.o.to_python())) for r in ranges)
        }

    def test_single_range(self):
        system = build_range_system(self.AGES)
        rng = NumericRange(18, 41)
        result = system.range_query("P1", AGE, [rng])
        assert set(result) == self.oracle(rng)

    def test_range_at_domain_edges(self):
        system = build_range_system(self.AGES)
        low = NumericRange(0, 5)
        high = NumericRange(99, 120)
        assert set(system.range_query("P1", AGE, [low])) == self.oracle(low)
        assert set(system.range_query("P1", AGE, [high])) == self.oracle(high)

    def test_disjunctive_ranges_one_traversal(self):
        system = build_range_system(self.AGES)
        ranges = [NumericRange(60, 70), NumericRange(10, 20), NumericRange(15, 30)]
        result = system.range_query("P1", AGE, ranges)
        assert set(result) == self.oracle(*ranges)

    def test_empty_result(self):
        system = build_range_system(self.AGES)
        assert system.range_query("P1", AGE, [NumericRange(110.5, 111.5)]) == []

    def test_walk_visits_only_arc_nodes(self):
        """A narrow range must touch far fewer nodes than the ring holds."""
        system = build_range_system(self.AGES, num_nodes=10)
        system.stats.reset()
        system.range_query("P1", AGE, [NumericRange(18, 19)])
        scanned = {
            r.dst for r in system.stats.records if r.kind == "range_scan"
        }
        assert 1 <= len(scanned) <= 4  # not the whole 10-node ring

    def test_full_domain_range_finds_everything(self):
        system = build_range_system(self.AGES)
        rng = NumericRange(0, 120)
        assert set(system.range_query("P1", AGE, [rng])) == set(age_triples(self.AGES))


class TestHybridRangeViaFilter:
    def test_hybrid_answers_ranges_with_filter_pushing(self):
        """The hybrid system needs no special machinery: a numeric FILTER
        over the ⟨p⟩-indexed pattern, pushed to the providers."""
        from helpers import build_system

        ages = TestRangeQueries.AGES
        system = build_system(num_index=8, parts=[age_triples(ages)])
        result, report = system.execute(
            "SELECT ?x ?age WHERE { ?x <http://example.org/ns#age> ?age . "
            "FILTER (?age >= 18 && ?age <= 41) }",
            initiator="D0",
        )
        got = sorted(int(b["age"].lexical) for b in result.bindings())
        assert got == [18, 25, 33, 40, 41]
