"""RDFPeers baseline tests: storage placement, queries, the architectural
contrast with the paper's two-level index (data stays at providers)."""

import pytest

from repro.baselines import RDFPeersSystem
from repro.rdf import FOAF, NS, Graph, TriplePattern, Variable
from repro.sparql.solutions import match_pattern
from repro.workloads import FoafConfig, generate_foaf_triples, paper_example_dataset


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def make_rdfpeers(num_nodes=8):
    system = RDFPeersSystem()
    for i in range(num_nodes):
        system.add_node(f"P{i}")
    system.build_ring()
    return system


@pytest.fixture
def loaded():
    system = make_rdfpeers()
    system.publish("P0", paper_example_dataset())
    return system


class TestStorage:
    def test_each_triple_stored_three_times(self, loaded):
        dataset = paper_example_dataset()
        assert loaded.total_stored() >= len(dataset)  # dedup within buckets
        # every triple reachable via each of its three attribute keys
        t = dataset[0]
        for pattern in (
            TriplePattern(t.s, Y, Z),
            TriplePattern(X, t.p, Z),
            TriplePattern(X, Y, t.o),
        ):
            assert loaded.query_pattern("P1", pattern)

    def test_publication_migrates_data(self):
        system = make_rdfpeers()
        before = system.stats.bytes_total
        system.publish("P0", paper_example_dataset())
        migrated = system.stats.bytes_total - before
        # the triples themselves crossed the network (three placements)
        assert migrated > 0
        assert system.total_stored() > 0


class TestQueries:
    def test_single_pattern_matches_local_oracle(self, loaded):
        g = Graph(paper_example_dataset())
        pattern = TriplePattern(X, FOAF.knows, Y)
        expected = {match_pattern(pattern, t) for t in g.triples(pattern)}
        got = set(loaded.query_pattern("P2", pattern))
        assert got == expected

    def test_conjunctive_subject_anchored(self, loaded):
        g = Graph(paper_example_dataset())
        patterns = [
            TriplePattern(X, FOAF.name, Variable("n")),
            TriplePattern(X, NS.knowsNothingAbout, Y),
        ]
        from repro.sparql.solutions import join

        expected = None
        for pattern in patterns:
            matches = {match_pattern(pattern, t) for t in g.triples(pattern)}
            expected = matches if expected is None else join(expected, matches)
        got = set(loaded.query_conjunction("P3", patterns))
        assert got == expected

    def test_conjunction_short_circuits_on_empty(self, loaded):
        patterns = [
            TriplePattern(X, FOAF.knows, IRI_NOBODY),
            TriplePattern(X, FOAF.name, Variable("n")),
        ]
        assert loaded.query_conjunction("P0", patterns) == []

    def test_fully_unbound_rejected(self, loaded):
        with pytest.raises(ValueError):
            loaded.query_pattern("P0", TriplePattern(X, Y, Z))


from repro.rdf import IRI as _IRI

IRI_NOBODY = _IRI("http://example.org/people/nobody")


class TestArchitecturalContrast:
    def test_hybrid_ships_index_entries_not_triples(self):
        """E7's core qualitative claim: publication in the paper's system
        moves only location-table entries; RDFPeers moves the data."""
        triples = generate_foaf_triples(FoafConfig(num_people=30, seed=5))

        rdfpeers = make_rdfpeers()
        rdfpeers.publish("P0", triples)
        # Data-plane traffic: the triples themselves, shipped to 3 owners.
        rdfpeers_data_bytes = rdfpeers.stats.bytes_for(
            "store_triples", "store_triples.reply"
        )

        from repro.overlay import HybridSystem

        hybrid = HybridSystem()
        for i in range(8):
            hybrid.add_index_node(f"N{i}")
        hybrid.build_ring()
        hybrid.add_storage_node("D0", triples, publish=True, protocol=True)
        hybrid_data_bytes = hybrid.stats.bytes_for(
            "publish", "publish.reply", "index_put", "index_put.reply", "replica_put"
        )

        # data remains at the provider in the hybrid system (nothing moved
        # into the ring nodes)...
        assert len(hybrid.storage_nodes["D0"].graph) == len(set(triples))
        assert rdfpeers.total_stored() > 0
        # ... and the hybrid data plane ships only (key, provider, freq)
        # entries, cheaper than RDFPeers' three full copies of every triple.
        assert hybrid_data_bytes < rdfpeers_data_bytes
