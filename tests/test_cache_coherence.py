"""Property test (PR 9 satellite 3): the result cache is invisible.

Random interleavings of ``publish_delta`` / ``unpublish_delta`` / query
execution must return exactly the same answers with the cache on as with
it off — and both must match the local oracle over the union of all
provider graphs. The deltas deliberately add and remove ``foaf:knows``
triples, the predicate every generated query touches, so cached entries
actually go stale mid-script; an invalidation bug (a missed epoch
advance, a stamp captured after instead of before the fill) shows up as
a divergent answer here.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.query import DistributedExecutor, ExecutionOptions
from repro.rdf import COMMON_PREFIXES, FOAF, IRI, Triple
from repro.sparql import evaluate_query, parse_query
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

from helpers import build_system

QUERIES = [
    "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }",
    "SELECT ?x ?z WHERE { ?x foaf:knows ?y . ?y foaf:knows ?z . }",
    "SELECT ?y WHERE { <http://example.org/people/person0> foaf:knows ?y . }",
]

CACHED = ExecutionOptions(result_cache=True, cache_admit_threshold=1)
PLAIN = ExecutionOptions()

#: An op is ``(kind, parameter)``: 0 = query (parameter picks the text),
#: 1 = publish a fresh delta batch, 2 = unpublish the oldest live batch.
ops_st = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 999)),
    min_size=2,
    max_size=14,
)


def delta_batch(seq: int):
    """A unique, never-colliding pair of knows-triples for delta *seq*."""
    a = IRI(f"http://example.org/coherence/delta{seq}a")
    b = IRI(f"http://example.org/coherence/delta{seq}b")
    return [Triple(a, FOAF.knows, b), Triple(b, FOAF.knows, a)]


def fresh_system(data_seed):
    triples = generate_foaf_triples(FoafConfig(num_people=12, seed=data_seed))
    parts = partition_triples(triples, 3, overlap=0.2, seed=data_seed + 1)
    return build_system(parts=parts)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data_seed=st.integers(0, 500), ops=ops_st)
def test_property_cache_is_answer_invisible(data_seed, ops):
    cached_system = fresh_system(data_seed)
    plain_system = fresh_system(data_seed)
    cached_exec = DistributedExecutor(cached_system, CACHED)
    plain_exec = DistributedExecutor(plain_system, PLAIN)

    storage_ids = sorted(cached_system.storage_nodes)
    published = []  # (storage_id, batch) still live
    seq = 0
    for kind, param in ops:
        if kind == 1:
            batch = delta_batch(seq)
            sid = storage_ids[param % len(storage_ids)]
            for system in (cached_system, plain_system):
                storage = system.storage_nodes[sid]
                storage.add_triples(batch)
                system.publish_delta(storage, batch)
            published.append((sid, batch))
            seq += 1
        elif kind == 2 and published:
            sid, batch = published.pop(param % len(published))
            for system in (cached_system, plain_system):
                storage = system.storage_nodes[sid]
                storage.remove_triples(batch)
                system.unpublish_delta(storage, batch)
        else:
            text = QUERIES[param % len(QUERIES)]
            with_cache, _ = cached_exec.execute(text, initiator="D1")
            without, _ = plain_exec.execute(text, initiator="D1")
            assert with_cache.rows == without.rows
            oracle = evaluate_query(
                parse_query(text, COMMON_PREFIXES),
                cached_system.union_graph(),
            )
            assert with_cache.rows == oracle.rows
