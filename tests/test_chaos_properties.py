"""Chaos property test: no fault plan may produce a wrong answer.

For every seeded random fault plan (message loss, duplication, delay
spikes, an asymmetric partition, a node brownout) and every paper
example query (Figs. 4-9), a run with the full defense stack enabled
(retries + failover + breakers + partial results) must end in exactly
one of three ways:

1. **exact** — bit-identical to the fault-free answer;
2. **failed** — a *typed* :class:`QueryFailed` (deadline, delivery
   timeout); never a bare KeyError from a half-cleaned-up walk;
3. **flagged subset** — ``report.incomplete`` is True and the rows are
   a sub-multiset of the fault-free answer.

A wrong or extra row — or a silent subset with ``incomplete=False`` —
is a property violation. This is the regression net over the chaos
layer's one invariant: *degradation is always visible*.

``REPRO_CHAOS_SEEDS`` (comma-separated) overrides the seed list — CI's
chaos-smoke job pins three seeds; the default sweep runs twelve.
"""

from __future__ import annotations

import os
from collections import Counter

import pytest

from repro.net.faults import chaos_plan
from repro.query import DistributedExecutor, ExecutionOptions
from repro.query.executor import QueryFailed
from repro.workloads import PAPER_FIG_QUERIES

from helpers import build_system

DEFAULT_SEEDS = tuple(range(12))


def _seeds():
    raw = os.environ.get("REPRO_CHAOS_SEEDS")
    if raw:
        return tuple(int(s) for s in raw.split(",") if s.strip())
    return DEFAULT_SEEDS


CHAOS_OPTIONS = ExecutionOptions(
    retries=2,
    failover=True,
    breaker=True,
    partial_results=True,
    query_deadline=30.0,
)


def _canon(result):
    if result.boolean is not None:
        return ("ASK", result.boolean)
    return sorted(map(repr, result.rows))


def _is_sub_multiset(small, big) -> bool:
    counts = Counter(big)
    small_counts = Counter(small)
    return all(counts[row] >= n for row, n in small_counts.items())


@pytest.fixture(scope="module")
def fault_free():
    system = build_system(replication_factor=2)
    executor = DistributedExecutor(system)
    return {
        name: _canon(executor.execute(query)[0])
        for name, query in PAPER_FIG_QUERIES.items()
    }


@pytest.mark.parametrize("seed", _seeds())
def test_chaos_outcomes_are_never_wrong(seed, fault_free):
    system = build_system(replication_factor=2)
    plan = chaos_plan(
        sorted(system.network.nodes),
        seed=seed,
        loss=0.05,
        duplicate=0.05,
        delay=0.1,
        partitions=1,
        brownouts=1,
    )
    system.network.install_faults(plan)
    executor = DistributedExecutor(system, CHAOS_OPTIONS)
    for name, query in PAPER_FIG_QUERIES.items():
        truth = fault_free[name]
        try:
            result, report = executor.execute(query)
        except QueryFailed:
            continue  # a typed failure is a permitted outcome
        got = _canon(result)
        if got == truth:
            continue  # exact
        # Anything else must be a *flagged* subset of the truth.
        assert report.incomplete, (
            f"seed {seed} {name}: silent divergence "
            f"({len(got)} rows vs {len(truth)})"
        )
        if truth[0] == "ASK":
            # A degraded ASK may only err toward False (missing rows).
            assert got == ("ASK", False)
        else:
            assert _is_sub_multiset(got, truth), (
                f"seed {seed} {name}: degraded answer is not a subset"
            )


@pytest.mark.parametrize("seed", _seeds()[:3])
def test_chaos_runs_are_reproducible(seed, fault_free):
    """Same plan, same workload -> same answers, same injected-fault
    tally (the determinism the outcome pinning above relies on)."""

    def run():
        system = build_system(replication_factor=2)
        plan = chaos_plan(sorted(system.network.nodes), seed=seed,
                          loss=0.1, duplicate=0.1, delay=0.1,
                          partitions=1, brownouts=1)
        system.network.install_faults(plan)
        executor = DistributedExecutor(system, CHAOS_OPTIONS)
        outcomes = []
        for name, query in PAPER_FIG_QUERIES.items():
            try:
                result, report = executor.execute(query)
                outcomes.append((name, _canon(result), report.incomplete))
            except QueryFailed as exc:
                outcomes.append((name, type(exc).__name__, None))
        return outcomes, dict(system.network.faults.injected)

    assert run() == run()
