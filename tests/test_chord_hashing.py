"""Hashing tests: determinism, distribution, structural injectivity."""

from collections import Counter

from repro.chord import IdentifierSpace, hash_string, hash_term, hash_terms
from repro.rdf import IRI, Literal

SPACE = IdentifierSpace(16)


class TestDeterminism:
    def test_same_input_same_hash(self):
        assert hash_term(IRI("http://x/a"), SPACE) == hash_term(IRI("http://x/a"), SPACE)

    def test_term_kind_distinguished(self):
        # an IRI and a literal with the same text must hash differently
        assert hash_term(IRI("http://x/a"), SPACE) != hash_term(Literal("http://x/a"), SPACE)

    def test_range(self):
        for i in range(50):
            assert 0 <= hash_string(f"value{i}", SPACE) < SPACE.size


class TestPairHashing:
    def test_pair_order_matters(self):
        a, b = IRI("http://x/a"), IRI("http://x/b")
        assert hash_terms([a, b], SPACE) != hash_terms([b, a], SPACE)

    def test_length_prefix_prevents_concatenation_collisions(self):
        # ("ab", "c") vs ("a", "bc") — same concatenation, different keys
        assert hash_terms(["ab", "c"], SPACE) != hash_terms(["a", "bc"], SPACE)

    def test_pair_differs_from_single(self):
        a = IRI("http://x/a")
        assert hash_terms([a], SPACE) != hash_term(a, SPACE) or True  # may collide but:
        # single-vs-pair is distinguished structurally by length prefixing:
        assert hash_terms([a, a], SPACE) != hash_terms([a], SPACE)


class TestDistribution:
    def test_roughly_uniform_over_quadrants(self):
        """SHA-1 should spread 2000 keys over the ring without gross skew."""
        quadrant = Counter()
        for i in range(2000):
            h = hash_string(f"http://example.org/resource/{i}", SPACE)
            quadrant[h * 4 // SPACE.size] += 1
        for count in quadrant.values():
            assert 350 < count < 650  # 500 expected per quadrant
