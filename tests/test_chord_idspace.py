"""Identifier-space interval arithmetic — the foundation Chord stands on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chord import IdentifierSpace

SPACE = IdentifierSpace(4)  # the paper's Fig. 1 universe


class TestIntervals:
    def test_between_open_simple(self):
        assert SPACE.between_open(5, 4, 7)
        assert not SPACE.between_open(4, 4, 7)
        assert not SPACE.between_open(7, 4, 7)

    def test_between_open_wraparound(self):
        assert SPACE.between_open(15, 12, 1)
        assert SPACE.between_open(0, 12, 1)
        assert not SPACE.between_open(1, 12, 1)
        assert not SPACE.between_open(5, 12, 1)

    def test_between_open_degenerate_full_ring(self):
        # (a, a) is everything except a (single-node ring convention)
        assert SPACE.between_open(3, 7, 7)
        assert not SPACE.between_open(7, 7, 7)

    def test_between_right_closed(self):
        assert SPACE.between_right_closed(7, 4, 7)
        assert not SPACE.between_right_closed(4, 4, 7)
        assert SPACE.between_right_closed(1, 12, 1)
        assert not SPACE.between_right_closed(12, 12, 1)

    def test_right_closed_degenerate_is_everything(self):
        assert SPACE.between_right_closed(7, 7, 7)
        assert SPACE.between_right_closed(0, 7, 7)

    def test_normalize(self):
        assert SPACE.normalize(16) == 0
        assert SPACE.normalize(-1) == 15

    def test_distance_clockwise(self):
        assert SPACE.distance(14, 2) == 4
        assert SPACE.distance(2, 14) == 12
        assert SPACE.distance(5, 5) == 0

    def test_finger_start(self):
        assert SPACE.finger_start(1, 0) == 2
        assert SPACE.finger_start(1, 3) == 9
        assert SPACE.finger_start(12, 3) == 4  # wraps

    def test_finger_index_bounds(self):
        with pytest.raises(ValueError):
            SPACE.finger_start(0, 4)

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            IdentifierSpace(1)
        with pytest.raises(ValueError):
            IdentifierSpace(200)


@settings(max_examples=200, deadline=None)
@given(x=st.integers(0, 15), a=st.integers(0, 15), b=st.integers(0, 15))
def test_property_interval_partition(x, a, b):
    """For a != b: (a,b] and (b,a] partition the ring minus nothing — every
    x lies in exactly one of them."""
    if a == b:
        return
    in_ab = SPACE.between_right_closed(x, a, b)
    in_ba = SPACE.between_right_closed(x, b, a)
    assert in_ab != in_ba


@settings(max_examples=200, deadline=None)
@given(x=st.integers(-50, 50), a=st.integers(0, 15), b=st.integers(0, 15))
def test_property_normalization_invariance(x, a, b):
    assert SPACE.between_open(x, a, b) == SPACE.between_open(x + 16, a, b)
