"""Chord protocol tests: static build, lookup correctness and O(log N)
hops, dynamic join, stabilization, failure recovery, key transfer."""

import random

import pytest

from repro.chord import (
    ChordNode,
    ChordRing,
    IdentifierSpace,
    lookup,
    measure_lookups,
)
from repro.net import Network


def build_ring(idents, bits=16, successor_list_size=3):
    space = IdentifierSpace(bits)
    net = Network()
    ring = ChordRing(net, space)
    for i, ident in enumerate(idents):
        ring.add_node(ChordNode(f"N{i}", ident, space,
                                successor_list_size=successor_list_size))
    ring.build_static()
    return ring


class TestStaticBuild:
    def test_consistency(self):
        ring = build_ring([1, 4, 7, 12, 15], bits=4)
        assert ring.is_consistent()

    def test_paper_fig1_successors(self):
        ring = build_ring([1, 4, 7, 12, 15], bits=4)
        n = {node.ident: node for node in ring.nodes.values()}
        assert n[1].successor.ident == 4
        assert n[15].successor.ident == 1  # wraps
        assert n[4].predecessor.ident == 1

    def test_finger_tables_exact(self):
        ring = build_ring([1, 4, 7, 12, 15], bits=4)
        n7 = next(node for node in ring.nodes.values() if node.ident == 7)
        # finger starts: 8, 9, 11, 15 -> successors 12, 12, 12, 15
        assert [f.ident for f in n7.fingers] == [12, 12, 12, 15]

    def test_single_node_ring(self):
        ring = build_ring([5], bits=4)
        node = next(iter(ring.nodes.values()))
        assert node.successor == node.ref
        assert node.owns(0) and node.owns(15)

    def test_identifier_collision_rejected(self):
        space = IdentifierSpace(4)
        net = Network()
        ring = ChordRing(net, space)
        ring.add_node(ChordNode("A", 3, space))
        with pytest.raises(ValueError, match="collision"):
            ring.add_node(ChordNode("B", 3, space))


class TestLookup:
    def test_every_key_resolves_to_true_owner(self):
        ring = build_ring([1, 4, 7, 12, 15], bits=4)
        entry = ring.sorted_refs()[0]
        for key in range(16):
            result = lookup(ring.network, entry, key)
            assert result.ref.node_id == ring.owner_of(key).node_id

    def test_ownership_rule(self):
        ring = build_ring([1, 4, 7, 12, 15], bits=4)
        # successor(5) = 7, successor(8) = 12, successor(0) = 1
        assert ring.owner_of(5).ident == 7
        assert ring.owner_of(8).ident == 12
        assert ring.owner_of(0).ident == 1
        assert ring.owner_of(7).ident == 7  # exact hit owned by itself

    def test_hops_scale_logarithmically(self):
        rng = random.Random(1)
        space_bits = 16
        means = {}
        for n in (8, 64):
            idents = rng.sample(range(1 << space_bits), n)
            ring = build_ring(idents, bits=space_bits)
            sample = measure_lookups(ring, 150, random.Random(2))
            means[n] = sample.mean_hops
        # 8x more nodes must cost ~3 extra hops, not 8x
        assert means[64] < means[8] + 4
        assert means[64] <= 8  # well under log2(65536)

    def test_lookup_from_any_entry_agrees(self):
        ring = build_ring([1, 4, 7, 12, 15], bits=4)
        owners = set()
        for entry in ring.sorted_refs():
            owners.add(lookup(ring.network, entry, 9).ref.node_id)
        assert len(owners) == 1


class TestDynamicMembership:
    def test_join_converges(self):
        ring = build_ring([10, 200, 3000, 40000], bits=16)
        space = ring.space
        newcomer = ChordNode("Nnew", 12345, space)
        ring.add_node(newcomer)
        ring.join_via(newcomer)
        ring.stabilize(rounds=2)
        assert ring.is_consistent()
        assert ring.owner_of(12000).node_id == "Nnew"

    def test_join_transfers_key_range(self):
        ring = build_ring([100, 60000], bits=16)

        class KVNode(ChordNode):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.kv = {}

            def export_keys(self):
                return list(self.kv.items())

            def import_keys(self, items):
                self.kv.update(items)

            def drop_keys(self, keys):
                for k in list(keys):
                    self.kv.pop(k, None)

        space = ring.space
        net = ring.network
        # Rebuild with KV nodes for the transfer check.
        net2 = Network()
        ring2 = ChordRing(net2, space)
        a = KVNode("A", 100, space)
        b = KVNode("B", 60000, space)
        ring2.add_node(a)
        ring2.add_node(b)
        ring2.build_static()
        # keys 200 and 30000 belong to B (successor of both)
        b.kv = {200: "x", 30000: "y", 61000: "z"}
        newcomer = KVNode("C", 40000, space)
        ring2.add_node(newcomer)
        ring2.join_via(newcomer)
        ring2.stabilize(2)
        # C took over (100, 40000]: keys 200 and 30000 move, 61000 stays.
        assert newcomer.kv == {200: "x", 30000: "y"}
        assert b.kv == {61000: "z"}

    def test_failure_recovery_via_successor_list(self):
        rng = random.Random(5)
        ring = build_ring(rng.sample(range(1 << 16), 16), bits=16)
        victim = sorted(ring.nodes)[3]
        ring.network.fail_node(victim)
        ring.stabilize(rounds=3)
        assert ring.is_consistent()
        # lookups still resolve (to live owners)
        entry = ring.sorted_refs()[0]
        for key in rng.sample(range(1 << 16), 10):
            result = lookup(ring.network, entry, key)
            assert ring.nodes[result.ref.node_id].alive

    def test_two_simultaneous_failures(self):
        rng = random.Random(9)
        ring = build_ring(rng.sample(range(1 << 16), 20), bits=16)
        victims = sorted(ring.nodes)[4:6]
        for v in victims:
            ring.network.fail_node(v)
        ring.stabilize(rounds=4)
        assert ring.is_consistent()
