"""Queries that survive churn (PR 6 satellite 4): the phase matrix.

One conjunctive query, one index-node crash — repeated with the crash
landing at every workflow phase boundary the traced healthy run exposes
(lookup, sub-query dispatch, chain hop, delivery/finalize).  With rf=2
and failover + retries enabled, every variant must return answers
bit-identical to the churn-free run, and the simulation must end with
the usual lifecycle invariants (no leaked mailboxes, no live timers).
"""

import pytest

from repro.query import DistributedExecutor, ExecutionOptions
from repro.trace import Tracer

from helpers import build_system
from test_churn_under_load import knows_owner, fail_at
from test_lifecycle_leaks import CLEAN, live_heap, peer_state

CONJ_QUERY = """
SELECT ?x ?n WHERE { ?x foaf:knows ?y . ?y foaf:name ?n . }
"""

FAILOVER = ExecutionOptions(failover=True, retries=1, backoff=0.02)


def _initiator(system, victim):
    """A storage node not attached beneath the victim (so the only path
    through the corpse is the query's own use of it)."""
    return next(
        sid for sid, node in sorted(system.storage_nodes.items())
        if node.index_node_id != victim
    )


def _baseline():
    """Churn-free run (same options as the churn variants): the expected
    rows, plus the traced phase timeline the matrix derives crash times
    from."""
    system = build_system(replication_factor=2)
    tracer = Tracer()
    executor = DistributedExecutor(system, FAILOVER, tracer=tracer)
    victim = knows_owner(system)
    result, _ = executor.execute(CONJ_QUERY, initiator=_initiator(system, victim))
    assert result.rows, "the matrix needs a query with non-empty answers"
    return result.rows, tracer


def _phase_boundaries(tracer):
    """First-event time of every traced workflow phase, in time order.

    Crashing just after each of these lands the failure in a different
    stage of the Fig. 3 workflow: index lookup, sub-query dispatch and
    the chain hops (ship), join, and result delivery (finalize).
    """
    first = {}
    for event in tracer.events:
        if event.phase is not None and event.phase not in first:
            first[event.phase] = event.time
    assert "lookup" in first and "finalize" in first
    return sorted(first.items(), key=lambda kv: kv[1])


_ROWS, _TRACE = _baseline()
_MATRIX = [("pre-start", 0.0005)] + [
    (phase, t + 1e-4) for phase, t in _phase_boundaries(_TRACE)
]


class TestChurnSurvivalMatrix:
    @pytest.mark.parametrize("phase,crash_at", _MATRIX,
                             ids=[p for p, _t in _MATRIX])
    def test_crash_at_phase_boundary_is_survivable(self, phase, crash_at):
        system = build_system(replication_factor=2)
        victim = knows_owner(system)
        initiator = _initiator(system, victim)
        fail_at(system, victim, crash_at)  # no stabilization: lazy recovery
        result, report = DistributedExecutor(system, FAILOVER).execute(
            CONJ_QUERY, initiator=initiator)
        assert result.rows == _ROWS, (
            f"crash during {phase!r} (t={crash_at:.4f}) changed the answer")
        assert peer_state(system) == CLEAN
        assert live_heap(system.sim) == []

    def test_without_failover_the_same_crashes_hurt(self):
        """Control: at least one matrix point actually needed the failover
        machinery (otherwise the matrix proves nothing)."""
        from repro.query import QueryFailed

        failures = 0
        for _phase, crash_at in _MATRIX:
            system = build_system(replication_factor=2)
            victim = knows_owner(system)
            initiator = _initiator(system, victim)
            fail_at(system, victim, crash_at)
            try:
                result, _ = DistributedExecutor(system).execute(
                    CONJ_QUERY, initiator=initiator)
            except QueryFailed:
                failures += 1
        assert failures >= 1
