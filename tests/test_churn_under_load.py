"""Churn under concurrent load (PR 3 satellite).

An index node crashes while a multi-query workload is in flight.  The
required behavior: only the queries that actually needed the dead node
fail — each with a clean :class:`QueryFailed` — while unaffected jobs
complete normally, nothing hangs, and the simulation ends with every
peer's correlation state empty and the event heap drained (the
``test_lifecycle_leaks`` invariants).
"""

from repro.overlay import key_for_pattern
from repro.query import DistributedExecutor
from repro.rdf import FOAF, TriplePattern, Variable
from repro.workloads import LoadConfig, run_workload

from helpers import build_system
from test_lifecycle_leaks import CLEAN, live_heap, peer_state

X, Y = Variable("x"), Variable("y")
KNOWS_QUERY = "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"
NAME_QUERY = 'SELECT ?x WHERE { ?x foaf:name "Smith" . }'


def knows_owner(system) -> str:
    """The index node that owns the ``foaf:knows`` predicate key."""
    _, key = key_for_pattern(TriplePattern(X, FOAF.knows, Y), system.space)
    return system.ring.owner_of(key).node_id


def fail_at(system, node_id: str, when: float) -> None:
    """Crash *node_id* at simulated time *when*, mid-run (no eager
    stabilization — recovery is the lazy, timeout-driven path)."""
    system.sim.timeout(when).callbacks.append(
        lambda _e: system.network.fail_node(node_id))


class TestIndexNodeChurn:
    def test_mid_workload_failure_is_contained(self):
        system = build_system()
        victim = knows_owner(system)
        # Initiate only from peers NOT attached to the victim, so the
        # only path through the dead node is the knows-key lookup itself
        # (queries from a peer whose attached index node dies fail
        # wholesale, which is correct but not what this test isolates).
        initiators = tuple(
            sid for sid, node in sorted(system.storage_nodes.items())
            if node.index_node_id != victim
        )
        config = LoadConfig(
            queries=[("knows", KNOWS_QUERY), ("name", NAME_QUERY)],
            initiators=initiators,
            mode="closed",
            concurrency=4,
            num_queries=16,
            seed=7,
        )
        fail_at(system, victim, 0.05)
        report = run_workload(system, config)

        # Nothing hangs: every job finished one way or the other.
        assert report.completed + report.failed == len(report.jobs)
        assert all(j.finished is not None for j in report.jobs)
        # The dead index node took out the knows-queries (it owns that
        # predicate key) — each as a clean QueryFailed...
        failed = [j for j in report.jobs if j.error is not None]
        assert failed, "the crashed owner should fail at least one query"
        for job in failed:
            assert job.label == "knows"
            assert "distributed execution failed" in job.error
        # ...and ONLY the knows-queries: every job that didn't need the
        # dead node completed normally.
        assert all(j.ok for j in report.jobs if j.label == "name")
        # Clean shutdown: no leaked mailboxes, expectations, or events.
        assert peer_state(system) == CLEAN
        assert live_heap(system.sim) == []

    def test_queries_before_failure_unaffected(self):
        """Jobs that complete before the crash match the healthy system's
        answers bit for bit."""
        healthy = build_system()
        baseline, _ = DistributedExecutor(healthy).execute(
            KNOWS_QUERY, initiator="D1")

        system = build_system()
        victim = knows_owner(system)
        fail_at(system, victim, 10.0)  # far after the workload drains
        config = LoadConfig(
            queries=[("knows", KNOWS_QUERY)],
            mode="closed", concurrency=2, num_queries=6, seed=1,
        )
        report = run_workload(system, config)
        assert report.failed == 0
        for job in report.jobs:
            assert job.result.rows == baseline.rows

    def test_system_stays_usable_after_churn(self):
        """After the dust settles the surviving ring still answers
        queries that avoid the lost rows."""
        system = build_system()
        victim = knows_owner(system)
        config = LoadConfig(
            queries=[("knows", KNOWS_QUERY)],
            mode="closed", concurrency=4, num_queries=8, seed=3,
        )
        fail_at(system, victim, 0.02)
        run_workload(system, config)
        system.ring.stabilize(3)
        result, _ = DistributedExecutor(system).execute(
            NAME_QUERY, initiator="D1")
        assert len(result.rows) >= 1
        assert peer_state(system) == CLEAN
        assert live_heap(system.sim) == []
