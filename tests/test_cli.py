"""CLI tests: N-Triples-file providers, query forms, options, errors."""

import json

import pytest

from repro.cli import main
from repro.rdf import serialize_ntriples
from repro.workloads import paper_example_partition


@pytest.fixture
def data_files(tmp_path):
    paths = []
    for storage_id, triples in paper_example_partition().items():
        path = tmp_path / f"{storage_id}.nt"
        path.write_text(serialize_ntriples(triples), encoding="utf-8")
        paths.append(str(path))
    return paths


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


PREFIXED = (
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
    "PREFIX ns: <http://example.org/ns#> "
)


class TestCli:
    def test_select_query(self, data_files, capsys):
        code, out, _ = run_cli(
            capsys,
            *[arg for f in data_files for arg in ("--data", f)],
            "--query", PREFIXED + "SELECT ?x WHERE { ?x foaf:knows ns:me . }",
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0] == "?x"
        assert len(lines) == 3  # header + carl + gina
        assert any("carl" in line for line in lines)

    def test_ask_query(self, data_files, capsys):
        code, out, _ = run_cli(
            capsys,
            "--data", data_files[0], "--data", data_files[1],
            "--query", PREFIXED + "ASK { ?x foaf:knows ?y . }",
        )
        assert code == 0 and out.strip() == "yes"

    def test_construct_query_prints_ntriples(self, data_files, capsys):
        code, out, _ = run_cli(
            capsys,
            *[arg for f in data_files for arg in ("--data", f)],
            "--query", PREFIXED +
            "CONSTRUCT { ?x ns:knownBy ns:me . } WHERE { ?x foaf:knows ns:me . }",
        )
        assert code == 0
        assert out.count("knownBy") == 2

    def test_report_flag(self, data_files, capsys):
        code, out, err = run_cli(
            capsys,
            *[arg for f in data_files for arg in ("--data", f)],
            "--query", PREFIXED + "SELECT ?x WHERE { ?x foaf:knows ns:me . }",
            "--report", "--strategy", "adaptive",
        )
        assert code == 0
        assert "messages" in err and "bytes" in err

    def test_query_file(self, data_files, tmp_path, capsys):
        qfile = tmp_path / "q.rq"
        qfile.write_text(PREFIXED + "SELECT ?x WHERE { ?x foaf:nick ?n . }")
        code, out, _ = run_cli(
            capsys,
            *[arg for f in data_files for arg in ("--data", f)],
            "--query-file", str(qfile),
        )
        assert code == 0 and "erik" in out

    def test_missing_data_file_errors(self, capsys):
        with pytest.raises(SystemExit, match="no such data file"):
            main(["--data", "/nonexistent.nt", "--query", "ASK { ?s ?p ?o . }"])

    def test_no_data_errors(self):
        with pytest.raises(SystemExit, match="at least one"):
            main(["--query", "ASK { ?s ?p ?o . }"])

    def test_strategy_choices_enforced(self, data_files):
        with pytest.raises(SystemExit):
            main(["--data", data_files[0], "--query", "ASK { ?s ?p ?o . }",
                  "--strategy", "bogus"])


class TestDurabilityCli:
    QUERY = PREFIXED + "SELECT ?x WHERE { ?x foaf:knows ns:me . }"

    def seed_state(self, capsys, data_files, tmp_path):
        state = tmp_path / "state"
        code, out, _ = run_cli(
            capsys,
            *[arg for f in data_files for arg in ("--data", f)],
            "--query", self.QUERY, "--state-dir", str(state),
        )
        assert code == 0
        return state, out

    def test_recover_answers_original_query(self, data_files, tmp_path, capsys):
        state, original = self.seed_state(capsys, data_files, tmp_path)
        code, out, _ = run_cli(
            capsys, "recover", "--state-dir", str(state),
            "--query", self.QUERY,
        )
        assert code == 0
        assert "# query ok: 2 results" in out
        assert "# node | snapshot lsn | records replayed | torn truncated" in out
        # One report row per persisted node (8 index + 4 storage).
        assert sum(1 for line in out.splitlines()
                   if line.startswith("# D") or line.startswith("# N")) == 12

    def test_checkpoint_compacts_then_recover_replays_nothing(
        self, data_files, tmp_path, capsys
    ):
        state, _ = self.seed_state(capsys, data_files, tmp_path)
        code, out, _ = run_cli(capsys, "checkpoint", "--state-dir", str(state))
        assert code == 0 and out.count("# snapshot") == 12

        code, out, _ = run_cli(capsys, "recover", "--state-dir", str(state))
        assert code == 0
        replayed = [
            int(line.split("|")[2]) for line in out.splitlines()
            if line.count("|") == 3 and not line.startswith("# node")
        ]
        assert replayed and all(n == 0 for n in replayed)

    def test_recover_missing_state_dir_fails(self, tmp_path, capsys):
        with pytest.raises(Exception):
            main(["recover", "--state-dir", str(tmp_path / "absent")])

    def test_bench_load_json_report(self, data_files, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code, out, _ = run_cli(
            capsys, "bench-load",
            *[arg for f in data_files for arg in ("--data", f)],
            "--num-queries", "6", "--concurrency", "2",
            "--json", str(out_path),
        )
        assert code == 0
        assert f"# wrote workload report to {out_path}" in out
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["jobs"] == 6
        assert len(payload["job_details"]) == 6
        job = payload["job_details"][0]
        assert {"job_id", "label", "latency", "ok", "results"} <= set(job)
        assert all(j["ok"] for j in payload["job_details"])

    def test_bench_load_reports_wall_clock(self, data_files, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code, out, _ = run_cli(
            capsys, "bench-load",
            *[arg for f in data_files for arg in ("--data", f)],
            "--num-queries", "4", "--concurrency", "2",
            "--json", str(out_path),
        )
        assert code == 0
        assert "# wall clock:" in out
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["wall_clock_s"] > 0.0
        assert payload["queries_per_wall_second"] > 0.0

    def test_profile_prints_hot_functions(self, data_files, tmp_path, capsys):
        stats_path = tmp_path / "profile.pstats"
        code, out, _ = run_cli(
            capsys, "profile",
            *[arg for f in data_files for arg in ("--data", f)],
            "--num-queries", "4", "--concurrency", "2",
            "--top", "5", "--stats-out", str(stats_path),
        )
        assert code == 0
        assert "# wall clock:" in out
        assert "cumulative" in out  # the pstats table header
        assert "ncalls" in out
        assert stats_path.exists() and stats_path.stat().st_size > 0
