"""Concurrent-execution regression tests (PR 3 tentpole).

Three guarantees:

1. **Acceptance byte-identity** — every Fig. 4-9 query run alone, with
   the contention model attached, reports the exact same response time,
   message count, and byte total as the uncontended simulation (a single
   flow never queues against itself).
2. **Concurrent equivalence** — N queries interleaved in one simulation
   return bit-identical solutions to the same N queries run serially,
   across strategy combinations.
3. **Isolation** — per-query state (correlation namespaces, slots,
   caches) lives in the ExecutionContext; concurrent contexts share the
   system and nothing else, and correlation-id collisions are impossible
   (and asserted against) by construction.
"""

import pytest

from repro.net import ContentionModel
from repro.query import DistributedExecutor, ExecutionOptions
from repro.query.executor import ExecutionContext, ExecutionReport
from repro.query.strategies import (
    ConjunctionMode,
    JoinSitePolicy,
    PrimitiveStrategy,
)
from repro.rdf import COMMON_PREFIXES
from repro.sparql import evaluate_query, parse_query
from repro.workloads import PAPER_FIG_QUERIES

from helpers import build_system
from test_lifecycle_leaks import CLEAN, live_heap, peer_state

FIGS = sorted(PAPER_FIG_QUERIES)


def run_alone(query_text, *, contention, options=None, initiator="D1"):
    system = build_system()
    if contention:
        system.network.contention = ContentionModel()
    result, report = DistributedExecutor(system, options).execute(
        query_text, initiator=initiator)
    return system, result, report


def run_interleaved(system, queries, options=None, initiators=None):
    """Spawn every query as an execute_process coroutine in one
    simulation; returns the (result, report) pairs in submission order."""
    executor = DistributedExecutor(system, options)
    outcomes = [None] * len(queries)

    def runner(i, text, initiator):
        parsed = parse_query(text, COMMON_PREFIXES)
        outcomes[i] = yield from executor.execute_process(parsed, initiator)

    for i, text in enumerate(queries):
        initiator = initiators[i % len(initiators)] if initiators else "D1"
        system.sim.process(runner(i, text, initiator))
    system.sim.run()
    return outcomes


class TestAcceptanceByteIdentity:
    """Concurrency = 1 + contention enabled must change *nothing*."""

    @pytest.mark.parametrize("fig", FIGS)
    def test_fig_suite_identical_with_contention(self, fig):
        query = PAPER_FIG_QUERIES[fig]
        _, plain_result, plain = run_alone(query, contention=False)
        system, contended_result, contended = run_alone(query, contention=True)
        assert contended.response_time == plain.response_time
        assert contended.messages == plain.messages
        assert contended.bytes_total == plain.bytes_total
        assert contended_result.rows == plain_result.rows
        # And the single flow never waited anywhere.
        assert system.network.contention.total_wait() == 0.0

    @pytest.mark.parametrize("strategy", list(PrimitiveStrategy))
    def test_strategies_identical_with_contention(self, strategy):
        options = ExecutionOptions(primitive_strategy=strategy)
        query = PAPER_FIG_QUERIES["fig6"]
        _, r0, plain = run_alone(query, contention=False, options=options)
        _, r1, contended = run_alone(query, contention=True, options=options)
        assert (contended.response_time, contended.messages,
                contended.bytes_total) == (
            plain.response_time, plain.messages, plain.bytes_total)
        assert r1.rows == r0.rows


OPTION_COMBOS = [
    ExecutionOptions(),
    ExecutionOptions(
        primitive_strategy=PrimitiveStrategy.BASIC,
        conjunction_mode=ConjunctionMode.BASIC,
        join_site_policy=JoinSitePolicy.QUERY_SITE,
    ),
    ExecutionOptions(primitive_strategy=PrimitiveStrategy.CHAINED),
    ExecutionOptions(
        primitive_strategy=PrimitiveStrategy.ADAPTIVE,
        join_site_policy=JoinSitePolicy.THIRD_SITE,
    ),
    ExecutionOptions(semijoin=True, projection_pushdown=True,
                     dictionary_encoding=True),
]


class TestConcurrentEquivalence:
    @pytest.mark.parametrize("options", OPTION_COMBOS,
                             ids=lambda o: o.primitive_strategy.value
                             + ("+ship" if o.semijoin else ""))
    def test_interleaved_equals_serial(self, options):
        queries = [PAPER_FIG_QUERIES[f] for f in FIGS]
        serial_system = build_system()
        serial_exec = DistributedExecutor(serial_system, options)
        serial = [serial_exec.execute(q, initiator="D1") for q in queries]

        concurrent_system = build_system()
        concurrent = run_interleaved(concurrent_system, queries, options)

        for (s_result, _), (c_result, _) in zip(serial, concurrent):
            assert c_result.rows == s_result.rows
            assert c_result.variables == s_result.variables
        assert peer_state(concurrent_system) == CLEAN
        assert live_heap(concurrent_system.sim) == []

    def test_interleaved_with_contention_equals_oracle(self):
        """Contention changes *when* things happen, never *what* they
        compute: every interleaved query still matches the local oracle."""
        queries = [PAPER_FIG_QUERIES[f] for f in FIGS] * 2
        system = build_system()
        system.network.contention = ContentionModel()
        initiators = sorted(system.storage_nodes)
        outcomes = run_interleaved(system, queries, initiators=initiators)
        union = system.union_graph()
        for text, (result, report) in zip(queries, outcomes):
            oracle = evaluate_query(parse_query(text, COMMON_PREFIXES), union)
            assert result.rows == oracle.rows
            assert report.messages > 0
        # Twelve interleaved queries genuinely contended somewhere.
        assert system.network.contention.max_queue_depth() > 1
        assert peer_state(system) == CLEAN
        assert live_heap(system.sim) == []

    def test_same_initiator_concurrent_queries(self):
        """Multiple in-flight queries from ONE peer: the slot namespaces
        keep their correlation ids (and thus mailboxes) disjoint."""
        queries = [PAPER_FIG_QUERIES["fig6"]] * 4
        system = build_system()
        outcomes = run_interleaved(system, queries)  # all from D1
        baseline, _ = run_alone(PAPER_FIG_QUERIES["fig6"], contention=False)[1:]
        for result, _ in outcomes:
            assert result.rows == baseline.rows
        assert peer_state(system) == CLEAN


class TestQuerySlots:
    def test_slot_zero_preserves_serial_corr_format(self):
        system = build_system()
        ctx = ExecutionContext(
            system, "D1", ExecutionOptions(), ExecutionReport(), {})
        assert ctx.query_id == "D1"
        assert ctx.new_corr() == "D1#0"
        ctx.release()

    def test_concurrent_contexts_get_disjoint_namespaces(self):
        system = build_system()
        a = ExecutionContext(
            system, "D1", ExecutionOptions(), ExecutionReport(), {})
        b = ExecutionContext(
            system, "D1", ExecutionOptions(), ExecutionReport(), {})
        assert a.query_id == "D1"
        assert b.query_id == "D1~1"
        assert a.new_corr() != b.new_corr()
        a.release()
        # Slot 0 freed: the next context reuses the serial namespace.
        c = ExecutionContext(
            system, "D1", ExecutionOptions(), ExecutionReport(), {})
        assert c.query_id == "D1"
        b.release()
        c.release()

    def test_collision_asserts(self):
        system = build_system()
        peer = system.storage_nodes["D1"]
        peer.expect("dup#0")
        with pytest.raises(AssertionError, match="collision"):
            peer.expect("dup#0")
        peer.purge_corrs(["dup#0"])

    def test_executor_has_no_per_query_state(self):
        """The executor object is safe to share: beyond configuration it
        only holds the system reference (its QoS load view lives on the
        system, shared by design)."""
        system = build_system()
        executor = DistributedExecutor(system)
        before = dict(vars(executor))
        executor.execute(PAPER_FIG_QUERIES["fig5"], initiator="D1")
        assert dict(vars(executor)) == before
        assert executor.load is system.load
