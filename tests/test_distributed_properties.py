"""System-level property tests.

* **Oracle equivalence** — for randomized datasets, partitions, queries,
  and strategy settings, distributed execution returns exactly the local
  evaluation over the union of all provider graphs (the paper's dataset
  semantics, Sect. IV-A).
* **Determinism** — identical seeds produce identical traffic traces and
  results, the property every number in EXPERIMENTS.md rests on.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.query import (
    ConjunctionMode,
    DistributedExecutor,
    ExecutionOptions,
    JoinSitePolicy,
    PrimitiveStrategy,
)
from repro.rdf import COMMON_PREFIXES, PatternShape
from repro.sparql import evaluate_query, parse_query
from repro.workloads import (
    FoafConfig,
    QueryWorkload,
    generate_foaf_triples,
    partition_triples,
)

from helpers import build_system


def make_system(data_seed, num_providers, overlap, num_index=8):
    triples = generate_foaf_triples(
        FoafConfig(num_people=30, seed=data_seed)
    )
    parts = partition_triples(triples, num_providers, overlap=overlap,
                              seed=data_seed + 1)
    return build_system(num_index=num_index, parts=parts), triples


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    data_seed=st.integers(0, 10_000),
    num_providers=st.integers(1, 6),
    overlap=st.sampled_from([0.0, 0.3, 0.8]),
    shape=st.sampled_from(list(PatternShape)),
    strategy=st.sampled_from(list(PrimitiveStrategy)),
    query_seed=st.integers(0, 1_000),
)
def test_property_primitive_queries_match_oracle(
    data_seed, num_providers, overlap, shape, strategy, query_seed
):
    system, triples = make_system(data_seed, num_providers, overlap)
    text = QueryWorkload(triples, seed=query_seed).primitive(shape)
    query = parse_query(text, COMMON_PREFIXES)
    oracle = evaluate_query(query, system.union_graph())
    executor = DistributedExecutor(
        system, ExecutionOptions(primitive_strategy=strategy)
    )
    result, report = executor.execute(text, initiator="D0")
    assert result.rows == oracle.rows
    assert report.retries == 0  # healthy system: no fallbacks


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    data_seed=st.integers(0, 10_000),
    mode=st.sampled_from(list(ConjunctionMode)),
    policy=st.sampled_from(list(JoinSitePolicy)),
    family=st.sampled_from(["conjunction", "optional", "union", "filtered"]),
    query_seed=st.integers(0, 1_000),
)
def test_property_compound_queries_match_oracle(
    data_seed, mode, policy, family, query_seed
):
    system, triples = make_system(data_seed, num_providers=4, overlap=0.3)
    workload = QueryWorkload(triples, seed=query_seed)
    text = {
        "conjunction": lambda: workload.conjunction(2),
        "optional": workload.optional,
        "union": workload.union,
        "filtered": workload.filtered,
    }[family]()
    query = parse_query(text, COMMON_PREFIXES)
    oracle = evaluate_query(query, system.union_graph())
    executor = DistributedExecutor(system, ExecutionOptions(
        conjunction_mode=mode, join_site_policy=policy,
    ))
    result, _ = executor.execute(text, initiator="D0")
    assert result.rows == oracle.rows


class TestDeterminism:
    QUERY = """SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name ; ns:knowsNothingAbout ?y .
        FILTER regex(?name, "Smith")
        OPTIONAL { ?y foaf:knows ?z . } }"""

    def run_once(self):
        system, _ = make_system(7, num_providers=4, overlap=0.3)
        executor = DistributedExecutor(system)
        result, report = executor.execute(self.QUERY, initiator="D0")
        trace = [(r.src, r.dst, r.kind, r.bytes) for r in system.stats.records]
        return result.rows, report.bytes_total, report.response_time, trace

    def test_identical_runs_produce_identical_traces(self):
        first = self.run_once()
        second = self.run_once()
        assert first[0] == second[0]          # rows
        assert first[1] == second[1]          # bytes
        assert first[2] == second[2]          # simulated time
        assert first[3] == second[3]          # full message trace

    def test_adaptive_runs_are_deterministic_too(self):
        def run():
            system, _ = make_system(9, num_providers=5, overlap=0.2)
            executor = DistributedExecutor(system, ExecutionOptions(
                primitive_strategy=PrimitiveStrategy.ADAPTIVE, time_weight=0.4,
            ))
            _, report = executor.execute(
                "SELECT ?a ?b WHERE { ?a foaf:knows ?b . }", initiator="D0")
            return report.bytes_total, tuple(report.notes)

        assert run() == run()
