"""System-level durability: crash, restart, rejoin, whole-site recovery.

The acceptance bar for the durable state layer: a system built with
``state_dir=`` survives kill-and-restart of any index or storage node —
and a full power cycle via :func:`repro.storage.recover_system` — with
the paper's Fig. 4-9 queries answering bit-identically to a system that
never crashed.
"""

import pytest

from repro.overlay import (
    HybridSystem,
    depart_storage_node,
    fail_index_node,
    fail_storage_node,
    key_for_pattern,
    restart_index_node,
    restart_storage_node,
)
from repro.rdf import FOAF, Graph, TriplePattern, Variable
from repro.storage import recover_system
from repro.trace import Tracer
from repro.workloads import LoadConfig, paper_query_mix, run_workload

from helpers import build_system

X, Y = Variable("x"), Variable("y")
PAPER_QUERIES = paper_query_mix()


def durable_system(tmp_path, **kwargs):
    return build_system(state_dir=tmp_path / "state", **kwargs)


def paper_answers(system):
    """Fig. 4-9 result rows, label → tuple of rows (deterministic)."""
    answers = {}
    for label, text in PAPER_QUERIES:
        result, _report = system.execute(text)
        answers[label] = result.rows
    return answers


def knows_owner(system) -> str:
    _, key = key_for_pattern(TriplePattern(X, FOAF.knows, Y), system.space)
    return system.ring.owner_of(key).node_id


class TestStorageNodeRestart:
    def test_restart_restores_bit_identical_answers(self, tmp_path):
        system = durable_system(tmp_path)
        baseline = paper_answers(system)
        victim = sorted(system.storage_nodes)[0]

        fail_storage_node(system, victim)
        restart_storage_node(system, victim)

        assert paper_answers(system) == baseline
        assert system.durability.recoveries == 1

    def test_republication_does_not_double_count(self, tmp_path):
        system = durable_system(tmp_path)
        victim = sorted(system.storage_nodes)[0]
        before = {
            node_id: node.table.row_dict(key)
            for node_id, node in system.index_nodes.items()
            for key in node.table.keys()
        }
        fail_storage_node(system, victim)
        restart_storage_node(system, victim)
        after = {
            node_id: node.table.row_dict(key)
            for node_id, node in system.index_nodes.items()
            for key in node.table.keys()
        }
        assert after == before

    def test_restart_reattaches_to_previous_parent(self, tmp_path):
        system = durable_system(tmp_path)
        victim = sorted(system.storage_nodes)[0]
        parent = system.storage_nodes[victim].index_node_id
        fail_storage_node(system, victim)
        node = restart_storage_node(system, victim)
        assert node.index_node_id == parent
        assert system.index_nodes[parent].attached_storage.count(victim) == 1

    def test_restart_of_alive_node_refused(self, tmp_path):
        system = durable_system(tmp_path)
        victim = sorted(system.storage_nodes)[0]
        with pytest.raises(ValueError, match="alive"):
            restart_storage_node(system, victim)

    def test_restart_without_state_dir_refused(self):
        system = build_system()
        victim = sorted(system.storage_nodes)[0]
        fail_storage_node(system, victim)
        with pytest.raises(RuntimeError, match="state_dir"):
            restart_storage_node(system, victim)


class TestIndexNodeRestart:
    def test_restart_restores_bit_identical_answers(self, tmp_path):
        system = durable_system(tmp_path, replication_factor=2)
        baseline = paper_answers(system)
        victim = knows_owner(system)

        fail_index_node(system, victim)
        restart_index_node(system, victim)

        assert paper_answers(system) == baseline

    def test_restart_emits_recovery_span(self, tmp_path):
        system = durable_system(tmp_path)
        victim = knows_owner(system)
        fail_index_node(system, victim)
        tracer = Tracer(system.sim)
        restart_index_node(system, victim, tracer=tracer)
        spans = [e for e in tracer.events if e.kind == "span_start"
                 and e.name == "recover"]
        assert len(spans) == 1 and spans[0].detail["node"] == victim

    def test_stale_entries_dropped_when_epoch_moved(self, tmp_path):
        """A storage node that departed while the index node was down must
        not reappear in its recovered table (epoch-gated stale sweep)."""
        system = durable_system(tmp_path)
        victim = knows_owner(system)
        # Pick a storage node whose entries live (in part) on the victim.
        gone = next(
            sid for sid in sorted(system.storage_nodes)
            for key in system.index_nodes[victim].table.keys()
            if sid in system.index_nodes[victim].table.row_dict(key)
        )
        fail_index_node(system, victim)
        depart_storage_node(system, gone)  # epoch moves past the WAL's view

        node = restart_index_node(system, victim)
        for key in node.table.keys():
            assert gone not in node.table.row_dict(key)
        assert system.durability.stale_entries_dropped > 0

    def test_mid_workload_crash_and_restart_matches_never_crashed_run(
        self, tmp_path
    ):
        """Integration: crash an index node mid-workload, restart it from
        its snapshot+log, and the subsequent Fig. 4-9 queries are
        bit-identical to a system that never crashed."""
        control = build_system(replication_factor=2)
        baseline = paper_answers(control)

        system = durable_system(tmp_path, replication_factor=2)
        system.checkpoint()  # snapshot mid-history: restart = snapshot + log
        victim = knows_owner(system)
        config = LoadConfig(
            queries=[("knows", "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }")],
            mode="closed",
            concurrency=4,
            num_queries=12,
            seed=3,
        )
        # Crash mid-workload; the workload drains (some jobs fail — that
        # is the churn story), then the node restarts from disk.
        system.sim.timeout(0.05).callbacks.append(
            lambda _e: system.network.fail_node(victim))
        report = run_workload(system, config)
        assert report.completed + report.failed == len(report.jobs)
        system.ring.stabilize(3)
        system.journal_event("index-fail", victim)

        restart_index_node(system, victim)
        assert paper_answers(system) == baseline

    def test_restart_of_alive_node_refused(self, tmp_path):
        system = durable_system(tmp_path)
        with pytest.raises(ValueError, match="alive"):
            restart_index_node(system, knows_owner(system))


class TestWholeSystemRecovery:
    def test_power_cycle_round_trips_answers_and_data(self, tmp_path):
        system = durable_system(tmp_path)
        baseline = paper_answers(system)
        union = Graph(iter(system.union_graph()))

        recovered, report = recover_system(tmp_path / "state")
        assert paper_answers(recovered) == baseline
        assert recovered.union_graph() == union
        assert sorted(report["index"]) == sorted(system.index_nodes)
        assert sorted(report["storage"]) == sorted(system.storage_nodes)

    def test_checkpoint_bounds_replay(self, tmp_path):
        system = durable_system(tmp_path)
        system.checkpoint()
        _recovered, report = recover_system(tmp_path / "state")
        assert all(
            info["records_replayed"] == 0
            for section in report.values()
            for info in section.values()
        )

    def test_departed_node_stays_gone(self, tmp_path):
        system = durable_system(tmp_path)
        gone = sorted(system.storage_nodes)[0]
        depart_storage_node(system, gone)
        baseline = paper_answers(system)

        recovered, report = recover_system(tmp_path / "state")
        assert gone not in recovered.storage_nodes
        assert gone not in report["storage"]
        assert paper_answers(recovered) == baseline

    def test_crashed_node_comes_back_after_power_cycle(self, tmp_path):
        system = durable_system(tmp_path)
        baseline = paper_answers(system)
        fail_storage_node(system, sorted(system.storage_nodes)[0])

        recovered, _report = recover_system(tmp_path / "state")
        assert all(n.alive for n in recovered.storage_nodes.values())
        assert paper_answers(recovered) == baseline

    def test_reusing_a_state_dir_without_recover_refused(self, tmp_path):
        durable_system(tmp_path)
        with pytest.raises(ValueError, match="recover_system"):
            HybridSystem(state_dir=tmp_path / "state")

    def test_recovering_an_empty_dir_refused(self, tmp_path):
        with pytest.raises(Exception, match="journal"):
            recover_system(tmp_path / "nothing-here")
