"""Replica failover in the query path (PR 6 satellites 1–3).

Covers the three repair mechanisms around Sect. III-D's successor-list
replication:

* promotion re-replication — a replica row promoted on takeover is
  pushed to the new owner's *own* successors at once, so a second
  failure doesn't silently lose it;
* coalesced-lookup coherence — a waiter on another process's in-flight
  index consultation re-validates the membership epoch on wake and
  re-resolves (instead of consuming a stale owner), and a failed filler
  never strands its sentinel;
* graceful-departure sweep — handing a location table to the heir also
  drops the stale third-party replica copies and re-replicates from the
  heir, so no future takeover can promote outdated rows.
"""

from collections import Counter


from repro.net import RpcError
from repro.overlay import depart_index_node, fail_index_node, key_for_pattern
from repro.query import DistributedExecutor, ExecutionOptions
from repro.query.executor import ExecutionContext, ExecutionReport
from repro.rdf import FOAF, TriplePattern, Variable

from helpers import build_system
from test_churn_under_load import KNOWS_QUERY, fail_at, knows_owner
from test_lifecycle_leaks import CLEAN, live_heap, peer_state

X, Y = Variable("x"), Variable("y")
KNOWS_PATTERN = TriplePattern(X, FOAF.knows, Y)

FAILOVER = ExecutionOptions(failover=True, retries=1, backoff=0.02)


def baseline_rows(initiator="D1"):
    result, _ = DistributedExecutor(build_system()).execute(
        KNOWS_QUERY, initiator=initiator)
    return result.rows


class TestPromotionReReplication:
    """Satellite 1: a promoted replica row regains its replica count."""

    def test_double_failure_still_answers(self):
        expected = baseline_rows()
        system = build_system(replication_factor=2)
        victim = knows_owner(system)

        # First failure: the ring stabilizes, the heir serves the key from
        # its replica row — and promotion pushes fresh copies downstream.
        fail_index_node(system, victim)
        initiator = next(
            sid for sid, node in sorted(system.storage_nodes.items())
            if node.alive and system.index_nodes[node.index_node_id].alive
        )
        result, _ = DistributedExecutor(system).execute(
            KNOWS_QUERY, initiator=initiator)
        assert result.rows == expected
        assert system.network.failover.promotions_rereplicated >= 1

        # Second failure: the promoted owner dies too.  Only the re-
        # replication above kept a copy alive — without it this query
        # would return an empty (wrong) answer.
        heir = knows_owner(system)
        assert heir != victim
        fail_index_node(system, heir)
        initiator = next(
            sid for sid, node in sorted(system.storage_nodes.items())
            if node.alive and system.index_nodes[node.index_node_id].alive
        )
        result, _ = DistributedExecutor(system).execute(
            KNOWS_QUERY, initiator=initiator)
        assert result.rows == expected
        assert system.network.failover.promotions_rereplicated >= 2


class TestLookupFailover:
    """Tentpole: a timed-out row read re-routes to the replica holder."""

    def test_lookup_failover_mid_flight(self):
        expected = baseline_rows()
        system = build_system(replication_factor=2)
        victim = knows_owner(system)
        initiators = [
            sid for sid, node in sorted(system.storage_nodes.items())
            if node.index_node_id != victim
        ]
        # Crash WITHOUT stabilizing: fingers still route to the corpse, so
        # recovery must come from the avoid-hint re-resolution.
        fail_at(system, victim, 0.001)
        result, report = DistributedExecutor(system, FAILOVER).execute(
            KNOWS_QUERY, initiator=initiators[0])
        assert result.rows == expected
        counters = system.network.failover
        assert counters.lookup_failovers + counters.dispatch_failovers >= 1
        assert peer_state(system) == CLEAN
        assert live_heap(system.sim) == []


class TestCoalescedLookups:
    """Satellite 2: waiters on an in-flight consultation stay coherent."""

    def _context(self, system, options=None, initiator="D1"):
        return ExecutionContext(
            system, initiator, options or ExecutionOptions(),
            ExecutionReport(), Counter())

    def test_waiters_coalesce_on_one_consultation(self):
        system = build_system(replication_factor=2)
        ctx = self._context(system)
        sim = system.sim
        p1 = sim.process(ctx.locate(KNOWS_PATTERN))
        p2 = sim.process(ctx.locate(KNOWS_PATTERN))
        sim.run()
        info1, info2 = p1.value, p2.value
        assert info1.owner == info2.owner == knows_owner(system)
        assert ctx.report.lookup_cache_misses == 1
        assert ctx.report.lookup_cache_hits == 1

    def test_waiter_revalidates_epoch_on_wake(self):
        """A waiter handed a result minted under an older membership view
        must re-resolve instead of consuming the stale owner."""
        system = build_system(replication_factor=2)
        ctx = self._context(system)
        sim = system.sim
        located = key_for_pattern(KNOWS_PATTERN, system.space)
        pending = sim.event()
        ctx._lookup_cache[located] = ("pending", pending)
        waiter = sim.process(ctx.locate(KNOWS_PATTERN))

        def fill_stale(_e):
            # What a filler that raced a membership change does: evict the
            # sentinel, hand waiters a row stamped with the *fill-time*
            # epochs — here one behind the live membership view, with a
            # bogus owner.
            ctx._lookup_cache.pop(located, None)
            pending.succeed(
                ("N-bogus", (), system.network.membership_epoch - 1,
                 system.network.data_epochs.get(located[1])))

        sim.timeout(0.0).callbacks.append(fill_stale)
        sim.run()
        info = waiter.value
        # The bogus coalesced owner was rejected; the waiter resolved for
        # itself under the live view.
        assert info.owner == knows_owner(system)
        assert ctx.report.lookup_cache_misses == 1
        assert ctx.report.lookup_cache_hits == 0

    def test_waiter_revalidates_data_epoch_on_wake(self):
        """PR 9 satellite: a delta published while a consultation was in
        flight must not let coalesced waiters consume the pre-delta row —
        the fill is stamped with the data epoch read at fill time, and a
        waiter whose stamp no longer matches re-resolves."""
        system = build_system(replication_factor=2)
        ctx = self._context(system)
        sim = system.sim
        located = key_for_pattern(KNOWS_PATTERN, system.space)
        pending = sim.event()
        ctx._lookup_cache[located] = ("pending", pending)
        waiter = sim.process(ctx.locate(KNOWS_PATTERN))

        def fill_then_delta(_e):
            # The filler completes under the pre-delta ledger, then a
            # delta lands before the waiter is scheduled.
            ctx._lookup_cache.pop(located, None)
            pending.succeed(
                ("N-bogus", (), system.network.membership_epoch,
                 system.network.data_epochs.get(located[1])))
            system.network.data_epochs.advance(located[1])

        sim.timeout(0.0).callbacks.append(fill_then_delta)
        sim.run()
        info = waiter.value
        assert info.owner == knows_owner(system)
        assert ctx.report.lookup_cache_misses == 1
        assert ctx.report.lookup_cache_hits == 0

    def test_done_entry_dropped_after_delta(self):
        """A cached done consultation goes stale the moment the key's
        data epoch advances (a publish/unpublish touched the pattern):
        the next locate re-consults instead of reusing the row."""
        system = build_system()
        ctx = self._context(system)
        sim = system.sim
        p1 = sim.process(ctx.locate(KNOWS_PATTERN))
        sim.run()
        located = key_for_pattern(KNOWS_PATTERN, system.space)
        system.network.data_epochs.advance(located[1])
        p2 = sim.process(ctx.locate(KNOWS_PATTERN))
        sim.run()
        assert p2.value.owner == p1.value.owner == knows_owner(system)
        assert ctx.report.lookup_cache_misses == 2
        assert ctx.report.lookup_cache_hits == 0
        # The stale entry was evicted and replaced by the re-consultation.
        assert ctx._lookup_cache[located][0] == "done"

    def test_failed_filler_does_not_strand_waiters(self):
        """The filler's lookup dies; the waiter re-resolves on its own
        and the pending sentinel is evicted, not left to dangle."""
        system = build_system(replication_factor=1)
        victim = knows_owner(system)
        ctx = self._context(system)
        sim = system.sim
        sim.timeout(0.001).callbacks.append(
            lambda _e: system.network.fail_node(victim))
        p1 = sim.process(ctx.locate(KNOWS_PATTERN))
        p2 = sim.process(ctx.locate(KNOWS_PATTERN))
        sim.run()
        # rf=1, no failover: both consultations fail — but each fails on
        # its OWN attempt (the waiter retried rather than inheriting).
        assert isinstance(p1.failure, RpcError)
        assert isinstance(p2.failure, RpcError)
        key = key_for_pattern(KNOWS_PATTERN, system.space)
        assert ctx._lookup_cache.get(key) is None


class TestDepartureSweep:
    """Satellite 3: graceful departure leaves no stale replica copies."""

    def test_depart_sweeps_and_rereplicates(self):
        system = build_system(replication_factor=2)
        victim_id = knows_owner(system)
        victim = system.index_nodes[victim_id]
        moved = sorted(key for key, _row in victim.table.export_range())
        assert moved, "the test needs a victim with a non-empty table"
        heir_id = victim.successor.node_id

        depart_index_node(system, victim_id)

        heir = system.index_nodes[heir_id]
        assert system.network.failover.replica_rows_swept >= 1
        # The heir's stale replica copies of the moved rows are gone …
        for key in moved:
            assert not heir.replicas.row_dict(key), (
                f"stale replica row for key {key} survived the sweep")
        # … and the rows are re-replicated from their new primary, so the
        # moved keys are exactly as crash-tolerant as they were before.
        replica_holder = system.index_nodes[heir.successor_list[0].node_id]
        for key in moved:
            if heir.owns(key):
                assert replica_holder.replicas.row_dict(key) or \
                    replica_holder.table.row_dict(key)

    def test_query_after_departure_and_crash(self):
        """End to end: depart the owner, then crash the heir — the swept
        + re-replicated rows still answer the query."""
        expected = baseline_rows()
        system = build_system(replication_factor=2)
        victim = knows_owner(system)
        depart_index_node(system, victim)
        heir = knows_owner(system)
        fail_index_node(system, heir)
        initiator = next(
            sid for sid, node in sorted(system.storage_nodes.items())
            if node.alive and system.index_nodes[node.index_node_id].alive
        )
        result, _ = DistributedExecutor(system).execute(
            KNOWS_QUERY, initiator=initiator)
        assert result.rows == expected
