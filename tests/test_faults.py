"""Chaos layer: fault injection, health/breakers, and defenses (PR 10).

Covers the deterministic :class:`FaultInjector` (seeded per-link fates,
window independence, brownout scaling), the :class:`HealthLedger`
breaker state machine, the transport's open-circuit short-circuit, the
duplicate-absorbing corr lifecycle across the release sweep boundary,
hedged index reads against a slow-not-dead owner, and the all-zero
guard: with every chaos feature off, none of the new machinery runs.
"""

from __future__ import annotations

import pytest

from repro.metrics import FailoverCounters
from repro.net.faults import FaultInjector, FaultPlan, FaultRule, chaos_plan
from repro.net.health import CLOSED, HALF_OPEN, OPEN, HealthLedger
from repro.net.sim import Simulator
from repro.net.transport import RpcTimeout
from repro.query import DistributedExecutor, ExecutionOptions
from repro.workloads import PAPER_FIG_QUERIES

from helpers import build_system


def _rows(result):
    return sorted(map(repr, result.rows))


def _oracle(query: str):
    result, _ = DistributedExecutor(build_system(replication_factor=2)).execute(query)
    return _rows(result)


# --------------------------------------------------------------------------
# FaultInjector determinism


class TestFaultInjector:
    def _fates(self, injector, n=40, src="A", dst="B", at=0.0):
        return [
            (f.drop, f.duplicate, round(f.extra_delay, 9), round(f.dup_delay, 9))
            for f in (injector.message_fate(src, dst, at) for _ in range(n))
        ]

    def test_same_seed_same_fates(self):
        plan = FaultPlan(
            rules=(
                FaultRule("loss", probability=0.3),
                FaultRule("delay", probability=0.4, delay=0.05, jitter=0.5),
            ),
            seed=11,
        )
        a = self._fates(FaultInjector(plan))
        b = self._fates(FaultInjector(plan))
        assert a == b
        assert any(drop for drop, _, _, _ in a)  # the plan actually fires

    def test_different_links_draw_independently(self):
        plan = FaultPlan(rules=(FaultRule("loss", probability=0.5),), seed=3)
        inj = FaultInjector(plan)
        ab = self._fates(inj, src="A", dst="B")
        # The reverse direction is a distinct link with its own stream.
        ba = self._fates(inj, src="B", dst="A")
        assert ab != ba

    def test_window_start_does_not_perturb_draws(self):
        """The RNG is keyed by (seed, link, ordinal) only: the same
        message ordinal gets the same fate no matter when the rule's
        window opened."""
        now = FaultPlan(rules=(FaultRule("loss", probability=0.5),), seed=5)
        late = FaultPlan(
            rules=(FaultRule("loss", probability=0.5, start=50.0),), seed=5
        )
        a = self._fates(FaultInjector(now), at=100.0)
        b = self._fates(FaultInjector(late), at=100.0)
        assert a == b

    def test_outside_window_is_clean_but_ordinals_advance(self):
        plan = FaultPlan(rules=(FaultRule("loss", probability=0.5,
                                          start=10.0, end=20.0),), seed=7)
        warm = FaultInjector(plan)
        # 25 pre-window messages: all clean, but each advances the link
        # ordinal...
        pre = self._fates(warm, n=25, at=0.0)
        assert all(fate == (False, False, 0.0, 0.0) for fate in pre)
        # ...so the in-window draws match a fresh injector fast-forwarded
        # to the same ordinals.
        cold = FaultInjector(plan)
        self._fates(cold, n=25, at=0.0)
        assert self._fates(warm, n=25, at=15.0) == self._fates(cold, n=25, at=15.0)

    def test_partition_is_directional(self):
        plan = FaultPlan(rules=(FaultRule("partition", src="A", dst="B"),))
        inj = FaultInjector(plan)
        assert inj.message_fate("A", "B", 0.0).drop
        assert not inj.message_fate("B", "A", 0.0).drop
        assert inj.injected["partition"] == 1

    def test_brownout_factor_windowed_and_multiplicative(self):
        plan = FaultPlan(
            rules=(
                FaultRule("brownout", node="N1", factor=8.0, start=5.0, end=15.0),
                FaultRule("brownout", node="N1", factor=2.0, start=10.0, end=20.0),
            )
        )
        inj = FaultInjector(plan)
        assert inj.brownout_factor("N1", 0.0) == 1.0
        assert inj.brownout_factor("N1", 6.0) == 8.0
        assert inj.brownout_factor("N1", 12.0) == 16.0  # overlap multiplies
        assert inj.brownout_factor("N1", 19.0) == 2.0
        assert inj.brownout_factor("N2", 12.0) == 1.0

    def test_chaos_plan_is_deterministic(self):
        nodes = [f"N{i}" for i in range(8)]
        a = chaos_plan(nodes, seed=4, loss=0.1, partitions=2, brownouts=1)
        b = chaos_plan(nodes, seed=4, loss=0.1, partitions=2, brownouts=1)
        assert a.as_dict() == b.as_dict()
        for rule in a.rules:
            if rule.kind == "partition":
                assert rule.src != rule.dst


# --------------------------------------------------------------------------
# Breaker state machine


def _ledger(**kwargs):
    sim = Simulator()
    counters = FailoverCounters()
    ledger = HealthLedger(sim, counters, **kwargs)
    return sim, counters, ledger


class TestBreakerStateMachine:
    def test_trips_after_consecutive_failures(self):
        _, counters, ledger = _ledger(failure_threshold=3)
        ledger.observe_failure("X")
        ledger.observe_failure("X")
        assert ledger.peer("X").state == CLOSED
        ledger.observe_failure("X")
        assert ledger.peer("X").state == OPEN
        assert counters.breaker_trips == 1
        assert counters.health_observations == 3

    def test_success_resets_failure_streak(self):
        _, _, ledger = _ledger(failure_threshold=3)
        ledger.observe_failure("X")
        ledger.observe_failure("X")
        ledger.observe_success("X", 0.01)
        ledger.observe_failure("X")
        ledger.observe_failure("X")
        assert ledger.peer("X").state == CLOSED

    def test_latency_trip_on_slow_ewma(self):
        """The gray failure: answering, but too slowly to be useful."""
        _, counters, ledger = _ledger(latency_threshold=0.1)
        ledger.observe_success("X", 0.01)
        assert ledger.peer("X").state == CLOSED
        for _ in range(20):
            ledger.observe_success("X", 5.0)
        assert ledger.peer("X").state == OPEN
        assert counters.breaker_trips == 1

    def test_open_rejects_until_reset_then_half_opens_one_probe(self):
        sim, counters, ledger = _ledger(failure_threshold=1, reset_after=2.0)
        ledger.observe_failure("X")
        assert not ledger.allow("X")
        assert ledger.open_now("X")
        sim.now = 3.0
        # Reset elapsed: exactly one probe is let through.
        assert ledger.allow("X")
        assert ledger.peer("X").state == HALF_OPEN
        assert not ledger.allow("X")  # second caller must wait for the probe
        assert counters.breaker_half_opens == 1

    def test_half_open_probe_success_closes(self):
        sim, _, ledger = _ledger(failure_threshold=1, reset_after=1.0)
        ledger.observe_failure("X")
        sim.now = 2.0
        assert ledger.allow("X")
        ledger.observe_success("X", 0.02)
        assert ledger.peer("X").state == CLOSED
        assert ledger.allow("X")

    def test_half_open_probe_failure_reopens(self):
        sim, _, ledger = _ledger(failure_threshold=1, reset_after=1.0)
        ledger.observe_failure("X")
        sim.now = 2.0
        assert ledger.allow("X")
        ledger.observe_failure("X")
        assert ledger.peer("X").state == OPEN
        assert ledger.peer("X").opened_at == 2.0
        assert not ledger.allow("X")

    def test_open_now_is_non_mutating(self):
        sim, counters, ledger = _ledger(failure_threshold=1, reset_after=1.0)
        ledger.observe_failure("X")
        sim.now = 2.0
        # Peeking after the reset period must not claim the probe.
        assert not ledger.open_now("X")
        assert ledger.peer("X").state == OPEN
        assert counters.breaker_half_opens == 0

    def test_open_breaker_short_circuits_transport_call(self):
        system = build_system()
        net = system.network
        net.health = HealthLedger(system.sim, net.failover,
                                  failure_threshold=1, reset_after=60.0)
        net.health.observe_failure("N0")
        seen = {}

        def proc():
            try:
                yield net.call("D1", "N0", "index_lookup", {"key": 1})
            except RpcTimeout as exc:
                seen["exc"] = exc

        started = system.sim.now
        system.sim.process(proc())
        system.sim.run()
        assert "circuit open" in str(seen["exc"])
        assert net.failover.breaker_short_circuits == 1
        # Short-circuit means *instant*: no real timeout was burned.
        assert system.sim.now == started


# --------------------------------------------------------------------------
# Satellite 1: duplicates across the release sweep boundary


class TestDuplicateStorm:
    def test_duplicates_across_sweep_boundary_stay_exact(self):
        """Every message is duplicated with a lag that straddles query
        completion: the late copies land after ``release()`` quarantined
        the query's corr ids and must be absorbed by the tombstones —
        which only the deferred sweep may remove. Serial queries then
        recycle initiator slot 0 (and with it the corr-id namespace), so
        any leaked duplicate would surface as extra rows in the *next*
        query's answer."""
        queries = ["fig4", "fig7", "fig5"]
        oracle = {name: _oracle(PAPER_FIG_QUERIES[name]) for name in queries}
        system = build_system(replication_factor=2)
        plan = FaultPlan(
            rules=(FaultRule("duplicate", probability=1.0,
                             delay=0.5, jitter=0.5),),
            seed=7,
        )
        system.network.install_faults(plan)
        executor = DistributedExecutor(
            system, ExecutionOptions(retries=2, failover=True))
        for name in queries:
            result, report = executor.execute(PAPER_FIG_QUERIES[name])
            assert _rows(result) == oracle[name], name
            assert not report.incomplete
        assert system.network.faults.injected["duplicate"] > 0
        # sim.run drained the heap, so every deferred sweep has fired:
        # no tombstones, mailboxes, or memoized replies may survive.
        for node in system.network.nodes.values():
            state = node.__dict__
            assert not state.get("_qp_mailbox"), node.node_id
            assert not state.get("_qp_dead_corrs"), node.node_id
            assert not state.get("_qp_replied"), node.node_id

    def test_duplicate_execute_primitive_absorbed_by_dedup(self):
        """Receiver-side idempotent dedup: a duplicated two-way RPC whose
        second copy arrives while (or after) the first executed must not
        re-run the primitive."""
        system = build_system(replication_factor=2)
        plan = FaultPlan(
            rules=(FaultRule("duplicate", probability=1.0, delay=0.2),),
            seed=1,
        )
        system.network.install_faults(plan)
        executor = DistributedExecutor(system, ExecutionOptions())
        for name in ("fig4", "fig6"):
            result, _ = executor.execute(PAPER_FIG_QUERIES[name])
            assert _rows(result) == _oracle(PAPER_FIG_QUERIES[name])
        assert system.network.failover.duplicates_dropped > 0


# --------------------------------------------------------------------------
# Satellite 3: hedged index reads against a slow-not-dead owner


class TestHedgeUnderChaos:
    def test_hedge_wins_against_slow_owner_and_counts_once(self):
        query = PAPER_FIG_QUERIES["fig5"]
        # Find the index node that serves fig5's single lookup when
        # nothing is injected (the topology is deterministic).
        probe = build_system(replication_factor=2)
        served = []
        for node_id, node in probe.index_nodes.items():
            original = node.rpc_index_lookup

            def spy(payload, src, _orig=original, _id=node_id):
                served.append(_id)
                return _orig(payload, src)

            node.rpc_index_lookup = spy
        result, _ = DistributedExecutor(probe).execute(query, initiator="D2")
        oracle, (owner,) = _rows(result), served

        # Same topology, but the owner is browned out and every message
        # to or from it drags an extra half second: slow, not dead.
        system = build_system(replication_factor=2)
        plan = FaultPlan(
            rules=(
                FaultRule("delay", dst=owner, probability=1.0, delay=0.5),
                FaultRule("delay", src=owner, probability=1.0, delay=0.5),
                FaultRule("brownout", node=owner, factor=8.0),
            ),
            seed=1,
        )
        system.network.install_faults(plan)
        options = ExecutionOptions(failover=True, retries=1, hedge_delay=0.02)
        result, _ = DistributedExecutor(system, options).execute(
            query, initiator="D2")
        counters = system.network.failover
        assert _rows(result) == oracle
        assert counters.hedges_launched == 1
        assert counters.hedges_won == 1
        # One logical lookup in the ledger despite two physical reads:
        # the loser's reply is discarded, not double-counted.
        assert len(counters.lookup_rtts) == 1
        assert counters.lookup_rtts[0] < 0.5  # the hedge's RTT, not the owner's

    def test_hedge_not_launched_when_owner_is_fast(self):
        system = build_system(replication_factor=2)
        options = ExecutionOptions(failover=True, hedge_delay=5.0)
        result, _ = DistributedExecutor(system, options).execute(
            PAPER_FIG_QUERIES["fig5"], initiator="D2")
        assert system.network.failover.hedges_launched == 0


# --------------------------------------------------------------------------
# Satellite 2: all chaos features off -> nothing moved


CHAOS_COUNTERS = (
    "breaker_trips",
    "breaker_half_opens",
    "breaker_short_circuits",
    "health_observations",
    "duplicates_dropped",
    "partial_patterns_dropped",
    "partial_results",
)


class TestChaosOffGuard:
    def test_default_run_leaves_chaos_layer_untouched(self):
        system = build_system(replication_factor=2)
        executor = DistributedExecutor(system)
        for query in PAPER_FIG_QUERIES.values():
            _, report = executor.execute(query)
            assert report.incomplete is False
            assert report.dropped_patterns == []
        network = system.network
        assert network.faults is None
        assert network.health is None
        counters = network.failover.as_dict()
        for name in CHAOS_COUNTERS:
            assert counters[name] == 0, name
        assert network.failover.lookup_rtts == []

    def test_fault_features_on_but_no_faults_stays_exact(self):
        """Breakers + partial results enabled against a healthy fabric:
        answers stay bit-identical and no degradation is recorded."""
        options = ExecutionOptions(retries=2, failover=True, breaker=True,
                                   partial_results=True)
        system = build_system(replication_factor=2)
        executor = DistributedExecutor(system, options)
        for name, query in PAPER_FIG_QUERIES.items():
            result, report = executor.execute(query)
            assert _rows(result) == _oracle(query), name
            assert not report.incomplete
        counters = system.network.failover
        assert counters.breaker_trips == 0
        assert counters.partial_patterns_dropped == 0
        assert counters.partial_results == 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
